//! `p2pdb` — command-line driver for P2P database networks.
//!
//! ```text
//! p2pdb sample                                  print a sample network file
//! p2pdb workload [--topology tree|layered|clique|ring|chain]
//!                [--size N] [--records N] [--overlap PCT] [--seed N]
//!                                               generate a network file
//! p2pdb run <network.json> [--mode eager|rounds] [--discover]
//!                [--no-delta-waves] [--no-plan-cache] [--no-indexes]
//!                [--query NODE QUERY] [--stats]
//!                [--durable] [--churn N] [--snapshot-every K]
//!                [--concurrent N] [--codec json|binary]
//!                [--runtime sim|threaded|sharded] [--threads N]
//!                [--trace] [--export FILE]      run discovery + update
//! p2pdb serve <network.json> --node N --listen ADDR
//!                [--peer M=ADDR]... [--codec json|binary]
//!                [--durable --state-dir DIR] [--snapshot-every K]
//!                                              serve one node over TCP
//! p2pdb launch <network.json> [--codec json|binary] [--timeout-ms N]
//!                [--durable --state-dir DIR] [--no-verify] [--json]
//!                [--bin PATH]                  spawn the whole network as
//!                                              OS processes, update to
//!                                              fix-point, verify vs sim
//! ```
//!
//! Real sockets: `serve` hosts one declared node behind the
//! `p2p_transport` TCP runtime — length-prefixed frames, a
//! `(node, codec)` handshake that rejects misconfigured peers, and a
//! control socket the launcher drives. `launch` spawns one `serve` child
//! per node on loopback ports, injects a global update at the super-peer,
//! polls every node's session fix-point, collects databases and
//! frame/byte/reconnect counters, reaps all children (also on failure),
//! and checks the distributed result tuple-for-tuple against the
//! in-process simulator and the centralized oracle. Argument errors on
//! these verbs exit with status 2 and name the offending flag.
//!
//! Concurrent sessions: `--concurrent N` launches `N` interleaved global
//! update sessions, each rooted at a different node spread across the
//! network, in one simulator run — the multi-writer scenario. Per-session
//! message/byte attribution is printed per root; the final database is
//! identical to running the sessions serially.
//!
//! Durability & churn: `--durable` gives every peer a write-ahead log plus
//! snapshot store; `--churn N` schedules `N` peer crash/restart events
//! spread across the non-super peers mid-session (the run is then driven
//! to closure with bounded re-drives); `--snapshot-every K` sets the WAL
//! records between snapshots. `--churn`/`--snapshot-every` require
//! `--durable` — without storage a crashed peer would lose its data for
//! good.
//!
//! Wire codec: `--codec binary` switches protocol messages (and, with
//! `--durable`, the WAL/snapshot files) to the varint-packed binary
//! encoding; `--codec json` (the default) keeps the historical
//! self-describing JSON. Network files and exports are JSON either way.
//!
//! Runtimes: `--runtime sim` (default) runs the deterministic discrete-event
//! simulator with virtual time; `--runtime threaded` runs one OS thread per
//! peer (capped — refuses large networks); `--runtime sharded` multiplexes
//! all peers over `--threads N` shard threads (default: one per core) and
//! reports cross-shard send counts. The parallel runtimes force eager
//! propagation and reject the simulator-only flags (`--discover`, `--trace`,
//! `--churn`, `--stats`, `--query`, `--export`); `--threads` outside
//! `--runtime sharded` and `--threads 0` are usage errors (exit 2).
//!
//! Example session:
//!
//! ```text
//! p2pdb workload --topology tree --size 7 --records 50 > net.json
//! p2pdb run net.json --discover --stats --query 0 'q(I,T) :- pub(I,T,Y)'
//! ```

use p2pdb::core::config::UpdateMode;
use p2pdb::core::netfile::NetworkFile;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sample") => cmd_sample(),
        Some("workload") => cmd_workload(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("launch") => cmd_launch(&args[1..]),
        _ => {
            eprintln!(
                "usage: p2pdb <sample|workload|run|serve|launch> [options]   \
                 (see --help in source)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.downcast_ref::<Usage>().is_some() {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// An argument-validation failure: printed like any error but exits with
/// status 2, so scripts can tell "you called it wrong" from "it failed".
#[derive(Debug)]
struct Usage(String);

impl std::fmt::Display for Usage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Usage {}

fn usage(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(Usage(msg.into()))
}

fn cmd_sample() -> CliResult {
    let sample = NetworkFile::from_json(
        r#"{
        "super_peer": 0,
        "nodes": [
            { "id": 0, "name": "A", "schema": "a(x: int, y: int)." },
            { "id": 1, "name": "B", "schema": "b(x: int, y: int).",
              "data": { "b": [[{"Int":1},{"Int":2}], [{"Int":2},{"Int":3}]] } }
        ],
        "rules": [ { "name": "r1", "text": "B:b(X,Y) => A:a(X,Y)" } ]
    }"#,
    )?;
    println!("{}", sample.to_json());
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_workload(args: &[String]) -> CliResult {
    let size: u32 = flag_value(args, "--size").unwrap_or("7").parse()?;
    let records: usize = flag_value(args, "--records").unwrap_or("50").parse()?;
    let overlap: u8 = flag_value(args, "--overlap").unwrap_or("0").parse()?;
    let seed: u64 = flag_value(args, "--seed").unwrap_or("42").parse()?;
    let topology = match flag_value(args, "--topology").unwrap_or("tree") {
        "tree" => {
            // Choose the depth of a binary tree closest to the size.
            let mut depth = 1;
            while (Topology::Tree {
                branching: 2,
                depth: depth + 1,
            })
            .node_count()
                <= size as usize
            {
                depth += 1;
            }
            Topology::Tree {
                branching: 2,
                depth,
            }
        }
        "layered" => Topology::LayeredDag {
            layers: (size / 3).max(2),
            width: 3,
            fanout: 2,
        },
        "clique" => Topology::Clique { n: size },
        "ring" => Topology::Ring { n: size.max(2) },
        "chain" => Topology::Chain { n: size },
        other => return Err(format!("unknown topology `{other}`").into()),
    };
    let cfg = WorkloadConfig {
        topology,
        records_per_node: records,
        distribution: if overlap == 0 {
            Distribution::Disjoint
        } else {
            Distribution::OverlapNeighbors { percent: overlap }
        },
        seed,
    };
    // Materialise the workload into a network file by building the system
    // once and exporting its initial state.
    let sys = build_system(&cfg)?.build()?;
    let file = NetworkFile::from_databases(sys.super_peer(), &sys.snapshot().0, sys.rules());
    println!("{}", file.to_json());
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("run: missing <network.json>".into());
    };
    let text = std::fs::read_to_string(path)?;
    let file = NetworkFile::from_json(&text)?;
    let mut builder = file.into_builder()?;
    match flag_value(args, "--mode").unwrap_or("eager") {
        "eager" => builder.config_mut().mode = UpdateMode::Eager,
        "rounds" => builder.config_mut().mode = UpdateMode::Rounds,
        other => return Err(format!("unknown mode `{other}`").into()),
    }
    if args.iter().any(|a| a == "--no-delta-waves") {
        // Full re-ship baseline: every wave answer carries the fragment's
        // whole current extension (delta-driven answers are the default).
        builder.config_mut().delta_waves = false;
    }
    if args.iter().any(|a| a == "--no-plan-cache") {
        // Recompile the query plan on every evaluation (compiled plans
        // cached per rule are the default) — the e22 ablation baseline.
        builder.config_mut().plan_cache = false;
    }
    if args.iter().any(|a| a == "--no-indexes") {
        // Rebuild transient join indexes over whole relations per
        // evaluation instead of probing the persistent, incrementally
        // maintained ones — the legacy cost model.
        builder.config_mut().persistent_indexes = false;
    }
    if args.iter().any(|a| a == "--trace") {
        builder.config_mut().trace_capacity = 256;
    }
    if let Some(codec) = flag_value(args, "--codec") {
        builder.config_mut().codec = codec.parse::<p2pdb::net::Codec>()?;
    }

    // Runtime selection: the deterministic simulator (default), one OS
    // thread per peer, or the sharded worker pool that multiplexes all
    // peers over `--threads` shard threads (default: one per core).
    let runtime = flag_value(args, "--runtime").unwrap_or("sim");
    if !matches!(runtime, "sim" | "threaded" | "sharded") {
        return Err(usage(format!(
            "unknown runtime `{runtime}`: expected sim, threaded or sharded"
        )));
    }
    let threads: Option<usize> = match flag_value(args, "--threads") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| usage(format!("--threads expects a positive number, got `{v}`")))?,
        ),
        None => None,
    };
    if threads == Some(0) {
        return Err(usage(
            "--threads 0 makes no sense: the sharded runtime needs at least one \
             shard thread (drop the flag for one shard per core)",
        ));
    }
    if threads.is_some() && runtime != "sharded" {
        return Err(usage(format!(
            "--threads only applies to --runtime sharded (the {runtime} runtime \
             {} by design)",
            if runtime == "sim" {
                "is single-threaded"
            } else {
                "spawns one thread per peer"
            }
        )));
    }

    // Concurrent sessions.
    let concurrent: Option<usize> = flag_value(args, "--concurrent")
        .map(str::parse)
        .transpose()?;
    if concurrent == Some(0) {
        return Err(
            "--concurrent 0 makes no sense: an update run needs at least one \
                    session (use --concurrent 1 for a single session, or drop the flag)"
                .into(),
        );
    }

    // Durability & churn.
    let durable = args.iter().any(|a| a == "--durable");
    let churn_n: Option<u32> = flag_value(args, "--churn").map(str::parse).transpose()?;
    let snapshot_every: Option<u64> = flag_value(args, "--snapshot-every")
        .map(str::parse)
        .transpose()?;
    if !durable {
        if churn_n.is_some() {
            return Err("--churn requires --durable: without durability a crashed \
                        peer loses its data for good (enable persistence or drop --churn)"
                .into());
        }
        if snapshot_every.is_some() {
            return Err(
                "--snapshot-every requires --durable: it sets the write-ahead-log \
                        records between snapshots, which only exist with persistence on"
                    .into(),
            );
        }
    }
    builder.config_mut().durability = durable;
    if let Some(k) = snapshot_every {
        builder.config_mut().snapshot_every = k;
    }
    if let Some(n) = churn_n.filter(|n| *n > 0) {
        // Crash the non-super peers round-robin, staggered mid-session.
        let victims: Vec<NodeId> = file
            .nodes
            .iter()
            .map(|d| NodeId(d.id))
            .filter(|id| id.0 != file.super_peer)
            .collect();
        if victims.is_empty() {
            return Err("--churn needs at least one non-super peer".into());
        }
        let mut plan = p2pdb::net::ChurnPlan::none();
        for i in 0..n as u64 {
            let node = victims[i as usize % victims.len()];
            let crash_at = p2pdb::net::SimTime::from_millis(2 + 3 * i);
            let restart_at = p2pdb::net::SimTime::from_millis(2 + 3 * i + 2);
            plan = plan.with_crash(node, crash_at, restart_at);
        }
        builder.set_churn(plan);
    }

    // Roots for interleaved sessions: spread across the declared nodes
    // (the same deterministic spread the concurrent-writers workloads use).
    let roots: Vec<NodeId> = match concurrent {
        Some(n) => {
            let nodes: Vec<NodeId> = file.nodes.iter().map(|d| NodeId(d.id)).collect();
            p2pdb::workload::pick_writer_indices(nodes.len(), n)
                .into_iter()
                .map(|i| nodes[i])
                .collect()
        }
        None => vec![NodeId(file.super_peer)],
    };

    if runtime != "sim" {
        // The parallel runtimes drive peers to fix-point without the
        // discrete-event machinery; everything that needs the simulator's
        // virtual time, trace or in-run system handle is rejected up front.
        for flag in [
            "--discover",
            "--trace",
            "--churn",
            "--stats",
            "--query",
            "--export",
        ] {
            if args.iter().any(|a| a == flag) {
                return Err(usage(format!(
                    "{flag} is simulator-only: drop the flag or use --runtime sim"
                )));
            }
        }
        if flag_value(args, "--mode") == Some("rounds") {
            return Err(usage(
                "--mode rounds is simulator-only: the parallel runtimes force \
                 eager propagation",
            ));
        }
        use p2pdb::core::system::{run_updates_sharded, run_updates_threaded};
        let (_dbs, stats, all_closed) = match runtime {
            "threaded" => run_updates_threaded(builder, &roots)?,
            _ => run_updates_sharded(
                builder,
                &roots,
                threads.unwrap_or(0),
                p2pdb::net::ShardPlacement::RoundRobin,
            )?,
        };
        println!(
            "update: {} messages, {} bytes, {} wall, all closed: {}",
            stats.total_messages, stats.total_bytes, stats.finished_at, all_closed
        );
        if runtime == "sharded" {
            println!(
                "sharded: {} threads, {} cross-shard sends",
                threads.unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                }),
                stats.cross_shard_sends
            );
        }
        return Ok(());
    }

    let mut sys = builder.build()?;

    if args.iter().any(|a| a == "--discover") {
        let report = sys.run_discovery();
        println!(
            "discovery: {} messages, {} virtual time, closed: {}",
            report.messages, report.outcome.virtual_time, report.all_closed
        );
        for (node, peer) in sys.peers() {
            if let Some(paths) = peer.paths() {
                let mut shown: Vec<String> = paths
                    .iter()
                    .map(|p| p2pdb::topology::paths::format_path(p))
                    .collect();
                shown.sort();
                println!(
                    "  {node}: {}",
                    if shown.is_empty() {
                        "∅".into()
                    } else {
                        shown.join(" ")
                    }
                );
            }
        }
    }

    let reports = if churn_n.unwrap_or(0) > 0 {
        // Churn can stall a wave (a crashed peer cannot echo); drive the
        // sessions to closure with bounded re-drives.
        sys.run_updates_resilient(&roots, 8)
    } else {
        sys.run_updates(&roots)
    };
    let report = &reports[0];
    println!(
        "update: {} messages, {} bytes, {} virtual time, all closed: {}",
        report.messages,
        report.bytes,
        report.outcome.virtual_time,
        reports.iter().all(|r| r.all_closed),
    );
    if reports.len() > 1 {
        for r in &reports {
            println!(
                "  session {}: {} messages, {} bytes, closed: {}",
                r.session, r.session_messages, r.session_bytes, r.all_closed
            );
        }
    }
    if churn_n.unwrap_or(0) > 0 {
        let s = sys.sum_stats();
        println!(
            "churn: {} crashes, {} recoveries, {} resync rows, {} redrive(s)",
            s.crashes,
            s.recoveries,
            s.resync_rows,
            reports.iter().map(|r| r.redrives).max().unwrap_or(0)
        );
    }
    let errors: Vec<_> = report.errors.clone();
    if !errors.is_empty() {
        for (node, err) in &errors {
            eprintln!("  {node}: {err}");
        }
        return Err("peers reported errors".into());
    }

    if args.iter().any(|a| a == "--trace") {
        let columns: Vec<NodeId> = sys.peers().map(|(id, _)| *id).take(6).collect();
        println!("{}", sys.trace().render_sequence_diagram(&columns));
    }

    if let Some(i) = args.iter().position(|a| a == "--query") {
        let node: u32 = args
            .get(i + 1)
            .ok_or("--query needs NODE and QUERY")?
            .parse()?;
        let query = args.get(i + 2).ok_or("--query needs NODE and QUERY")?;
        let answers = sys.query(NodeId(node), query)?;
        println!("{} answers at node {}:", answers.len(), NodeId(node));
        for t in answers.iter().take(25) {
            println!("  {t}");
        }
        if answers.len() > 25 {
            println!("  … ({} more)", answers.len() - 25);
        }
    }

    if args.iter().any(|a| a == "--stats") {
        println!("per-peer statistics:");
        let collected = sys.collect_stats();
        for (node, stats) in &collected {
            println!("  {node}: {stats}");
        }
        let total_sessions: u64 = collected.values().map(|s| s.sessions_participated).sum();
        let peak = collected
            .values()
            .map(|s| s.concurrent_peak)
            .max()
            .unwrap_or(0);
        println!(
            "sessions: {} launched, {} peer-participations, peak {} concurrent",
            roots.len(),
            total_sessions,
            peak
        );
    }

    if let Some(out) = flag_value(args, "--export") {
        let export = NetworkFile::from_databases(sys.super_peer(), &sys.snapshot().0, sys.rules());
        std::fs::write(out, export.to_json())?;
        println!("exported materialised state to {out}");
    }
    Ok(())
}

/// All occurrences of a repeatable flag's value (`--peer M=ADDR ...`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Shared by `serve` and `launch`: the `--durable`/`--state-dir` pairing.
fn durable_state_dir(
    verb: &str,
    args: &[String],
) -> Result<Option<std::path::PathBuf>, Box<dyn std::error::Error>> {
    let durable = args.iter().any(|a| a == "--durable");
    let state_dir = flag_value(args, "--state-dir");
    match (durable, state_dir) {
        (true, Some(dir)) => Ok(Some(std::path::PathBuf::from(dir))),
        (true, None) => Err(usage(format!(
            "{verb}: --durable needs --state-dir DIR (where the WAL and snapshots live)"
        ))),
        (false, Some(_)) => Err(usage(format!(
            "{verb}: --state-dir only makes sense with --durable"
        ))),
        (false, None) => Ok(None),
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    use p2pdb::core::socket::{prepare, ServeConfig};

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(usage("serve: missing <network.json>"));
    };
    let node: u32 = match flag_value(args, "--node") {
        Some(v) => v
            .parse()
            .map_err(|e| usage(format!("serve: --node {v}: not a node id ({e})")))?,
        None => {
            return Err(usage(
                "serve: missing --node N (which declared node to host)",
            ))
        }
    };
    let listen: std::net::SocketAddr = match flag_value(args, "--listen") {
        Some(v) => v.parse().map_err(|e| {
            usage(format!(
                "serve: --listen {v}: not a socket address like 127.0.0.1:7000 ({e})"
            ))
        })?,
        None => return Err(usage("serve: missing --listen ADDR (e.g. 127.0.0.1:7000)")),
    };
    let codec = match flag_value(args, "--codec") {
        Some(v) => v
            .parse::<p2pdb::net::Codec>()
            .map_err(|e| usage(format!("serve: --codec {v}: {e}")))?,
        None => p2pdb::net::Codec::Json,
    };
    match flag_value(args, "--mode") {
        None | Some("eager") => {}
        Some("rounds") => {
            return Err(usage(
                "serve: --mode rounds is simulator-only (real sockets have no global \
                 lock-step); the socket runtime is always eager",
            ));
        }
        Some(other) => return Err(usage(format!("serve: --mode {other}: unknown mode"))),
    }
    let mut peers = std::collections::BTreeMap::new();
    for spec in flag_values(args, "--peer") {
        let (id, addr) = spec.split_once('=').ok_or_else(|| {
            usage(format!(
                "serve: --peer {spec}: expected NODE=ADDR, e.g. 2=127.0.0.1:7002"
            ))
        })?;
        let id: u32 = id
            .parse()
            .map_err(|e| usage(format!("serve: --peer {spec}: bad node id ({e})")))?;
        let addr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| usage(format!("serve: --peer {spec}: bad address ({e})")))?;
        peers.insert(id, addr);
    }
    let state_dir = durable_state_dir("serve", args)?;
    let snapshot_every: Option<u64> = flag_value(args, "--snapshot-every")
        .map(str::parse)
        .transpose()
        .map_err(|e| usage(format!("serve: --snapshot-every: {e}")))?;
    if snapshot_every.is_some() && state_dir.is_none() {
        return Err(usage("serve: --snapshot-every requires --durable"));
    }

    let text = std::fs::read_to_string(path)?;
    let netfile = NetworkFile::from_json(&text)?;
    let mut cfg = ServeConfig::new(netfile, node, listen);
    cfg.peers = peers;
    cfg.codec = codec;
    cfg.state_dir = state_dir;
    if let Some(k) = snapshot_every {
        cfg.snapshot_every = k;
    }

    let server = match prepare(&cfg) {
        Ok(s) => s,
        Err(p2pdb::core::CoreError::Listen { addr, detail }) => {
            // A dead listen address is a caller mistake (typo'd interface,
            // port already taken), not a runtime failure.
            return Err(usage(format!("serve: --listen {addr}: {detail}")));
        }
        Err(p2pdb::core::CoreError::UnknownNode(n)) => {
            return Err(usage(format!(
                "serve: --node {n}: not declared in {path} (check the network file)"
            )));
        }
        Err(e) => return Err(e.into()),
    };
    println!(
        "serving node {} on {} (codec {}, {})",
        node,
        server.local_addr(),
        codec.name(),
        if server.recovered() {
            "recovered from disk"
        } else if cfg.state_dir.is_some() {
            "durable, fresh"
        } else {
            "volatile"
        }
    );
    let outcome = server.run()?;
    println!(
        "node {} done: {} frames / {} bytes sent, {} frames / {} bytes received, \
         {} reconnects",
        outcome.node,
        outcome.transport.frames_sent,
        outcome.transport.bytes_sent,
        outcome.transport.frames_received,
        outcome.transport.bytes_received,
        outcome.transport.reconnects,
    );
    if !outcome.errors.is_empty() {
        for err in &outcome.errors {
            eprintln!("  {err}");
        }
        return Err("peer recorded errors".into());
    }
    Ok(())
}

fn cmd_launch(args: &[String]) -> CliResult {
    use p2pdb::core::socket::{launch_cluster, ClusterConfig};

    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(usage("launch: missing <network.json>"));
    };
    let codec = match flag_value(args, "--codec") {
        Some(v) => v
            .parse::<p2pdb::net::Codec>()
            .map_err(|e| usage(format!("launch: --codec {v}: {e}")))?,
        None => p2pdb::net::Codec::Json,
    };
    let timeout_ms: u64 = flag_value(args, "--timeout-ms")
        .unwrap_or("60000")
        .parse()
        .map_err(|e| usage(format!("launch: --timeout-ms: {e}")))?;
    let state_dir = durable_state_dir("launch", args)?;
    let json_out = args.iter().any(|a| a == "--json");
    let bin = match flag_value(args, "--bin") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::current_exe()?,
    };

    let mut cfg = ClusterConfig::new(std::path::PathBuf::from(path), bin);
    cfg.codec = codec;
    cfg.state_dir = state_dir;
    cfg.timeout = std::time::Duration::from_millis(timeout_ms);
    cfg.verify = !args.iter().any(|a| a == "--no-verify");

    // Progress goes to stderr under --json so stdout stays machine-readable.
    let mut progress = |line: String| {
        if json_out {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let outcome = launch_cluster(&cfg, &mut progress)?;

    if json_out {
        let t = &outcome.transport_total;
        let mut fields = vec![
            format!("\"nodes\":{}", outcome.counters.len()),
            format!("\"codec\":\"{}\"", codec.name()),
            format!("\"wall_ms\":{}", outcome.converge_wall.as_millis()),
            format!("\"frames_sent\":{}", t.frames_sent),
            format!("\"bytes_sent\":{}", t.bytes_sent),
            format!("\"reconnects\":{}", t.reconnects),
        ];
        if let Some(ok) = outcome.verified {
            fields.push(format!("\"verified\":{ok}"));
            fields.push(format!("\"sim_messages\":{}", outcome.sim_messages));
            fields.push(format!("\"sim_bytes\":{}", outcome.sim_bytes));
        }
        println!("{{{}}}", fields.join(","));
    } else {
        for (node, c) in &outcome.counters {
            println!(
                "node {}: {} frames / {} bytes sent, {} frames / {} bytes received, \
                 {} reconnects, {} tuples inserted",
                node,
                c.transport.frames_sent,
                c.transport.bytes_sent,
                c.transport.frames_received,
                c.transport.bytes_received,
                c.transport.reconnects,
                c.peer.tuples_inserted,
            );
            for err in &c.errors {
                eprintln!("  node {node}: {err}");
            }
        }
        let t = &outcome.transport_total;
        println!(
            "cluster: {} nodes, {} frames / {} bytes on the wire, {} reconnects, \
             converged in {:.1?}",
            outcome.counters.len(),
            t.frames_sent,
            t.bytes_sent,
            t.reconnects,
            outcome.converge_wall,
        );
        match outcome.verified {
            Some(true) => println!(
                "verified: MATCH vs simulator and oracle (sim shipped {} messages / {} bytes)",
                outcome.sim_messages, outcome.sim_bytes
            ),
            Some(false) => {}
            None => println!("verification skipped (--no-verify)"),
        }
    }
    if outcome.verified == Some(false) {
        return Err("cluster database diverges from the in-process simulator/oracle".into());
    }
    if outcome.counters.values().any(|c| !c.errors.is_empty()) {
        return Err("peers recorded errors".into());
    }
    Ok(())
}
