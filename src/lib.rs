//! # p2pdb — robust data sharing and updates in P2P database networks
//!
//! A full reproduction of *"A distributed algorithm for robust data sharing
//! and updates in P2P database networks"* (Franconi, Kuper, Lopatenko,
//! Zaihrayeu — EDBT P2P&DB'04) as a Rust workspace. This facade crate
//! re-exports the public API of every member crate:
//!
//! * [`relational`] — in-memory relational engine with labeled nulls,
//!   conjunctive queries and the restricted chase;
//! * [`topology`] — dependency graphs, maximal dependency paths, topology
//!   generators and separation analysis;
//! * [`net`] — deterministic discrete-event simulator and threaded runtime
//!   (the JXTA-layer substitute), with fault injection and peer churn;
//! * [`transport`] — real TCP sockets: length-prefixed frames, the
//!   `(node, codec)` handshake, and the socket runtime behind
//!   `p2pdb serve` / `p2pdb launch`;
//! * [`storage`] — durable peer state: write-ahead log, snapshots, crash
//!   recovery;
//! * [`core`] — the paper's algorithms: topology discovery (A1–A3), the
//!   distributed update (A4–A6, eager and rounds modes), dynamic changes,
//!   super-peer driving and the global fix-point oracle;
//! * [`workload`] — DBLP-like workloads in the paper's three schemas and two
//!   distributions;
//! * [`baselines`] — centralized (Calvanese-style) and acyclic
//!   (Halevy-style) comparators.
//!
//! ## Quickstart
//!
//! ```
//! use p2pdb::core::system::P2PSystemBuilder;
//! use p2pdb::relational::Val;
//! use p2pdb::topology::NodeId;
//!
//! // Two peers: A imports B's table through a coordination rule.
//! let mut b = P2PSystemBuilder::new();
//! b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
//! b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
//! b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
//! b.insert(1, "b", vec![Val::Int(1), Val::Int(2)]).unwrap();
//!
//! let mut sys = b.build().unwrap();
//! let report = sys.run_update();
//! assert!(report.all_closed);
//!
//! // After the update, queries are answered locally (zero messages).
//! let ans = sys.query(NodeId(0), "q(X, Y) :- a(X, Y)").unwrap();
//! assert_eq!(ans.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use p2p_baselines as baselines;
pub use p2p_core as core;
pub use p2p_net as net;
pub use p2p_relational as relational;
pub use p2p_storage as storage;
pub use p2p_topology as topology;
pub use p2p_transport as transport;
pub use p2p_workload as workload;
