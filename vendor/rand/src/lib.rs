//! Minimal vendored stand-in for `rand` 0.8, used because this build
//! environment has no network access. Covers exactly the surface the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer `Range` / `RangeInclusive` bounds.
//!
//! `StdRng` is a SplitMix64 generator — deterministic for a given seed,
//! which is all the workspace's seeded experiments require (statistical
//! quality on par with what topology/workload generation needs; not
//! cryptographic, and neither is real `StdRng`'s use here).

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented like real rand's `Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a range. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 in this stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0..100u8);
            assert!(u < 100);
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
