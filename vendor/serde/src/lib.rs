//! Minimal vendored stand-in for `serde`, used because this build environment
//! has no network access to crates.io. It exposes the same *surface* the
//! workspace uses — `Serialize`/`Deserialize` traits plus derive macros with
//! `#[serde(skip)]` / `#[serde(default)]` support — over a simple content-tree
//! data model that `serde_json` (also vendored) renders to and parses from
//! JSON using the standard serde conventions (externally tagged enums,
//! `Option` as `null`, maps as objects, sequences as arrays).
//!
//! Swapping back to the real crates is a `Cargo.toml`-only change: the
//! in-tree usage is a strict subset of real serde's API.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing content tree every value serializes into.
///
/// This plays the role of serde's data model; `serde_json` maps it 1:1 onto
/// JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object (insertion-ordered; keys are strings as in JSON).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrows the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks a field up in an object by key (first match wins, as in JSON).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` of {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can serialize itself into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to content.
    fn to_content(&self) -> Content;
}

/// A value that can reconstruct itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of content.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

// ------------------------------------------------------- smart pointers

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(Arc::from(s.as_str())),
            _ => Err(DeError::expected("string", "Arc<str>")),
        }
    }
}
impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "Arc<[T]>"))?;
        s.iter()
            .map(T::from_content)
            .collect::<Result<Vec<_>, _>>()
            .map(Arc::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(T::to_content).collect())
    }
}

// ---------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(T::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?;
        s.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(T::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "BTreeSet"))?;
        s.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(T::to_content).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "HashSet"))?;
        s.iter().map(T::from_content).collect()
    }
}

/// Renders a map key: JSON object keys are strings, so scalar keys (strings
/// and integers, including derived newtypes over them) become their string
/// form, as `serde_json` does.
pub fn key_to_string(key: &impl Serialize) -> String {
    match key.to_content() {
        Content::Str(s) => s,
        Content::I64(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        Content::Bool(v) => v.to_string(),
        other => panic!("map key must serialize to a scalar, got {other:?}"),
    }
}

/// Parses a map key back: tries the string form first, then the integer
/// forms (for integer-like keys rendered as strings).
pub fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_content(&Content::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(v) = key.parse::<u64>() {
        if let Ok(k) = K::from_content(&Content::U64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = key.parse::<i64>() {
        if let Ok(k) = K::from_content(&Content::I64(v)) {
            return Ok(k);
        }
    }
    if let Ok(v) = key.parse::<bool>() {
        if let Ok(k) = K::from_content(&Content::Bool(v)) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!("unparseable map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?;
        m.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_content()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?;
        m.iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_content(v)?)))
            .collect()
    }
}

// --------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$(stringify!($n)),+].len();
                if s.len() != expected {
                    return Err(DeError::expected("tuple of matching arity", "tuple"));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}
