//! Byte-oriented LZ back-reference compression for codec blocks.
//!
//! Protocol payloads ship first-use symbol dictionaries — publication
//! titles, author names, venues — whose words repeat heavily within one
//! message. Varints cannot touch that redundancy; back-references can.
//! This module is a deliberately small LZSS-style compressor the binary
//! codec applies to its string-bearing blocks.
//!
//! ## Stream layout
//!
//! ```text
//! varint raw_len, then token groups:
//!   control byte — 8 flags, LSB first; 0 = literal, 1 = match
//!   literal      — 1 raw byte
//!   match        — varint offset (1..=8192, distance back into the
//!                  output), varint (length - 4); min match 4 bytes
//! ```
//!
//! Matches may overlap their own output (offset < length), RLE-style.
//! Compression is **deterministic**: equal input bytes always produce
//! equal compressed bytes (greedy longest-match over a fixed-order hash
//! chain), so codecs built on it stay byte-for-byte round-trip stable.

use crate::Error;

/// Maximum back-reference distance.
pub const WINDOW: usize = 8192;
/// Shortest match worth a token (offset + length varints ≈ 3 bytes).
const MIN_MATCH: usize = 4;
/// Longest match emitted by [`compress`] (and accepted per token on
/// decode, indirectly, via the `raw_len` bound).
const MAX_MATCH: usize = 1 << 16;
/// How many hash-chain candidates the matcher tries per position.
const MAX_CHAIN: usize = 32;
const HASH_BITS: u32 = 13;

/// Decompressed payloads larger than this are rejected up front rather
/// than allocated — far above any message the codec produces.
pub const MAX_RAW_LEN: usize = 1 << 30;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Token stream writer: fills flag bits into the current control byte and
/// appends literal / match payloads after it.
struct Tokens {
    out: Vec<u8>,
    /// Index of the control byte currently being filled.
    ctrl_at: usize,
    /// Flag bits already used in it (8 = full, start a new one).
    used: u8,
}

impl Tokens {
    fn flag(&mut self, is_match: bool) {
        if self.used == 8 {
            self.ctrl_at = self.out.len();
            self.out.push(0);
            self.used = 0;
        }
        if is_match {
            self.out[self.ctrl_at] |= 1 << self.used;
        }
        self.used += 1;
    }

    fn literal(&mut self, b: u8) {
        self.flag(false);
        self.out.push(b);
    }

    fn matched(&mut self, offset: usize, len: usize) {
        self.flag(true);
        push_varint(&mut self.out, offset as u64);
        push_varint(&mut self.out, (len - MIN_MATCH) as u64);
    }
}

fn common_len(input: &[u8], a: usize, b: usize) -> usize {
    let cap = (input.len() - b).min(MAX_MATCH);
    let mut n = 0;
    while n < cap && input[a + n] == input[b + n] {
        n += 1;
    }
    n
}

/// Compresses `input`; the result always decompresses to exactly `input`
/// via [`decompress`]. Equal inputs yield equal outputs.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    push_varint(&mut out, input.len() as u64);
    let mut tokens = Tokens {
        out,
        ctrl_at: 0,
        used: 8,
    };
    // Newest-first hash chains over 4-byte prefixes.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let insert = |head: &mut [usize], prev: &mut [usize], input: &[u8], p: usize| {
        if p + MIN_MATCH <= input.len() {
            let h = hash4(&input[p..]);
            prev[p] = head[h];
            head[h] = p;
        }
    };
    let mut pos = 0;
    while pos < input.len() {
        let mut best_len = 0;
        let mut best_off = 0;
        if pos + MIN_MATCH <= input.len() {
            let mut cand = head[hash4(&input[pos..])];
            let mut steps = 0;
            while cand != usize::MAX && pos - cand <= WINDOW && steps < MAX_CHAIN {
                let len = common_len(input, cand, pos);
                if len > best_len {
                    best_len = len;
                    best_off = pos - cand;
                }
                cand = prev[cand];
                steps += 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.matched(best_off, best_len);
            for p in pos..pos + best_len {
                insert(&mut head, &mut prev, input, p);
            }
            pos += best_len;
        } else {
            tokens.literal(input[pos]);
            insert(&mut head, &mut prev, input, pos);
            pos += 1;
        }
    }
    tokens.out
}

/// Decompresses a [`compress`]-produced stream, rejecting malformed
/// input: truncated streams, out-of-range back-references, output that
/// misses or overshoots the declared length, and trailing bytes.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    let mut at = 0;
    let next = |at: &mut usize| -> Result<u8, Error> {
        let b = *data.get(*at).ok_or(Error::Truncated)?;
        *at += 1;
        Ok(b)
    };
    let varint = |at: &mut usize| -> Result<u64, Error> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = next(at)?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Error::BadVarint)
    };
    let raw_len = usize::try_from(varint(&mut at)?).map_err(|_| Error::BadVarint)?;
    if raw_len > MAX_RAW_LEN {
        return Err(Error::BadMatch);
    }
    let mut out = Vec::with_capacity(raw_len.min(1 << 20));
    while out.len() < raw_len {
        let ctrl = next(&mut at)?;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if ctrl & (1 << bit) == 0 {
                out.push(next(&mut at)?);
            } else {
                let offset = usize::try_from(varint(&mut at)?).map_err(|_| Error::BadVarint)?;
                let len = usize::try_from(varint(&mut at)?)
                    .ok()
                    .and_then(|n| n.checked_add(MIN_MATCH))
                    .ok_or(Error::BadVarint)?;
                if offset == 0 || offset > out.len() || offset > WINDOW {
                    return Err(Error::BadMatch);
                }
                if raw_len - out.len() < len {
                    return Err(Error::BadMatch);
                }
                // Byte-at-a-time: overlapping matches (offset < len)
                // repeat freshly written output, which is intended.
                for _ in 0..len {
                    out.push(out[out.len() - offset]);
                }
            }
        }
    }
    if at != data.len() {
        return Err(Error::TrailingBytes(data.len() - at));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let packed = compress(input);
        assert_eq!(decompress(&packed).unwrap(), input);
        // Determinism: equal input, equal bytes.
        assert_eq!(compress(input), packed);
        packed
    }

    #[test]
    fn empty_and_tiny_inputs_roundtrip() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(&[0xff; 3]);
    }

    #[test]
    fn repetitive_text_shrinks_hard() {
        let text = "peer data query schema update exchange ".repeat(40);
        let packed = roundtrip(text.as_bytes());
        assert!(
            packed.len() * 10 < text.len(),
            "{} not ≪ {}",
            packed.len(),
            text.len()
        );
    }

    #[test]
    fn overlapping_runs_roundtrip() {
        // Runs force offset < length: the decoder must copy bytes it has
        // just written.
        let mut input = vec![7u8; 500];
        input.extend_from_slice(b"tail");
        let packed = roundtrip(&input);
        assert!(packed.len() < 32);
    }

    #[test]
    fn incompressible_input_survives() {
        // A deterministic pseudo-random stream (xorshift) has no 4-byte
        // repeats to speak of; output may grow slightly but must roundtrip.
        let mut x = 0x2545_f491u32;
        let input: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let packed = roundtrip(&input);
        assert!(packed.len() <= input.len() + input.len() / 8 + 16);
    }

    #[test]
    fn long_matches_past_the_window_roundtrip() {
        let mut input = b"abcdefgh".repeat(4);
        input.extend(vec![0u8; WINDOW + 100]);
        input.extend(b"abcdefgh".repeat(4));
        roundtrip(&input);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        // Truncated header / body.
        assert_eq!(decompress(&[]), Err(Error::Truncated));
        let packed = compress(b"peer data peer data peer data");
        assert!(decompress(&packed[..packed.len() - 2]).is_err());
        // Trailing bytes after the declared length.
        let mut long = packed.clone();
        long.push(0);
        assert_eq!(decompress(&long), Err(Error::TrailingBytes(1)));
        // A match before any output exists.
        let bogus = [4u8, 0b0000_0001, 1, 0]; // raw_len 4, match offset 1 at pos 0
        assert_eq!(decompress(&bogus), Err(Error::BadMatch));
        // Declared length absurdly large.
        let mut huge = Vec::new();
        super::push_varint(&mut huge, (MAX_RAW_LEN + 1) as u64);
        assert_eq!(decompress(&huge), Err(Error::BadMatch));
    }
}
