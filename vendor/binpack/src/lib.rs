//! # binpack — compact binary framing for the vendored serde content model
//!
//! A self-describing binary codec over [`serde::Content`], the vendored
//! stand-in's serialization tree. It plays the role bincode/postcard play
//! for real serde: same data model as the JSON path, far fewer bytes.
//!
//! ## Wire format
//!
//! A document is one encoded value. Every value starts with a 1-byte tag:
//!
//! | tag | value  | payload                                             |
//! |-----|--------|-----------------------------------------------------|
//! | 0   | `Null` | —                                                   |
//! | 1   | `false`| —                                                   |
//! | 2   | `true` | —                                                   |
//! | 3   | `I64`  | zigzag varint                                       |
//! | 4   | `U64`  | varint                                              |
//! | 5   | `F64`  | 8 bytes, IEEE-754 little-endian                     |
//! | 6   | `Str`  | varint byte length + UTF-8 bytes                    |
//! | 7   | `Seq`  | varint count + that many values                     |
//! | 8   | `Map`  | varint count + that many (key, value) entries       |
//!
//! Integers use LEB128 **varints** (7 bits per byte, high bit = continue);
//! signed values are **zigzag**-folded first so small negatives stay small.
//!
//! Map keys are **interned per document**: each entry's key is a varint
//! `k`. `k = 0` announces a new key — a length-prefixed string literal
//! follows and is assigned the next id (ids count from 1 in order of first
//! appearance); `k ≥ 1` is a back-reference to key id `k`. Struct-shaped
//! data, where every element of a `Seq` repeats the same field names, pays
//! for each name once.
//!
//! Non-finite floats (`NaN`, `±inf`) are **rejected on encode**, exactly as
//! the vendored `serde_json` rejects them — the two codecs accept the same
//! set of documents, so a value that round-trips through one round-trips
//! through the other.
//!
//! The [`Writer`]/[`Reader`] primitives are public so callers can build
//! specialized framings (columnar row blocks, delta streams) that embed or
//! bypass the generic document codec while sharing the varint machinery.
//! The [`lz`] module adds a deterministic LZ back-reference compressor for
//! string-heavy blocks, where varints alone cannot remove redundancy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

pub mod lz;

/// Maximum nesting depth accepted by [`from_bytes`] (and enforced
/// symmetrically on encode); mirrors the vendored `serde_json` parser.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

/// Encoding/decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input ended inside a value.
    Truncated,
    /// An unknown value tag byte.
    BadTag(u8),
    /// A varint ran past 10 bytes / overflowed 64 bits.
    BadVarint,
    /// A map-key back-reference pointed past the keys seen so far.
    BadKeyRef(u64),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the document's root value.
    TrailingBytes(usize),
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// `NaN` / `±inf` cannot be encoded (JSON-path parity).
    NonFiniteFloat,
    /// A decoded document did not deserialize into the requested type.
    De(String),
    /// An LZ back-reference pointed outside the produced output, or the
    /// declared decompressed length was malformed.
    BadMatch,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "input truncated inside a value"),
            Error::BadTag(t) => write!(f, "unknown value tag {t}"),
            Error::BadVarint => write!(f, "malformed varint"),
            Error::BadKeyRef(k) => write!(f, "map key back-reference {k} out of range"),
            Error::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            Error::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after document"),
            Error::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            Error::NonFiniteFloat => write!(f, "non-finite f64 cannot be encoded"),
            Error::De(msg) => write!(f, "decoded document mismatch: {msg}"),
            Error::BadMatch => write!(f, "LZ back-reference or length out of range"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Append-only byte sink with varint/zigzag/length-prefix primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Writes an unsigned LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a signed value as zigzag + varint.
    pub fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes a varint byte-length prefix followed by the raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes the 8 IEEE-754 bytes of `v`, little-endian. The caller is
    /// responsible for rejecting non-finite values where JSON parity
    /// matters; the generic document codec does.
    pub fn put_f64_bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Cursor over an encoded byte slice, mirroring [`Writer`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or(Error::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(Error::BadVarint);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-folded signed varint.
    pub fn get_zigzag(&mut self) -> Result<i64> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a varint length prefix and borrows that many bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = usize::try_from(self.get_varint()?).map_err(|_| Error::BadVarint)?;
        let end = self.pos.checked_add(len).ok_or(Error::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(Error::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| Error::BadUtf8)
    }

    /// Reads 8 little-endian IEEE-754 bytes.
    pub fn get_f64_bits(&mut self) -> Result<f64> {
        let end = self.pos.checked_add(8).ok_or(Error::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(Error::Truncated)?;
        self.pos = end;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }
}

// ---------------------------------------------------------------------------
// Generic document codec
// ---------------------------------------------------------------------------

/// Per-document map-key intern table.
#[derive(Default)]
struct KeyDict {
    keys: Vec<String>,
}

impl KeyDict {
    fn id_of(&self, key: &str) -> Option<u64> {
        // Documents carry at most a few dozen distinct keys; linear scan
        // beats hashing at that size and keeps the table allocation-free
        // on lookup.
        self.keys
            .iter()
            .position(|k| k == key)
            .map(|i| i as u64 + 1)
    }
}

/// Encodes a content tree into a fresh byte document.
pub fn content_to_bytes(c: &Content) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    append_content(&mut w, c)?;
    Ok(w.into_bytes())
}

/// Encodes a content tree onto the end of an existing [`Writer`] — the
/// hook for specialized framings that embed generic documents. The key
/// intern table is scoped to this call.
pub fn append_content(w: &mut Writer, c: &Content) -> Result<()> {
    let mut dict = KeyDict::default();
    encode_value(w, c, &mut dict, 0)
}

fn encode_value(w: &mut Writer, c: &Content, dict: &mut KeyDict, depth: usize) -> Result<()> {
    if depth > MAX_DEPTH {
        return Err(Error::TooDeep);
    }
    match c {
        Content::Null => w.put_u8(TAG_NULL),
        Content::Bool(false) => w.put_u8(TAG_FALSE),
        Content::Bool(true) => w.put_u8(TAG_TRUE),
        Content::I64(v) => {
            w.put_u8(TAG_I64);
            w.put_zigzag(*v);
        }
        Content::U64(v) => {
            w.put_u8(TAG_U64);
            w.put_varint(*v);
        }
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::NonFiniteFloat);
            }
            w.put_u8(TAG_F64);
            w.put_f64_bits(*v);
        }
        Content::Str(s) => {
            w.put_u8(TAG_STR);
            w.put_str(s);
        }
        Content::Seq(items) => {
            w.put_u8(TAG_SEQ);
            w.put_varint(items.len() as u64);
            for item in items {
                encode_value(w, item, dict, depth + 1)?;
            }
        }
        Content::Map(entries) => {
            w.put_u8(TAG_MAP);
            w.put_varint(entries.len() as u64);
            for (key, value) in entries {
                match dict.id_of(key) {
                    Some(id) => w.put_varint(id),
                    None => {
                        w.put_varint(0);
                        w.put_str(key);
                        dict.keys.push(key.clone());
                    }
                }
                encode_value(w, value, dict, depth + 1)?;
            }
        }
    }
    Ok(())
}

/// Decodes one whole document, rejecting trailing bytes.
pub fn content_from_bytes(bytes: &[u8]) -> Result<Content> {
    let mut r = Reader::new(bytes);
    let c = read_content(&mut r)?;
    if !r.is_at_end() {
        return Err(Error::TrailingBytes(r.remaining()));
    }
    Ok(c)
}

/// Decodes one document from the reader's current position, leaving the
/// cursor just past it — the decode-side hook for embedded documents.
pub fn read_content(r: &mut Reader<'_>) -> Result<Content> {
    let mut dict = KeyDict::default();
    decode_value(r, &mut dict, 0)
}

fn decode_value(r: &mut Reader<'_>, dict: &mut KeyDict, depth: usize) -> Result<Content> {
    if depth > MAX_DEPTH {
        return Err(Error::TooDeep);
    }
    Ok(match r.get_u8()? {
        TAG_NULL => Content::Null,
        TAG_FALSE => Content::Bool(false),
        TAG_TRUE => Content::Bool(true),
        TAG_I64 => Content::I64(r.get_zigzag()?),
        TAG_U64 => Content::U64(r.get_varint()?),
        TAG_F64 => Content::F64(r.get_f64_bits()?),
        TAG_STR => Content::Str(r.get_str()?.to_owned()),
        TAG_SEQ => {
            let n = usize::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
            let mut items = Vec::with_capacity(n.min(r.remaining() + 1));
            for _ in 0..n {
                items.push(decode_value(r, dict, depth + 1)?);
            }
            Content::Seq(items)
        }
        TAG_MAP => {
            let n = usize::try_from(r.get_varint()?).map_err(|_| Error::BadVarint)?;
            let mut entries = Vec::with_capacity(n.min(r.remaining() + 1));
            for _ in 0..n {
                let key = match r.get_varint()? {
                    0 => {
                        let key = r.get_str()?.to_owned();
                        dict.keys.push(key.clone());
                        key
                    }
                    id => dict
                        .keys
                        .get(id as usize - 1)
                        .cloned()
                        .ok_or(Error::BadKeyRef(id))?,
                };
                entries.push((key, decode_value(r, dict, depth + 1)?));
            }
            Content::Map(entries)
        }
        tag => return Err(Error::BadTag(tag)),
    })
}

// ---------------------------------------------------------------------------
// Typed convenience layer
// ---------------------------------------------------------------------------

/// Serializes any vendored-serde value into a binary document.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    content_to_bytes(&value.to_content())
}

/// The encoded byte length of a value — one encode pass, no second walk.
pub fn encoded_len<T: Serialize + ?Sized>(value: &T) -> Result<usize> {
    Ok(to_bytes(value)?.len())
}

/// Deserializes a value from a binary document.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let c = content_from_bytes(bytes)?;
    T::from_content(&c).map_err(|e| Error::De(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep_roundtrip(c: &Content) {
        let bytes = content_to_bytes(c).expect("encode");
        let back = content_from_bytes(&bytes).expect("decode");
        assert_eq!(&back, c, "document changed across the codec");
    }

    #[test]
    fn scalars_roundtrip() {
        for c in [
            Content::Null,
            Content::Bool(true),
            Content::Bool(false),
            Content::I64(0),
            Content::I64(-1),
            Content::I64(i64::MIN),
            Content::I64(i64::MAX),
            Content::U64(0),
            Content::U64(u64::MAX),
            Content::F64(0.25),
            Content::F64(-1.5e300),
            Content::Str(String::new()),
            Content::Str("héllo \u{1F980}".into()),
        ] {
            deep_roundtrip(&c);
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Content::Map(vec![
            (
                "rows".into(),
                Content::Seq(vec![
                    Content::Map(vec![
                        ("x".into(), Content::I64(1)),
                        ("y".into(), Content::Str("a".into())),
                    ]),
                    Content::Map(vec![
                        ("x".into(), Content::I64(-40)),
                        ("y".into(), Content::Null),
                    ]),
                ]),
            ),
            ("n".into(), Content::U64(2)),
        ]);
        deep_roundtrip(&doc);
    }

    #[test]
    fn repeated_map_keys_are_interned() {
        let row = |i: i64| {
            Content::Map(vec![
                ("column_one".into(), Content::I64(i)),
                ("column_two".into(), Content::I64(i + 1)),
            ])
        };
        let many = Content::Seq((0..50).map(row).collect());
        let bytes = content_to_bytes(&many).unwrap();
        // Each key literal is stored once; 49 further rows pay 1 byte per
        // key reference instead of 11 bytes of literal.
        let literal_cost = 2 * ("column_one".len() + 1);
        assert!(
            bytes.len() < literal_cost + 50 * 10,
            "interning missing: {} bytes",
            bytes.len()
        );
        deep_roundtrip(&many);
    }

    #[test]
    fn zigzag_extremes_roundtrip() {
        let mut w = Writer::new();
        for v in [0, -1, 1, i64::MIN, i64::MAX] {
            w.put_zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(r.get_zigzag().unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn small_negatives_stay_small() {
        let mut w = Writer::new();
        w.put_zigzag(-3);
        assert_eq!(w.len(), 1, "zigzag must fold -3 into one byte");
    }

    #[test]
    fn non_finite_floats_error_on_encode() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                content_to_bytes(&Content::F64(v)),
                Err(Error::NonFiniteFloat)
            );
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error() {
        let bytes = content_to_bytes(&Content::Str("hello".into())).unwrap();
        assert_eq!(
            content_from_bytes(&bytes[..bytes.len() - 1]),
            Err(Error::Truncated)
        );
        assert_eq!(content_from_bytes(&[99]), Err(Error::BadTag(99)));
        assert_eq!(content_from_bytes(&[]), Err(Error::Truncated));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(content_from_bytes(&trailing), Err(Error::TrailingBytes(1)));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let mut r = Reader::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f]);
        assert_eq!(r.get_varint(), Err(Error::BadVarint));
    }

    #[test]
    fn bad_key_reference_is_rejected() {
        let mut w = Writer::new();
        w.put_u8(8); // map tag
        w.put_varint(1); // one entry
        w.put_varint(7); // reference to a key that was never defined
        w.put_u8(0); // null value
        assert_eq!(
            content_from_bytes(&w.into_bytes()),
            Err(Error::BadKeyRef(7))
        );
    }

    #[test]
    fn typed_layer_roundtrips() {
        let v: Vec<(u64, String)> = vec![(1, "a".into()), (2, "b".into())];
        let bytes = to_bytes(&v).unwrap();
        assert_eq!(encoded_len(&v).unwrap(), bytes.len());
        let back: Vec<(u64, String)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }
}
