//! Minimal vendored stand-in for `criterion`, used because this build
//! environment has no network access. The same bench sources compile
//! unchanged; running them performs a small fixed number of timed
//! iterations per benchmark and prints mean wall-clock times (no
//! statistics, plots or comparisons).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Drives `iter` inside a benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a small fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 3 }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API parity; the
    /// stand-in ignores the arguments cargo-bench passes).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let iterations = self.iterations;
        run_one(id, iterations, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (criterion's sample size is
    /// repurposed as the iteration count here, capped to keep runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.iterations = (n as u64).clamp(1, 10);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.criterion.iterations, |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.criterion.iterations, f);
        self
    }

    /// Finishes the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u64, mut f: F) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.elapsed / (bencher.iterations as u32);
        println!("{label:60} time: {mean:>12.3?} ({iterations} iters)");
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
