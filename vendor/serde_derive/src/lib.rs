//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` available
//! offline) and emits `Serialize`/`Deserialize` impls over the content-tree
//! model, following real serde's JSON conventions:
//!
//! * named structs → objects; `#[serde(skip)]` omits a field on serialize
//!   and fills it from `Default` on deserialize; `#[serde(default)]` fills a
//!   *missing* field from `Default`;
//! * newtype structs → the inner value; other tuple structs → arrays;
//! * enums → externally tagged: unit variants as strings, newtype variants
//!   as `{"Variant": value}`, tuple variants as `{"Variant": [..]}`, struct
//!   variants as `{"Variant": {..}}`.
//!
//! Generic items are not supported (none exist in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected item name, got {t}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                t => panic!("expected enum body for `{name}`, got {t:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Skips doc comments, attributes and visibility, collecting serde attrs.
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    read_serde_attr(&g.stream(), &mut attrs);
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc: a parenthesized restriction follows.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return attrs,
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    let _ = collect_attrs(tokens, i);
}

/// Recognizes `serde(skip)` / `serde(default)` inside an attribute group.
fn read_serde_attr(stream: &TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    if toks.len() != 2 {
        return;
    }
    let is_serde = matches!(&toks[0], TokenTree::Ident(id) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    if let TokenTree::Group(g) = &toks[1] {
        for t in g.stream() {
            if let TokenTree::Ident(id) = t {
                match id.to_string().as_str() {
                    "skip" => attrs.skip = true,
                    "default" => attrs.default = true,
                    other => panic!(
                        "unsupported serde attribute `{other}` (stand-in supports skip/default)"
                    ),
                }
            }
        }
    }
}

/// Advances past a type, stopping at a comma at angle-bracket depth 0.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("expected field name, got {t:?}"),
        };
        i += 1;
        // ':'
        i += 1;
        skip_type(&tokens, &mut i);
        // ','
        i += 1;
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let _ = collect_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // ','
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _ = collect_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            t => panic!("expected variant name, got {t:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // ','
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => gen_named_to_map(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_content(__f{k})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), ::serde::Content::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = gen_named_to_map(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![(String::from(\"{vn}\"), {inner})]),\n",
                            pats.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// Builds the `Content::Map(..)` expression for named fields; `prefix` is
/// either `self.` (structs) or empty (bound struct-variant fields).
fn gen_named_to_map(fields: &[Field], prefix: &str) -> String {
    let mut out = String::from("{ let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let fname = &f.name;
        // Bound variant fields are references already; struct fields need `&`.
        let access = if prefix.is_empty() {
            fname.clone()
        } else {
            format!("&{prefix}{fname}")
        };
        out.push_str(&format!(
            "__m.push((String::from(\"{fname}\"), ::serde::Serialize::to_content({access})));\n"
        ));
    }
    out.push_str("::serde::Content::Map(__m) }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match __c {{ ::serde::Content::Null => Ok({name}), _ => Err(::serde::DeError::expected(\"null\", \"{name}\")) }}"
                ),
                Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_content(__c)?))"),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                        .collect();
                    format!(
                        "{{ let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                           if __s.len() != {n} {{ return Err(::serde::DeError::expected(\"array of {n}\", \"{name}\")); }}\n\
                           Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    format!(
                        "{{ let __m = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                           Ok({name} {{ {} }}) }}",
                        gen_named_from_map(fields, name)
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Also accept the `{"Variant": null}` form.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => match __v {{ ::serde::Content::Null => Ok({name}::{vn}), _ => Err(::serde::DeError::expected(\"null\", \"{name}::{vn}\")) }},\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                               if __s.len() != {n} {{ return Err(::serde::DeError::expected(\"array of {n}\", \"{name}::{vn}\")); }}\n\
                               Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                               Ok({name}::{vn} {{ {} }}) }},\n",
                            gen_named_from_map(fields, &format!("{name}::{vn}"))
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match __c {{\n\
                       ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                       }},\n\
                       ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = &__m[0];\n\
                         match __k.as_str() {{\n\
                           {tagged_arms}\n\
                           __other => Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                       }},\n\
                       _ => Err(::serde::DeError::expected(\"variant string or single-key object\", \"{name}\")),\n\
                     }}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

/// Field initializers (`name: <expr>,` list) pulling from a map binding `__m`.
fn gen_named_from_map(fields: &[Field], ty: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        if f.attrs.skip {
            out.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else if f.attrs.default {
            out.push_str(&format!(
                "{fname}: match ::serde::content_get(__m, \"{fname}\") {{\n\
                   Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                   None => ::std::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            out.push_str(&format!(
                "{fname}: match ::serde::content_get(__m, \"{fname}\") {{\n\
                   Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                   None => return Err(::serde::DeError::missing_field(\"{fname}\", \"{ty}\")),\n\
                 }},\n"
            ));
        }
    }
    out
}
