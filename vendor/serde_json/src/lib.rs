//! Minimal vendored stand-in for `serde_json`: renders the vendored serde
//! content tree to JSON text and parses JSON text back, with the standard
//! escapes and a permissive number model (i64 / u64 / f64).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Maximum container nesting depth accepted by the parser. The parser
/// recurses once per `[`/`{` level, so untrusted input (network files fed
/// to `p2pdb run`) could otherwise overflow the stack and abort the
/// process; past this depth it returns an ordinary parse error instead.
/// The real `serde_json` guards identically (default 128).
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

/// Serializes to compact JSON. Errors on non-finite floats (`NaN`, `±inf`
/// have no JSON representation; rendering them as `null` silently loses
/// data and used to let text and byte accounting drift apart).
pub fn to_string<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &v.to_content(), None, 0)?;
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent). Same non-finite-float
/// policy as [`to_string`].
pub fn to_string_pretty<T: Serialize>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &v.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Exact byte length of the compact JSON encoding of `v` — i.e.
/// `to_string(v).len()` without materialising the string. Used for wire and
/// storage byte accounting. Runs the *same* writer as [`to_string`] over a
/// byte-counting sink, so length and text cannot disagree — both error on
/// exactly the same inputs (non-finite floats).
pub fn encoded_len<T: Serialize>(v: &T) -> Result<usize, Error> {
    let mut counter = ByteCounter(0);
    write_content(&mut counter, &v.to_content(), None, 0)?;
    Ok(counter.0)
}

// -------------------------------------------------------------- printer

/// Output sink for the one JSON writer: a real string buffer or a byte
/// counter. One implementation of the rendering logic serves both
/// serialization and length accounting, which keeps them in lockstep by
/// construction.
trait Sink {
    fn push_char(&mut self, c: char);
    fn push_str(&mut self, s: &str);
    fn push_u64(&mut self, v: u64);
    fn push_i64(&mut self, v: i64);
    fn push_f64(&mut self, v: f64);
}

impl Sink for String {
    fn push_char(&mut self, c: char) {
        self.push(c);
    }
    fn push_str(&mut self, s: &str) {
        self.push_str(s);
    }
    fn push_u64(&mut self, v: u64) {
        self.push_str(&v.to_string());
    }
    fn push_i64(&mut self, v: i64) {
        self.push_str(&v.to_string());
    }
    fn push_f64(&mut self, v: f64) {
        self.push_str(&v.to_string());
    }
}

/// Counts bytes without building text; numbers are measured by digit
/// arithmetic (floats still format — their rendering has no closed form).
struct ByteCounter(usize);

impl Sink for ByteCounter {
    fn push_char(&mut self, c: char) {
        self.0 += c.len_utf8();
    }
    fn push_str(&mut self, s: &str) {
        self.0 += s.len();
    }
    fn push_u64(&mut self, v: u64) {
        self.0 += digits(v);
    }
    fn push_i64(&mut self, v: i64) {
        self.0 += usize::from(v < 0) + digits(v.unsigned_abs());
    }
    fn push_f64(&mut self, v: f64) {
        self.0 += v.to_string().len();
    }
}

fn digits(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 10 {
        v /= 10;
        n += 1;
    }
    n
}

fn write_content<S: Sink>(
    out: &mut S,
    c: &Content,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_i64(*v),
        Content::U64(v) => out.push_u64(*v),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new(format!(
                    "non-finite f64 ({v}) has no JSON representation"
                )));
            }
            out.push_f64(*v);
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push_char('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_char(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push_char(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push_char('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_char(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push_char(':');
                if indent.is_some() {
                    out.push_char(' ');
                }
                write_content(out, v, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push_char('}');
        }
    }
    Ok(())
}

fn newline_indent<S: Sink>(out: &mut S, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push_char('\n');
        for _ in 0..width * level {
            out.push_char(' ');
        }
    }
}

fn write_string<S: Sink>(out: &mut S, s: &str) {
    out.push_char('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push_char(c),
        }
    }
    out.push_char('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level (bounded by [`MAX_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::new(format!(
                "nesting depth exceeds {MAX_DEPTH} at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(
            from_str::<String>("\"hi\\n\\\"there\\\"\"").unwrap(),
            "hi\n\"there\""
        );
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(to_string(&None::<u32>).unwrap(), "null");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&text).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(7u32, vec![1i64, -2]);
        let text = to_string_pretty(&m).unwrap();
        assert_eq!(
            from_str::<std::collections::BTreeMap<u32, Vec<i64>>>(&text).unwrap(),
            m
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn malformed_surrogates_are_errors_not_panics() {
        // High surrogate followed by a non-surrogate escape.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        // High surrogate followed by an out-of-range low half.
        assert!(from_str::<String>("\"\\ud800\\ue000\"").is_err());
        // High surrogate with nothing after it.
        assert!(from_str::<String>("\"\\ud800\"").is_err());
    }

    #[test]
    fn nesting_depth_is_capped_not_a_stack_overflow() {
        // ~10k levels would recurse the parser off the stack without the cap.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = from_str::<Vec<u64>>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");

        let deep_obj = "{\"k\":".repeat(10_000) + "1" + &"}".repeat(10_000);
        let err = from_str::<u64>(&deep_obj).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
    }

    #[test]
    fn nesting_below_the_cap_still_parses() {
        // Exactly MAX_DEPTH container levels: the parser accepts the
        // document (any failure is a type mismatch, not the depth guard).
        let doc = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        let err = from_str::<Vec<u64>>(&doc).unwrap_err();
        assert!(!err.to_string().contains("nesting depth"), "{err}");
        // One more level trips the guard.
        let doc = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = from_str::<Vec<u64>>(&doc).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
        // Ordinary documents with a few levels still round-trip.
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn encoded_len_matches_to_string() {
        let v: Vec<(i64, String)> = vec![
            (-42, "plain".into()),
            (0, "esc\"\\\n\t\u{01}😀".into()),
            (i64::MIN, String::new()),
        ];
        assert_eq!(encoded_len(&v).unwrap(), to_string(&v).unwrap().len());
        let mut m = std::collections::BTreeMap::new();
        m.insert("k\"ey".to_string(), vec![1.5f64, -0.25]);
        assert_eq!(encoded_len(&m).unwrap(), to_string(&m).unwrap().len());
        assert_eq!(encoded_len(&None::<u32>).unwrap(), 4);
        assert_eq!(encoded_len(&Vec::<u8>::new()).unwrap(), 2);
    }

    #[test]
    fn non_finite_floats_error_consistently_in_text_and_length() {
        // Encode and length must agree on non-finite floats: both refuse,
        // instead of the old split where text rendered `null` while some
        // callers might assume a numeric length. The same inputs are also
        // rejected by the binary codec, keeping the codecs interchangeable.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(to_string(&v).is_err(), "to_string accepted {v}");
            assert!(to_string_pretty(&v).is_err(), "pretty accepted {v}");
            assert!(encoded_len(&v).is_err(), "encoded_len accepted {v}");
            // Buried inside a container the error still surfaces.
            assert!(to_string(&vec![(1u32, v)]).is_err());
            assert!(encoded_len(&vec![(1u32, v)]).is_err());
        }
        // Finite floats keep working, and text/length still agree.
        let fine = vec![0.5f64, -2.25, 1e300];
        assert_eq!(encoded_len(&fine).unwrap(), to_string(&fine).unwrap().len());
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(from_str::<u32>("{ nope").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
