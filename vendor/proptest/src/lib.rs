//! Minimal vendored stand-in for `proptest`, used because this build
//! environment has no network access. It implements the subset of the API
//! the workspace's property suites use — `Strategy` with
//! `prop_map`/`prop_flat_map`/`prop_filter`, integer-range and tuple
//! strategies, `collection::{vec, btree_set}`, `option::of`, `any::<bool>()`,
//! `Just`, `ProptestConfig::with_cases` and the `proptest!` /
//! `prop_assert*!` macros — as a seeded random test runner.
//!
//! Differences from real proptest (acceptable for these suites):
//! * no shrinking — failures report the case's seed instead of a minimal
//!   counterexample (set `PROPTEST_SEED` to reproduce a failing run);
//! * no `proptest-regressions` persistence files are ever written.

pub mod test_runner {
    //! Configuration, RNG and case-level error type.

    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by a precondition (`prop_assume!`); the
        /// runner retries with fresh inputs.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A precondition rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds explicitly.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The fixed default seed (used when `PROPTEST_SEED` is unset).
        #[doc(hidden)]
        pub fn __default_seed() -> u64 {
            0x5EED_0F42
        }

        /// The next raw 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Retries generation until `f` accepts the value.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected 1000 candidates in a row",
                self.whence
            );
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Full-range strategy for a primitive (backs `any::<T>()`).
    pub struct AnyPrimitive<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_primitive {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any`.

    use super::strategy::AnyPrimitive;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// That strategy's type.
        type Strategy: super::strategy::Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive { _marker: PhantomData }
                }
            }
        )*};
    }
    impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Ordered sets of `element` values with a target size drawn from
    /// `size` (best effort when the element domain is small).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 50 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a property suite needs, mirroring real proptest's prelude.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = ::std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else($crate::test_runner::TestRng::__default_seed);
            let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                if __attempts > __config.cases.saturating_mul(20).saturating_add(100) {
                    panic!(
                        "proptest `{}`: too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), __attempts, __config.cases
                    );
                }
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest `{}` failed at case {} (seed {}): {}",
                            stringify!($name), __passed, __seed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

/// Asserts inside a proptest body, failing the case (not panicking) so the
/// runner can report the offending inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Rejects the current case (the runner retries with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[allow(unused_imports)]
use prelude::*;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..6, any::<bool>()), 1..8),
            n in (1usize..4).prop_flat_map(|k| crate::collection::vec(0u32..10, k..k + 1)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(!n.is_empty() && n.len() < 4);
            for (a, _) in &v {
                prop_assert!(*a < 6);
            }
        }

        #[test]
        fn filters_and_sets(
            pair in (0u32..6, 0u32..6).prop_filter("distinct", |(a, b)| a != b),
            s in crate::collection::btree_set(0u32..6, 0..6),
        ) {
            prop_assert_ne!(pair.0, pair.1);
            prop_assert!(s.len() <= 6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = crate::test_runner::TestRng::from_seed(9);
        let mut b = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
