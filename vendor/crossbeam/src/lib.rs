//! Minimal vendored stand-in for `crossbeam`, used because this build
//! environment has no network access. Only the `channel` module's unbounded
//! MPSC surface is provided, delegating to `std::sync::mpsc` (whose `Sender`
//! has been `Sync` since Rust 1.72, matching how the workspace shares
//! senders behind an `Arc`).

/// Multi-producer channels.
pub mod channel {
    /// Sending half of an unbounded channel (cloneable, `Send + Sync`).
    pub use std::sync::mpsc::Sender;

    /// Receiving half of an unbounded channel.
    pub use std::sync::mpsc::Receiver;

    /// Error returned by `Sender::send` when the receiver is gone.
    pub use std::sync::mpsc::SendError;

    /// Error returned by `Receiver::recv` when all senders are gone.
    pub use std::sync::mpsc::RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::Arc;

    #[test]
    fn senders_are_shareable_behind_arc() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
