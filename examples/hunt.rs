//! Diagnostic driver: searches random dynamic-change scenarios for runs
//! that fail to quiesce within a bounded event budget (used to investigate
//! slow property-test cases; not part of the library surface).

use p2pdb::core::dynamic::ChangeScript;
use p2pdb::core::system::P2PSystemBuilder;
use p2pdb::net::SimTime;
use p2pdb::relational::Val;
use p2pdb::topology::NodeId;
use rand::{Rng, SeedableRng};

fn main() {
    let mut worst = 0u64;
    for seed in 0..400u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nodes = rng.gen_range(2..6usize);
        let n = nodes as u32;
        let mut edges = vec![];
        for _ in 0..rng.gen_range(1..8) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.push((a, b));
            }
        }
        edges.sort();
        edges.dedup();
        let mut b = P2PSystemBuilder::new();
        for i in 0..n {
            b.add_node_with_schema(i, &format!("t{i}(x: int, y: int)."))
                .unwrap();
        }
        for (k, (h, bo)) in edges.iter().enumerate() {
            b.add_rule(
                &format!("r{k}"),
                &format!(
                    "{}:t{bo}(X,Y) => {}:t{h}(X,Y)",
                    NodeId(*bo).letter(),
                    NodeId(*h).letter()
                ),
            )
            .unwrap();
        }
        for _ in 0..rng.gen_range(1..25) {
            let node = rng.gen_range(0..n);
            let _ = b.insert(
                node,
                &format!("t{node}"),
                vec![Val::Int(rng.gen_range(0..6)), Val::Int(rng.gen_range(0..6))],
            );
        }
        b.config_mut().max_events = 300_000;
        let mut sys = b.build().unwrap();
        let mut script = ChangeScript::new();
        let rule_names: Vec<String> = (0..edges.len()).map(|k| format!("r{k}")).collect();
        let ops = rng.gen_range(0..4usize);
        for i in 0..ops {
            let kind: u8 = rng.gen_range(0..2);
            let at = SimTime::from_millis(1 + rng.gen_range(0..10u64));
            if kind == 0 {
                let head = (i as u32) % n;
                let body = (head + 1) % n;
                if head != body {
                    let text = format!(
                        "{}:t{body}(X,Y) => {}:t{head}(X,Y)",
                        NodeId(body).letter(),
                        NodeId(head).letter()
                    );
                    if let Ok(op) = sys.make_add_link(&format!("dyn{i}"), &text) {
                        script.push(at, op);
                    }
                }
            } else if let Some(name) = rule_names.get(i) {
                if let Ok(op) = sys.make_delete_link(name) {
                    script.push(at, op);
                }
            }
        }
        let report = sys.run_update_with_script(&script);
        worst = worst.max(report.outcome.delivered);
        if !report.outcome.quiescent {
            println!(
                "NON-QUIESCENT seed={seed} nodes={nodes} edges={edges:?} ops={ops} delivered={}",
                report.outcome.delivered
            );
        }
    }
    println!("hunt done; worst delivered = {worst}");
}
