//! Quickstart: two database peers sharing data through one coordination
//! rule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use p2pdb::core::system::P2PSystemBuilder;
use p2pdb::relational::Val;
use p2pdb::topology::NodeId;

fn main() {
    // Node A (id 0) stores `a(x, y)`; node B (id 1) stores `b(x, y)`.
    let mut builder = P2PSystemBuilder::new();
    builder
        .add_node_with_schema(0, "a(x: int, y: int).")
        .unwrap();
    builder
        .add_node_with_schema(1, "b(x: int, y: int).")
        .unwrap();

    // Coordination rule r1 (paper Definition 2): whatever B stores in `b`,
    // A imports into `a`.
    builder.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();

    // Base data lives at B.
    for (x, y) in [(1, 2), (2, 3), (3, 4)] {
        builder
            .insert(1, "b", vec![Val::Int(x), Val::Int(y)])
            .unwrap();
    }

    let mut sys = builder.build().unwrap();

    // Run the distributed update: the super-peer (node 0) initiates, data
    // propagates, every node reaches `state_u = closed` at its fix-point.
    let report = sys.run_update();
    println!(
        "update finished: virtual time {}, {} messages, all closed: {}",
        report.outcome.virtual_time, report.messages, report.all_closed
    );

    // The point of the update problem (vs. query answering): local queries
    // now need zero network traffic.
    let answers = sys.query(NodeId(0), "q(X, Y) :- a(X, Y)").unwrap();
    println!("node A answers q(X,Y) :- a(X,Y) locally:");
    for t in &answers {
        println!("  {t}");
    }
    assert_eq!(answers.len(), 3);

    // And the result provably equals the centralized fix-point.
    assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    println!("distributed result == centralized fix-point ✓");
}
