//! Dynamic networks (Section 4): coordination rules appear and disappear
//! *while the update runs*; the algorithm still terminates (Theorem 2) with
//! a result inside the Definition 9 soundness/completeness envelope, and a
//! separated component closes despite churn elsewhere (Theorem 3).
//!
//! ```text
//! cargo run --example dynamic_network
//! ```

use p2pdb::core::dynamic::{lower_reference, upper_reference, ChangeScript};
use p2pdb::core::system::P2PSystemBuilder;
use p2pdb::net::SimTime;
use p2pdb::relational::hom::contained_modulo_nulls;
use p2pdb::relational::Val;
use p2pdb::topology::NodeId;

fn main() {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r0", "B:b(X,Y) => A:a(X,Y)").unwrap();
    for i in 0..25i64 {
        b.insert(1, "b", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
        b.insert(2, "c", vec![Val::Int(100 + i), Val::Int(i)])
            .unwrap();
    }
    let mut sys = b.build().unwrap();

    // Script: 3 ms into the run, a new rule C→A appears (addLink); at 6 ms
    // the original rule r0 disappears (deleteLink).
    let mut script = ChangeScript::new();
    let add = sys.make_add_link("rx", "C:c(X,Y) => A:a(X,Y)").unwrap();
    script.push(SimTime::from_millis(3), add);
    let del = sys.make_delete_link("r0").unwrap();
    script.push(SimTime::from_millis(6), del);

    println!("running update with a mid-flight addLink + deleteLink script…");
    let report = sys.run_update_with_script(&script);
    println!(
        "terminated: {} (Theorem 2), all closed: {}, {} messages",
        report.outcome.quiescent, report.all_closed, report.messages
    );

    // Definition 9 envelope: sound w.r.t. all-adds-no-deletes, complete
    // w.r.t. deletes-first-no-adds.
    let upper = sys
        .oracle_with(&upper_reference(sys.rules(), &script))
        .unwrap();
    let lower = sys
        .oracle_with(&lower_reference(sys.rules(), &script))
        .unwrap();
    let result = sys.snapshot();
    let sound = result
        .0
        .iter()
        .all(|(n, db)| contained_modulo_nulls(db, upper.node(*n).unwrap()));
    let complete = result
        .0
        .iter()
        .all(|(n, db)| contained_modulo_nulls(lower.node(*n).unwrap(), db));
    println!("Definition 9: sound = {sound}, complete = {complete}");

    let a = sys.database(NodeId(0)).unwrap();
    println!(
        "node A ended with {} tuples in `a` (imported via both the old and the new rule)",
        a.relation("a").unwrap().len()
    );

    // Data imported before a deleteLink is kept — consistent with Def. 9.
    assert!(a.relation("a").unwrap().len() >= 25);
    println!("data imported before deleteLink survives ✓");
}
