//! The paper's experimental scenario: a tree of bibliography peers with
//! three heterogeneous schemas (Section 5), DBLP-like records, and schema
//! translation through coordination rules — including labeled-null
//! invention for the venue attribute S1 does not store.
//!
//! ```text
//! cargo run --example dblp_sharing
//! ```

use p2pdb::core::config::UpdateMode;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, SchemaFamily, WorkloadConfig};

fn main() {
    let cfg = WorkloadConfig {
        // 7 nodes: a binary tree of depth 2, super-peer at the root.
        topology: Topology::Tree {
            branching: 2,
            depth: 2,
        },
        records_per_node: 100,
        distribution: Distribution::OverlapNeighbors { percent: 50 },
        seed: 2004,
    };

    println!("schemas in play (round-robin over nodes):");
    for node in 0..7u32 {
        println!(
            "  {}: {:?} — {}",
            NodeId(node),
            SchemaFamily::for_node(node),
            SchemaFamily::for_node(node).schema_text()
        );
    }

    let mut builder = build_system(&cfg).unwrap();
    builder.config_mut().mode = UpdateMode::Eager;
    let mut sys = builder.build().unwrap();

    let report = sys.run_update();
    println!(
        "\nupdate: virtual time {}, {} messages, {} bytes, all closed: {}",
        report.outcome.virtual_time, report.messages, report.bytes, report.all_closed
    );

    // The root (node 0, schema S1) now holds the whole subtree's catalogue.
    let root = sys.database(NodeId(0)).unwrap();
    println!(
        "\nroot catalogue after update: {} publications, {} authorships",
        root.relation("pub").unwrap().len(),
        root.relation("author").unwrap().len()
    );

    // Local analytical queries — no network involved.
    let recent = sys
        .query(NodeId(0), "q(I, T) :- pub(I, T, Y), Y >= 2000")
        .unwrap();
    println!("publications from 2000 on: {}", recent.len());

    let prolific = sys
        .query(NodeId(0), "q(N) :- author(P1, N), author(P2, N), P1 != P2")
        .unwrap();
    println!("authors with at least two papers: {}", prolific.len());

    // A peer with the wide S2 schema materialised nulls for unknown venues.
    let s2 = sys.database(NodeId(1)).unwrap();
    let articles = s2.relation("article").unwrap();
    let with_null_venue = articles.iter().filter(|row| row[2].is_null()).count();
    println!(
        "node B (S2): {} articles, {} with venue unknown (labeled nulls from S1 imports)",
        articles.len(),
        with_null_venue
    );

    // Super-peer collects the statistics module's counters (Section 5).
    let stats = sys.collect_stats();
    println!("\nper-peer statistics (paper's statistical module):");
    for (node, s) in &stats {
        println!("  {node}: {s}");
    }
}
