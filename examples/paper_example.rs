//! The paper's Section 2 running example, end to end: nodes A–E, rules
//! r1–r7, topology discovery with maximal dependency paths, a Figure-1
//! style execution trace, and the distributed update on a cyclic network.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use p2pdb::core::config::Initiation;
use p2pdb::core::system::P2PSystemBuilder;
use p2pdb::relational::Val;
use p2pdb::topology::paths::format_path;
use p2pdb::topology::NodeId;

fn builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int). f(x: int).")
        .unwrap();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_node_with_schema(4, "e(x: int, y: int).").unwrap();
    // The seven rules of Section 2, verbatim.
    b.add_rule("r1", "E:e(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r2", "B:b(X,Y), B:b(Y,Z) => C:c(X,Z)").unwrap();
    b.add_rule("r3", "C:c(X,Y), C:c(Y,Z) => B:b(X,Z)").unwrap();
    b.add_rule("r4", "B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)")
        .unwrap();
    b.add_rule("r5", "A:a(X,Y) => C:f(X)").unwrap();
    b.add_rule("r6", "A:a(X,Y) => D:d(Y,X)").unwrap();
    b.add_rule("r7", "D:d(X,Y), D:d(Y,Z) => C:c(X,Y)").unwrap();
    b
}

fn main() {
    // ---- Phase 1: topology discovery (algorithms A1–A3) ------------------
    let mut sys = builder().build().unwrap();
    let report = sys.run_discovery();
    println!(
        "discovery: {} messages, closed everywhere: {}\n",
        report.messages, report.all_closed
    );
    println!("maximal dependency paths (Definitions 6-7):");
    for id in 0..5u32 {
        let node = NodeId(id);
        let mut paths: Vec<String> = sys
            .peer(node)
            .unwrap()
            .paths()
            .unwrap_or(&[])
            .iter()
            .map(|p| format_path(p))
            .collect();
        paths.sort();
        println!(
            "  {}: {}",
            node,
            if paths.is_empty() {
                "∅".into()
            } else {
                paths.join(" ")
            }
        );
    }

    // ---- Phase 2: the distributed update on the cyclic network -----------
    let mut b = builder();
    // Tracing + strict A4 propagation reproduces Figure 1's message flow.
    b.config_mut().trace_capacity = 48;
    b.config_mut().initiation = Initiation::QueryPropagation;
    // Seed E with a 3-cycle of e-facts.
    for (x, y) in [(1, 2), (2, 3), (3, 1)] {
        b.insert(4, "e", vec![Val::Int(x), Val::Int(y)]).unwrap();
    }
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    println!(
        "\nupdate: virtual time {}, {} messages, all closed: {}",
        report.outcome.virtual_time, report.messages, report.all_closed
    );

    println!("\nFigure-1 style execution trace (:A :B :C :E):\n");
    println!(
        "{}",
        sys.trace()
            .render_sequence_diagram(&[NodeId(0), NodeId(1), NodeId(2), NodeId(4)])
    );

    // The fix-point is exactly the centralized one (Lemma 1).
    assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    println!("Lemma 1 check: distributed fix-point == oracle ✓");

    for (node, rel) in [(0u32, "a"), (1, "b"), (2, "c"), (3, "d")] {
        let db = sys.database(NodeId(node)).unwrap();
        println!(
            "  node {}: |{rel}| = {}",
            NodeId(node),
            db.relation(rel).unwrap().len()
        );
    }
}
