//! Paper-scale runs (~1000 records/node, up to 31 nodes — §5's exact
//! setup). Slow in debug builds, so ignored by default:
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use p2pdb::core::config::UpdateMode;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};

#[test]
#[ignore = "paper-scale: run with --release -- --ignored"]
fn tree31_with_1000_records_per_node() {
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 4, // 31 nodes — the paper's maximum
        },
        records_per_node: 1000,
        distribution: Distribution::Disjoint,
        seed: 2004,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().max_events = 100_000_000;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    assert!(report.all_closed);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    // ~31 000 publications network-wide; the S1 root sees them all.
    let root = sys.database(NodeId(0)).unwrap();
    assert!(root.relation("pub").unwrap().len() > 25_000);
}

#[test]
#[ignore = "paper-scale: run with --release -- --ignored"]
fn layered30_with_overlap_at_scale() {
    let cfg = WorkloadConfig {
        topology: Topology::LayeredDag {
            layers: 6,
            width: 5,
            fanout: 2,
        },
        records_per_node: 1000,
        distribution: Distribution::OverlapNeighbors { percent: 50 },
        seed: 2004,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().max_events = 100_000_000;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    assert!(report.all_closed);
}

#[test]
#[ignore = "paper-scale: run with --release -- --ignored"]
fn rounds_mode_at_scale() {
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 4,
        },
        records_per_node: 1000,
        distribution: Distribution::Disjoint,
        seed: 2004,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().mode = UpdateMode::Rounds;
    b.config_mut().max_events = 100_000_000;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.all_closed);
    assert_eq!(report.rounds, 2, "DAGs need one dirty + one clean round");
}
