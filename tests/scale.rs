//! Scaling integration: the flat `scale` scenario (one-hop copy rules,
//! closed-form fix-point — see `p2pdb::workload::scale`) exercised across
//! topology families and seeds, as the end-to-end check of the batched
//! transport (shared payloads, per-pipe same-instant batching, flat event
//! arena) and the flat per-peer tables: whatever the transport coalesces,
//! the fix-point must stay tuple-identical to the centralized oracle and
//! hit the scenario's closed-form size exactly.
//!
//! Also the derived event budget: `max_events = 0` (auto) must carry runs
//! that the old flat cap was never sized for.

use p2pdb::topology::Topology;
use p2pdb::workload::{expected_total_tuples, scale_system, ScaleConfig};
use proptest::prelude::*;

fn run_and_check(cfg: &ScaleConfig) {
    let mut sys = scale_system(cfg)
        .expect("scale workload builds")
        .build()
        .expect("system builds");
    let report = sys.run_update();
    assert!(report.outcome.quiescent, "{}: not quiescent", cfg.topology);
    assert!(report.all_closed, "{}: not all closed", cfg.topology);
    assert!(
        report.errors.is_empty(),
        "{}: {:?}",
        cfg.topology,
        report.errors
    );
    assert_eq!(
        sys.snapshot().total_tuples(),
        expected_total_tuples(cfg),
        "{}: fix-point off the closed form",
        cfg.topology
    );
    assert!(
        sys.snapshot().equivalent(&sys.oracle().expect("oracle")),
        "{}: differs from the centralized fix-point",
        cfg.topology
    );
}

/// Connected-by-construction topology specs across every family the scale
/// experiment measures (plus the classical ones), sized to keep the oracle
/// affordable.
fn topo_strategy() -> impl Strategy<Value = Topology> {
    (0u8..5, 3u32..13, 0u8..101, any::<u64>()).prop_map(|(family, size, percent, seed)| {
        match family {
            0 => Topology::Ring { n: size * 2 },
            1 => Topology::Tree {
                branching: (size % 3) + 2,
                depth: (size % 3) + 1,
            },
            2 => Topology::Clique { n: (size % 4) + 2 },
            // n even in 6..=24 keeps n·degree even and degree 4 < n.
            3 => Topology::Expander {
                n: size * 2,
                degree: 4,
                seed,
            },
            _ => Topology::SmallWorld {
                n: size * 2,
                k: 4,
                rewire_percent: percent,
                seed,
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batching and flat tables never change results: across families and
    /// seeds, the distributed fix-point is tuple-identical to the oracle
    /// and exactly `(nodes + edges) × records` tuples big.
    #[test]
    fn fixpoint_matches_oracle_across_topologies_and_seeds(
        topology in topo_strategy(),
        records in 1usize..4,
    ) {
        run_and_check(&ScaleConfig { topology, records_per_node: records });
    }
}

/// A 1000-peer run on the auto budget: the old flat `max_events` default
/// was sized for ring(8)-class experiments; the derived budget
/// (`SystemConfig::effective_max_events`) must carry three orders of
/// magnitude more peers without touching the config.
#[test]
fn auto_budget_carries_a_thousand_peer_run() {
    let cfg = ScaleConfig {
        topology: Topology::Expander {
            n: 1000,
            degree: 4,
            seed: 7,
        },
        records_per_node: 1,
    };
    let b = scale_system(&cfg).expect("scale workload builds");
    let mut sys = b.build().expect("system builds");
    let report = sys.run_update();
    assert!(report.outcome.quiescent, "halted by the event budget");
    assert!(report.all_closed);
    assert_eq!(sys.snapshot().total_tuples(), expected_total_tuples(&cfg));
}

/// The headline run: 10 000 peers on a degree-4 expander, auto budget.
/// Slow in debug builds, so ignored by default:
///
/// ```text
/// cargo test --release --test scale -- --ignored
/// ```
#[test]
#[ignore = "10k peers: run with --release -- --ignored"]
fn auto_budget_carries_a_ten_thousand_peer_run() {
    let cfg = ScaleConfig {
        topology: Topology::Expander {
            n: 10_000,
            degree: 4,
            seed: 7,
        },
        records_per_node: 4,
    };
    let b = scale_system(&cfg).expect("scale workload builds");
    let mut sys = b.build().expect("system builds");
    let report = sys.run_update();
    assert!(report.outcome.quiescent, "halted by the event budget");
    assert!(report.all_closed);
    assert_eq!(sys.snapshot().total_tuples(), expected_total_tuples(&cfg));
}
