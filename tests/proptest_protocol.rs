//! Property-based tests over randomly generated networks, data and change
//! scripts: the distributed update always agrees with the centralized
//! fix-point oracle; dynamic runs always land inside the Definition 9
//! envelope; duplication never changes results.

use p2pdb::core::config::UpdateMode;
use p2pdb::core::dynamic::{lower_reference, upper_reference, ChangeScript};
use p2pdb::core::system::P2PSystemBuilder;
use p2pdb::net::{FaultPlan, SimTime};
use p2pdb::relational::hom::contained_modulo_nulls;
use p2pdb::relational::Val;
use p2pdb::topology::NodeId;
use proptest::prelude::*;

/// A random network description small enough to oracle-check.
#[derive(Debug, Clone)]
struct NetSpec {
    nodes: usize,
    /// Directed edges (head, body) with head ≠ body; rules are copy rules.
    edges: Vec<(u32, u32)>,
    /// Base tuples per node: (node, x, y).
    tuples: Vec<(u32, i64, i64)>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    (2usize..6).prop_flat_map(|nodes| {
        let n = nodes as u32;
        let edges = proptest::collection::vec(
            (0..n, 0..n).prop_filter("no self edges", |(a, b)| a != b),
            1..8,
        );
        let tuples = proptest::collection::vec((0..n, 0..6i64, 0..6i64), 1..25);
        (Just(nodes), edges, tuples).prop_map(|(nodes, mut edges, tuples)| {
            edges.sort();
            edges.dedup();
            NetSpec {
                nodes,
                edges,
                tuples,
            }
        })
    })
}

fn build(spec: &NetSpec, mode: UpdateMode) -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    for i in 0..spec.nodes as u32 {
        b.add_node_with_schema(i, &format!("t{i}(x: int, y: int)."))
            .unwrap();
    }
    for (k, (head, body)) in spec.edges.iter().enumerate() {
        let head_name = NodeId(*head).letter();
        let body_name = NodeId(*body).letter();
        b.add_rule(
            &format!("r{k}"),
            &format!("{body_name}:t{body}(X,Y) => {head_name}:t{head}(X,Y)"),
        )
        .unwrap();
    }
    for (node, x, y) in &spec.tuples {
        b.insert(*node, &format!("t{node}"), vec![Val::Int(*x), Val::Int(*y)])
            .unwrap();
    }
    b.config_mut().mode = mode;
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 1 on random (possibly cyclic) copy-rule networks, eager mode.
    #[test]
    fn eager_matches_oracle_on_random_networks(spec in net_spec()) {
        let mut sys = build(&spec, UpdateMode::Eager).build().unwrap();
        let report = sys.run_update();
        prop_assert!(report.outcome.quiescent);
        prop_assert!(report.all_closed, "not closed: {spec:?}");
        prop_assert!(report.errors.is_empty());
        prop_assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    }

    /// Same for the synchronous rounds mode.
    #[test]
    fn rounds_matches_oracle_on_random_networks(spec in net_spec()) {
        let mut sys = build(&spec, UpdateMode::Rounds).build().unwrap();
        let report = sys.run_update();
        prop_assert!(report.outcome.quiescent);
        prop_assert!(report.all_closed, "not closed: {spec:?}");
        prop_assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
    }

    /// Duplication is invisible (idempotent handlers), on random networks.
    #[test]
    fn duplication_invisible_on_random_networks(
        spec in net_spec(),
        seed in 0u64..1000,
    ) {
        let mut clean = build(&spec, UpdateMode::Eager).build().unwrap();
        clean.run_update();
        let mut b = build(&spec, UpdateMode::Eager);
        b.set_fault(FaultPlan::random(0, 30, seed));
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        prop_assert!(report.outcome.quiescent);
        prop_assert!(sys.snapshot().equivalent(&clean.snapshot()));
    }

    /// Definition 9 sandwich on random finite change scripts.
    #[test]
    fn dynamic_scripts_stay_in_the_envelope(
        spec in net_spec(),
        script_ops in proptest::collection::vec((0u8..2, 0u64..10), 0..4),
    ) {
        let mut sys = build(&spec, UpdateMode::Eager).build().unwrap();
        let mut script = ChangeScript::new();
        let rule_names: Vec<String> =
            (0..spec.edges.len()).map(|k| format!("r{k}")).collect();
        for (i, (kind, at)) in script_ops.iter().enumerate() {
            let at = SimTime::from_millis(1 + *at);
            if *kind == 0 {
                // Add a fresh copy rule between two existing nodes.
                let head = (i as u32) % spec.nodes as u32;
                let body = (head + 1) % spec.nodes as u32;
                if head != body {
                    let text = format!(
                        "{}:t{}(X,Y) => {}:t{}(X,Y)",
                        NodeId(body).letter(), body, NodeId(head).letter(), head
                    );
                    if let Ok(op) = sys.make_add_link(&format!("dyn{i}"), &text) {
                        script.push(at, op);
                    }
                }
            } else if let Some(name) = rule_names.get(i) {
                if let Ok(op) = sys.make_delete_link(name) {
                    script.push(at, op);
                }
            }
        }
        let report = sys.run_update_with_script(&script);
        prop_assert!(report.outcome.quiescent, "Theorem 2 violated");
        let upper = sys.oracle_with(&upper_reference(sys.rules(), &script)).unwrap();
        let lower = sys.oracle_with(&lower_reference(sys.rules(), &script)).unwrap();
        for (node, db) in &sys.snapshot().0 {
            prop_assert!(
                contained_modulo_nulls(db, upper.node(*node).unwrap()),
                "soundness violated at {node}"
            );
            prop_assert!(
                contained_modulo_nulls(lower.node(*node).unwrap(), db),
                "completeness violated at {node}"
            );
        }
    }
}
