//! The sharded runtime at system level: `--runtime sharded` seen from the
//! library API.
//!
//! The worker-pool runtime trades the simulator's determinism for real
//! parallelism, so its contract is *equivalence*, not identity:
//!
//! * **simulator parity** — `run_update_sharded` /  `run_updates_sharded`
//!   reach a final global database tuple-identical modulo null renaming to
//!   the simulator (and the centralized oracle) on the same workload, for
//!   every shard count — including one shard (pure multiplexing) and more
//!   shards than peers (idle workers), deterministic cases plus a proptest
//!   over topologies × latency seeds × shard counts;
//! * **locality accounting** — one shard means zero cross-shard sends;
//!   contiguous-blocks placement beats round-robin on a ring;
//! * **panic containment** — a peer whose handler panics surfaces as a
//!   structured `WorkerPanic` naming the node, never as a poisoned lock or
//!   a hung run, at any shard count.

use p2pdb::core::config::UpdateMode;
use p2pdb::core::system::{run_update_sharded, run_updates_sharded, P2PSystemBuilder};
use p2pdb::net::{Context, Peer, SessionId, ShardPlacement, ShardedNetwork};
use p2pdb::relational::Val;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
use proptest::prelude::*;

/// A cyclic three-node system (A→C→B→A) with data at every node — the same
/// shape `tests/concurrent.rs` uses, so the sharded runtime is measured
/// against an already-trusted workload.
fn cyclic_builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r3", "A:a(X,Y) => C:c(Y,X)").unwrap();
    for i in 0..8i64 {
        b.insert(2, "c", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
        b.insert(1, "b", vec![Val::Int(100 + i), Val::Int(i)])
            .unwrap();
    }
    b
}

fn ring_builder(n: u32) -> P2PSystemBuilder {
    build_system(&WorkloadConfig {
        topology: Topology::Ring { n },
        records_per_node: 10,
        distribution: Distribution::Disjoint,
        seed: 7,
    })
    .unwrap()
}

/// Sharded fix-points equal the simulator's and the oracle's at every
/// shard count — including 1 (pure multiplexing, and the baseline every
/// speedup is measured against) and 16 > n (idle shards must not deadlock
/// the quiescence barrier).
#[test]
fn sharded_matches_simulator_across_shard_counts() {
    let mut sim = cyclic_builder().build().unwrap();
    let report = sim.run_update();
    assert!(report.all_closed);
    let sim_db = sim.snapshot();
    let oracle = sim.oracle().unwrap();

    for shards in [1usize, 2, 3, 8, 16] {
        let (db, stats, all_closed) =
            run_update_sharded(cyclic_builder(), shards, ShardPlacement::RoundRobin).unwrap();
        assert!(all_closed, "{shards} shards: unclosed run");
        assert!(
            db.equivalent(&sim_db),
            "{shards} shards: fix-point differs from the simulator"
        );
        assert!(db.equivalent(&oracle), "{shards} shards: != oracle");
        assert!(stats.total_messages > 0);
        if shards == 1 {
            assert_eq!(
                stats.cross_shard_sends, 0,
                "one shard has no boundaries to cross"
            );
        }
    }
}

/// Concurrent sessions on the sharded runtime: every session closes, gets
/// per-session message attribution, and the combined fix-point equals the
/// simulator's interleaved run.
#[test]
fn sharded_concurrent_sessions_match_simulator() {
    let roots = [NodeId(0), NodeId(2)];
    let mut sim = cyclic_builder().build().unwrap();
    let reports = sim.run_updates(&roots);
    assert!(reports.iter().all(|r| r.all_closed));
    let sim_db = sim.snapshot();

    for shards in [2usize, 4] {
        let (db, stats, all_closed) =
            run_updates_sharded(cyclic_builder(), &roots, shards, ShardPlacement::RoundRobin)
                .unwrap();
        assert!(all_closed, "{shards} shards: some session unclosed");
        assert!(db.equivalent(&sim_db), "{shards} shards: != simulator");
        for (i, &root) in roots.iter().enumerate() {
            let sid = SessionId::new(root, (i + 1) as u64);
            assert!(stats.session(sid).messages > 0, "{sid} unattributed");
        }
    }
}

/// Placement is a pure locality knob: on a ring, contiguous blocks keep
/// neighbours on the same shard and round-robin separates every pair, but
/// both land on the identical fix-point.
#[test]
fn placement_changes_locality_not_the_fixpoint() {
    let mut sim = ring_builder(16).build().unwrap();
    assert!(sim.run_update().all_closed);
    let sim_db = sim.snapshot();

    let (rr_db, rr, _) =
        run_update_sharded(ring_builder(16), 4, ShardPlacement::RoundRobin).unwrap();
    let (bl_db, bl, _) = run_update_sharded(ring_builder(16), 4, ShardPlacement::Blocks).unwrap();
    assert!(rr_db.equivalent(&sim_db));
    assert!(bl_db.equivalent(&sim_db));
    assert!(
        bl.cross_shard_sends < rr.cross_shard_sends,
        "blocks must localize ring traffic: {} vs {}",
        bl.cross_shard_sends,
        rr.cross_shard_sends
    );
}

/// A panicking peer handler surfaces as a structured error naming the node
/// — at one shard (the panic is on the only worker) and at several (the
/// other workers must still drain and join).
#[test]
fn sharded_panic_is_contained_and_named() {
    #[derive(Debug, Clone, PartialEq)]
    struct Hot(u32);
    impl p2pdb::net::Wire for Hot {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "hot"
        }
    }
    #[derive(Debug)]
    struct Bomb {
        next: NodeId,
        fuse: bool,
    }
    impl Peer<Hot> for Bomb {
        fn on_message(&mut self, _from: NodeId, msg: Hot, ctx: &mut Context<Hot>) {
            if self.fuse {
                panic!("injected fault at {}", ctx.id());
            }
            if msg.0 > 0 {
                ctx.send(self.next, Hot(msg.0 - 1));
            }
        }
    }

    for shards in [1usize, 4] {
        let mut net: ShardedNetwork<Hot, Bomb> = ShardedNetwork::new();
        net.set_shards(shards);
        let n = 6u32;
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                Bomb {
                    next: NodeId((i + 1) % n),
                    fuse: i == 4,
                },
            );
        }
        let err = net
            .run(vec![(NodeId(0), NodeId(0), Hot(100))])
            .expect_err("the fuse must blow");
        assert_eq!(err.node, NodeId(4), "{shards} shards");
        assert!(
            err.payload.contains("injected fault"),
            "{shards} shards: {}",
            err.payload
        );
    }
}

// ---------------------------------------------------------------------------
// Property: sharded == simulator == oracle over topologies × seeds × shard
// counts (including more shards than peers).
// ---------------------------------------------------------------------------

fn proptest_topology(idx: u8, n: u8) -> Topology {
    let n = 3 + (n % 4) as u32; // 3..=6 nodes
    match idx % 3 {
        0 => Topology::Ring { n },
        1 => Topology::Chain { n },
        _ => Topology::Clique { n: n.min(4) },
    }
}

fn builder_for(topology: Topology, seed: u64) -> P2PSystemBuilder {
    let mut b = build_system(&WorkloadConfig {
        topology,
        records_per_node: 5,
        distribution: Distribution::Disjoint,
        seed,
    })
    .unwrap();
    // The sharded runtime forces eager mode; run the simulator reference
    // in the same mode so the comparison is apples to apples.
    b.config_mut().mode = UpdateMode::Eager;
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole's correctness anchor: for random topologies, data
    /// seeds and shard counts (1 up to > n), the sharded fix-point equals
    /// the simulator's and the centralized oracle's modulo null renaming.
    #[test]
    fn sharded_equals_simulator_equals_oracle(
        topo_idx in 0u8..3,
        size in 0u8..4,
        data_seed in 0u64..500,
        shards in 1usize..9,
    ) {
        let topology = proptest_topology(topo_idx, size);

        let mut sim = builder_for(topology, data_seed).build().unwrap();
        let report = sim.run_update();
        prop_assert!(report.all_closed, "simulator unclosed on {topology}");

        let (db, _, all_closed) = run_update_sharded(
            builder_for(topology, data_seed),
            shards,
            ShardPlacement::RoundRobin,
        ).unwrap();
        prop_assert!(all_closed, "{shards} shards unclosed on {topology}");
        prop_assert!(
            db.equivalent(&sim.snapshot()),
            "sharded != simulator on {topology} seed {data_seed} shards {shards}"
        );
        prop_assert!(
            db.equivalent(&sim.oracle().unwrap()),
            "sharded != oracle on {topology} seed {data_seed} shards {shards}"
        );
    }
}
