//! Cross-crate end-to-end tests: every topology family, both update modes,
//! always checked against the centralized fix-point oracle (Lemma 1
//! soundness + completeness, modulo null renaming).

use p2pdb::core::config::UpdateMode;
use p2pdb::topology::Topology;
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};

fn check(topology: Topology, mode: UpdateMode, distribution: Distribution) {
    let cfg = WorkloadConfig {
        topology,
        records_per_node: 12,
        distribution,
        seed: 99,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().mode = mode;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent, "{topology} {mode:?}: diverged");
    assert!(report.all_closed, "{topology} {mode:?}: not all closed");
    assert!(
        report.errors.is_empty(),
        "{topology} {mode:?}: {:?}",
        report.errors
    );
    assert!(
        sys.snapshot().equivalent(&sys.oracle().unwrap()),
        "{topology} {mode:?}: result differs from oracle"
    );
}

#[test]
fn trees_eager() {
    check(
        Topology::Tree {
            branching: 2,
            depth: 3,
        },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn trees_rounds() {
    check(
        Topology::Tree {
            branching: 2,
            depth: 3,
        },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn layered_eager() {
    check(
        Topology::LayeredDag {
            layers: 4,
            width: 3,
            fanout: 2,
        },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn layered_rounds() {
    check(
        Topology::LayeredDag {
            layers: 4,
            width: 3,
            fanout: 2,
        },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn clique_eager() {
    check(
        Topology::Clique { n: 4 },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn clique_rounds() {
    check(
        Topology::Clique { n: 4 },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn ring_eager() {
    check(
        Topology::Ring { n: 6 },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn ring_rounds() {
    check(
        Topology::Ring { n: 6 },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn star_eager() {
    check(
        Topology::Star { n: 8 },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn chain_rounds() {
    check(
        Topology::Chain { n: 7 },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn overlap_distribution_eager_tree() {
    check(
        Topology::Tree {
            branching: 2,
            depth: 2,
        },
        UpdateMode::Eager,
        Distribution::OverlapNeighbors { percent: 50 },
    );
}

#[test]
fn overlap_distribution_rounds_ring() {
    check(
        Topology::Ring { n: 5 },
        UpdateMode::Rounds,
        Distribution::OverlapNeighbors { percent: 50 },
    );
}

#[test]
fn random_graph_eager() {
    check(
        Topology::Random {
            n: 10,
            p_percent: 25,
            seed: 5,
        },
        UpdateMode::Eager,
        Distribution::Disjoint,
    );
}

#[test]
fn random_graph_rounds() {
    check(
        Topology::Random {
            n: 10,
            p_percent: 25,
            seed: 5,
        },
        UpdateMode::Rounds,
        Distribution::Disjoint,
    );
}

#[test]
fn baselines_agree_with_distributed_on_dags() {
    use p2pdb::baselines::{acyclic_update, centralized_update};
    use p2pdb::relational::hom::equivalent_modulo_nulls;
    use p2pdb::topology::NodeId;

    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 2,
        },
        records_per_node: 15,
        distribution: Distribution::Disjoint,
        seed: 7,
    };
    let mut sys = build_system(&cfg).unwrap().build().unwrap();
    let initial = sys.snapshot().0;
    let rules = sys.rules().clone();
    sys.run_update();
    let distributed = sys.snapshot();

    let (central, _) = centralized_update(&initial, &rules, NodeId(0), 64).unwrap();
    assert!(distributed.equivalent(&central));

    let (acyclic, _) = acyclic_update(&initial, &rules, 64).unwrap();
    for (node, db) in &acyclic {
        assert!(equivalent_modulo_nulls(
            db,
            distributed.node(*node).unwrap()
        ));
    }
}

#[test]
fn delta_off_same_result_more_bytes() {
    let cfg = WorkloadConfig {
        topology: Topology::Ring { n: 5 },
        records_per_node: 20,
        distribution: Distribution::OverlapNeighbors { percent: 50 },
        seed: 3,
    };
    let run = |delta: bool| {
        let mut b = build_system(&cfg).unwrap();
        b.config_mut().delta_optimization = delta;
        let mut sys = b.build().unwrap();
        let r = sys.run_update();
        assert!(r.all_closed);
        (sys.snapshot(), r.bytes)
    };
    let (with_delta, bytes_delta) = run(true);
    let (without_delta, bytes_full) = run(false);
    assert!(with_delta.equivalent(&without_delta));
    assert!(
        bytes_full >= bytes_delta,
        "full answers ({bytes_full}) must ship at least as many bytes as deltas ({bytes_delta})"
    );
}
