//! Durability & churn: peers that crash mid-session recover from storage
//! (WAL + snapshots), reconcile missed traffic through watermark-based
//! resync, and the network still converges to the exact no-churn fix-point
//! — at a repair cost far below a full re-propagation.

use p2pdb::core::config::UpdateMode;
use p2pdb::core::system::{LatencySpec, P2PSystem, P2PSystemBuilder};
use p2pdb::net::{ChurnPlan, SimTime};
use p2pdb::relational::hom::contained_modulo_nulls;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};

fn ring_builder(mode: UpdateMode, delta_waves: bool, durable: bool) -> P2PSystemBuilder {
    let mut b = build_system(&WorkloadConfig {
        topology: Topology::Ring { n: 8 },
        records_per_node: 20,
        distribution: Distribution::Disjoint,
        seed: 7,
    })
    .unwrap();
    b.config_mut().mode = mode;
    b.config_mut().delta_waves = delta_waves;
    b.config_mut().durability = durable;
    b.config_mut().snapshot_every = 16;
    b.config_mut().max_events = 50_000_000;
    b
}

/// Session length of the clean run, for placing crashes mid-session.
fn probe(mode: UpdateMode) -> (P2PSystem, SimTime) {
    let mut sys = ring_builder(mode, true, true).build().unwrap();
    let report = sys.run_update();
    assert!(report.all_closed, "clean probe must close");
    (sys, report.outcome.virtual_time)
}

/// Two staggered mid-session crashes of non-super peers.
fn two_crashes(t: SimTime) -> ChurnPlan {
    ChurnPlan::none()
        .with_crash(NodeId(3), SimTime(t.0 / 4), SimTime(t.0 / 4 + t.0 / 6))
        .with_crash(NodeId(5), SimTime(t.0 / 2), SimTime(t.0 / 2 + t.0 / 6))
}

/// The ISSUE acceptance criterion: ring(8), ≥2 scheduled crashes, rounds
/// mode — the final databases are tuple-identical to the no-churn run and
/// the centralized oracle, and `resync_rows` stays strictly below a full
/// re-propagation.
#[test]
fn ring8_two_crashes_converges_identically_with_cheap_resync() {
    let (clean, t) = probe(UpdateMode::Rounds);

    // The full re-propagation price: what the delta-less baseline ships.
    let mut full = ring_builder(UpdateMode::Rounds, false, false)
        .build()
        .unwrap();
    full.run_update();
    let full_rows = full.sum_stats().rows_shipped;

    let mut b = ring_builder(UpdateMode::Rounds, true, true);
    b.set_churn(two_crashes(t));
    let mut sys = b.build().unwrap();
    let report = sys.run_update_resilient(8);
    assert!(report.outcome.quiescent && report.all_closed, "{report:?}");
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    let stats = sys.sum_stats();
    assert_eq!(stats.crashes, 2, "{stats}");
    assert_eq!(stats.recoveries, 2, "every crash must recover: {stats}");
    assert!(
        stats.resync_rows > 0,
        "resync must actually engage: {stats}"
    );
    assert!(
        stats.resync_rows < full_rows,
        "crash repair ({}) must be cheaper than full re-propagation ({})",
        stats.resync_rows,
        full_rows
    );
    assert!(
        sys.snapshot().equivalent(&clean.snapshot()),
        "churned fix-point differs from the no-churn run"
    );
    assert!(
        sys.snapshot().equivalent(&sys.oracle().unwrap()),
        "churned fix-point differs from the centralized oracle"
    );
}

/// A crash in the middle of a wave under latency jitter: answers and
/// echoes of the broken round interleave arbitrarily with the crash, the
/// stalled wave is re-driven, and the result is still the oracle's.
#[test]
fn crash_mid_wave_under_uniform_latency_still_converges() {
    let latency = LatencySpec::Uniform {
        min: SimTime::from_micros(300),
        max: SimTime::from_micros(2_000),
        seed: 99,
    };
    // Clean jittered run for the reference fix-point and session length.
    let mut clean_b = ring_builder(UpdateMode::Rounds, true, true);
    clean_b.set_latency(latency);
    let mut clean = clean_b.build().unwrap();
    let clean_report = clean.run_update();
    assert!(clean_report.all_closed);
    let t = clean_report.outcome.virtual_time;

    for seed in [99u64, 100, 101] {
        let mut b = ring_builder(UpdateMode::Rounds, true, true);
        b.set_latency(LatencySpec::Uniform {
            min: SimTime::from_micros(300),
            max: SimTime::from_micros(2_000),
            seed,
        });
        // One crash squarely mid-session, long enough to break the round.
        b.set_churn(ChurnPlan::none().with_crash(
            NodeId(4),
            SimTime(t.0 * 2 / 5),
            SimTime(t.0 * 3 / 5),
        ));
        let mut sys = b.build().unwrap();
        let report = sys.run_update_resilient(8);
        assert!(report.all_closed, "seed {seed}: {report:?}");
        assert!(report.errors.is_empty(), "seed {seed}: {:?}", report.errors);
        assert!(sys.sum_stats().crashes >= 1);
        assert!(
            sys.snapshot().equivalent(&clean.snapshot()),
            "seed {seed}: churned fix-point differs from the no-crash run"
        );
        assert!(
            sys.snapshot().equivalent(&sys.oracle().unwrap()),
            "seed {seed}: churned fix-point differs from the oracle"
        );
    }
}

/// Eager mode: a crash strands the epoch's Dijkstra–Scholten accounting;
/// the re-driven epoch retires the stale state, the recovered peer rejoins,
/// and the fix-point matches the oracle.
#[test]
fn eager_mode_churn_recovers_and_closes() {
    let (clean, t) = probe(UpdateMode::Eager);
    let mut b = ring_builder(UpdateMode::Eager, true, true);
    b.set_churn(two_crashes(t));
    let mut sys = b.build().unwrap();
    let report = sys.run_update_resilient(8);
    assert!(report.outcome.quiescent && report.all_closed, "{report:?}");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    let stats = sys.sum_stats();
    assert_eq!(stats.crashes, 2);
    assert_eq!(stats.recoveries, 2);
    assert!(sys.snapshot().equivalent(&clean.snapshot()));
    assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
}

/// Durability off: the crashed peers come back empty. The run must stay
/// *sound* (nothing outside the oracle's fix-point) even though the
/// crashed peers' base data is gone for good — this is the baseline the
/// CLI refuses to combine with `--churn` silently.
#[test]
fn amnesia_baseline_stays_sound_but_loses_data() {
    let (_, t) = probe(UpdateMode::Rounds);
    let mut b = ring_builder(UpdateMode::Rounds, false, false);
    b.set_churn(two_crashes(t));
    let mut sys = b.build().unwrap();
    let report = sys.run_update_resilient(4);
    assert!(report.outcome.quiescent);
    let oracle = sys.oracle().unwrap();
    for (node, db) in &sys.snapshot().0 {
        assert!(
            contained_modulo_nulls(db, oracle.node(*node).unwrap()),
            "unsound data at {node} after amnesia churn"
        );
    }
    let stats = sys.sum_stats();
    assert_eq!(stats.crashes, 2);
    assert_eq!(stats.recoveries, 0, "nothing to recover without storage");
}

/// A tight snapshot cadence (snapshot every 4 WAL records, forcing many
/// mid-session snapshots) changes nothing about the recovered fix-point.
#[test]
fn tight_snapshot_cadence_recovers_identically() {
    let (clean, t) = probe(UpdateMode::Rounds);
    let mut b = ring_builder(UpdateMode::Rounds, true, true);
    b.config_mut().snapshot_every = 4;
    b.set_churn(two_crashes(t));
    let mut sys = b.build().unwrap();
    let report = sys.run_update_resilient(8);
    assert!(report.all_closed, "{report:?}");
    assert!(sys.snapshot().equivalent(&clean.snapshot()));
    assert_eq!(sys.sum_stats().recoveries, 2);
}

/// Churn composed with transport *drops* must never produce a falsely
/// certified fix-point: a lost resync message keeps the recovered peer
/// open (forcing re-drives that re-send it) rather than closing with a
/// silent hole. If a run does close everywhere, the data IS the oracle's
/// fix-point; either way it stays sound.
#[test]
fn churn_with_drops_never_falsely_closes() {
    use p2pdb::net::FaultPlan;
    let (_, t) = probe(UpdateMode::Rounds);
    for seed in [1u64, 2, 3, 4] {
        let mut b = ring_builder(UpdateMode::Rounds, true, true);
        b.set_churn(two_crashes(t));
        b.set_fault(FaultPlan::random(5, 0, seed));
        let mut sys = b.build().unwrap();
        let report = sys.run_update_resilient(6);
        assert!(report.outcome.quiescent, "seed {seed}: {report:?}");
        let oracle = sys.oracle().unwrap();
        for (node, db) in &sys.snapshot().0 {
            assert!(
                contained_modulo_nulls(db, oracle.node(*node).unwrap()),
                "seed {seed}: unsound data at {node} under drops+churn"
            );
        }
        if report.all_closed {
            assert!(
                sys.snapshot().equivalent(&oracle),
                "seed {seed}: false closure — everyone closed on a non-fix-point"
            );
        }
    }
}

/// Churn composes with transport faults: duplicated messages during a
/// churned session change nothing (handler idempotence + exactly-once
/// dedup survive recovery).
#[test]
fn churn_composes_with_duplication() {
    use p2pdb::net::FaultPlan;
    let (clean, t) = probe(UpdateMode::Rounds);
    let mut b = ring_builder(UpdateMode::Rounds, true, true);
    b.set_churn(two_crashes(t));
    b.set_fault(FaultPlan::random(0, 30, 5));
    let mut sys = b.build().unwrap();
    let report = sys.run_update_resilient(8);
    assert!(report.all_closed, "{report:?}");
    assert!(
        sys.net_stats().duplicated > 0,
        "plan must actually duplicate"
    );
    assert!(sys.snapshot().equivalent(&clean.snapshot()));
    assert!(sys.snapshot().equivalent(&sys.oracle().unwrap()));
}
