//! End-to-end tests of the real-socket stack: `p2pdb serve` children on
//! loopback, handshake rejection of misconfigured peers, full multi-process
//! cluster convergence under both codecs, durable restart + resync over
//! TCP, and child reaping on failed launches.

use p2pdb::core::messages::ProtocolMsg;
use p2pdb::core::oracle::GlobalDb;
use p2pdb::core::socket::Controller;
use p2pdb::net::{Codec, SessionId};
use p2pdb::topology::NodeId;
use p2pdb::transport::{client_handshake, Hello, RejectReason, TransportError, DEFAULT_MAX_FRAME};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_p2pdb")
}

fn workload(topology: &str, size: u32, dir: &std::path::Path) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let out = Command::new(bin())
        .args([
            "workload",
            "--topology",
            topology,
            "--size",
            &size.to_string(),
            "--records",
            "8",
        ])
        .output()
        .expect("workload runs");
    assert!(out.status.success());
    let path = dir.join(format!("net-{topology}-{size}.json"));
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

/// Spawns one `serve` child and returns it with its resolved listen
/// address (parsed from the `serving node … on ADDR` banner).
fn spawn_serve(net: &std::path::Path, node: u32, args: &[String]) -> (Child, SocketAddr) {
    let mut child = Command::new(bin())
        .arg("serve")
        .arg(net)
        .args(["--node", &node.to_string()])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    // Hand the pipe back to the child handle: dropping it would make the
    // child's next println! die on EPIPE.
    child.stdout = Some(reader.into_inner());
    let addr = line
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no listen address in banner: {line:?}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad address in banner {line:?}: {e}"));
    (child, addr)
}

#[test]
fn handshake_rejects_misconfigured_peers() {
    let dir = std::env::temp_dir().join("p2pdb_transport_hs");
    let net = workload("ring", 4, &dir);
    let (mut child, addr) = spawn_serve(&net, 0, &["--listen".into(), "127.0.0.1:0".into()]);

    let connect = || {
        let s = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    };

    // Wrong codec: the server runs JSON, a binary pipe must be refused
    // with the typed reason (and the detail says what the server wanted).
    let mut s = connect();
    let err = client_handshake(
        &mut s,
        &Hello::pipe(NodeId(1), Codec::Binary),
        DEFAULT_MAX_FRAME,
    )
    .expect_err("codec mismatch refused");
    match err {
        TransportError::Rejected { reason, detail } => {
            assert_eq!(reason, RejectReason::Codec);
            assert!(detail.contains("json"), "detail: {detail}");
        }
        other => panic!("expected Rejected, got {other}"),
    }

    // Version skew.
    let mut stale = Hello::pipe(NodeId(1), Codec::Json);
    stale.version = 9;
    let mut s = connect();
    let err = client_handshake(&mut s, &stale, DEFAULT_MAX_FRAME).expect_err("version refused");
    match err {
        TransportError::Rejected { reason, .. } => assert_eq!(reason, RejectReason::Version),
        other => panic!("expected Rejected, got {other}"),
    }

    // A node id the netfile never declared.
    let mut s = connect();
    let err = client_handshake(
        &mut s,
        &Hello::pipe(NodeId(99), Codec::Json),
        DEFAULT_MAX_FRAME,
    )
    .expect_err("unknown node refused");
    match err {
        TransportError::Rejected { reason, .. } => assert_eq!(reason, RejectReason::UnknownNode),
        other => panic!("expected Rejected, got {other}"),
    }

    // A well-formed peer pipe and a control connection both get in; the
    // control socket answers the typed protocol and can stop the server.
    let mut s = connect();
    let server = client_handshake(
        &mut s,
        &Hello::pipe(NodeId(1), Codec::Json),
        DEFAULT_MAX_FRAME,
    )
    .expect("matching pipe accepted");
    assert_eq!(server, NodeId(0));

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut ctl = Controller::connect(addr, deadline).expect("control accepted");
    ctl.shutdown().expect("server acknowledges shutdown");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve exited with {status}");
}

fn launch_and_check(net: &std::path::Path, codec: &str) {
    let out = Command::new(bin())
        .arg("launch")
        .arg(net)
        .args(["--codec", codec])
        .output()
        .expect("launch runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "launch {codec}: {stdout}\n{stderr}");
    assert!(
        stdout.contains("verified: MATCH"),
        "launch {codec}: {stdout}"
    );
    assert!(
        stdout.contains("children exited cleanly"),
        "launch {codec}: {stdout}"
    );
}

#[test]
fn launch_ring_converges_and_matches_sim_json() {
    let dir = std::env::temp_dir().join("p2pdb_transport_launch");
    let net = workload("ring", 5, &dir);
    launch_and_check(&net, "json");
}

#[test]
fn launch_ring_converges_and_matches_sim_binary() {
    let dir = std::env::temp_dir().join("p2pdb_transport_launch");
    let net = workload("ring", 5, &dir);
    launch_and_check(&net, "binary");
}

#[test]
fn durable_serve_restarts_and_resyncs_over_the_socket() {
    let dir = std::env::temp_dir().join("p2pdb_transport_durable");
    let _ = std::fs::remove_dir_all(&dir);
    let net = workload("chain", 3, &dir);
    let state = dir.join("state");

    // Reserve fixed ports so the restarted node comes back where its
    // peers expect it.
    let mut addrs = Vec::new();
    for _ in 0..3 {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(probe.local_addr().unwrap());
    }
    let serve_args = |node: u32| -> Vec<String> {
        let mut a = vec!["--listen".into(), addrs[node as usize].to_string()];
        for peer in 0..3u32 {
            if peer != node {
                a.push("--peer".into());
                a.push(format!("{peer}={}", addrs[peer as usize]));
            }
        }
        a.extend([
            "--durable".into(),
            "--state-dir".into(),
            state.to_string_lossy().into_owned(),
        ]);
        a
    };

    let mut children: Vec<Child> = Vec::new();
    for node in 0..3u32 {
        children.push(spawn_serve(&net, node, &serve_args(node)).0);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut ctls: Vec<Controller> = addrs
        .iter()
        .map(|a| Controller::connect(*a, deadline).expect("control up"))
        .collect();

    // Drive one update session to fix-point.
    let session = SessionId::new(NodeId(0), 1);
    ctls[0]
        .inject(0, ProtocolMsg::StartUpdate { session })
        .unwrap();
    loop {
        let closed = ctls.iter_mut().all(|c| c.session_closed(session).unwrap());
        if closed {
            break;
        }
        assert!(Instant::now() < deadline, "no fix-point within 30s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let before = GlobalDb(
        [(NodeId(0), ctls[0].snapshot().unwrap())]
            .into_iter()
            .collect(),
    );
    assert!(
        before.0[&NodeId(0)].total_tuples() > 0,
        "the update materialised rows at the head node"
    );

    // Cleanly stop node 0, then bring it back on the same address and
    // state dir: it must adopt the on-disk state (a restart, not a fresh
    // boot) and resync over TCP while nodes 1 and 2 keep running.
    ctls[0].shutdown().unwrap();
    let status = children.remove(0).wait().unwrap();
    assert!(status.success());

    let (revived, _) = spawn_serve(&net, 0, &serve_args(0));
    children.insert(0, revived);
    let deadline = Instant::now() + Duration::from_secs(30);
    ctls[0] = Controller::connect(addrs[0], deadline).expect("restarted control up");
    let (stats, _, _) = ctls[0].stats().unwrap();
    assert!(
        stats.recoveries >= 1,
        "restart counted as a recovery: {stats:?}"
    );

    // The restarted node converges back to the pre-restart database.
    loop {
        let after = GlobalDb(
            [(NodeId(0), ctls[0].snapshot().unwrap())]
                .into_iter()
                .collect(),
        );
        if after.equivalent(&before) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted node did not resync to the pre-restart state"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    for ctl in &mut ctls {
        ctl.shutdown().unwrap();
    }
    for mut child in children {
        let status = child.wait().unwrap();
        assert!(status.success());
    }
}

#[test]
fn failed_launch_reaps_every_child() {
    let dir = std::env::temp_dir().join("p2pdb_transport_reap");
    let net = workload("ring", 4, &dir);
    // A 1 ms budget: long enough to spawn the fleet (and print the pids),
    // far too short to converge — the launch must fail AND leave no
    // orphaned serve processes behind.
    let out = Command::new(bin())
        .arg("launch")
        .arg(&net)
        .args(["--timeout-ms", "1"])
        .output()
        .expect("launch runs");
    assert!(!out.status.success(), "a 1ms launch cannot succeed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let pids: Vec<u32> = stdout
        .lines()
        .filter_map(|l| {
            let rest = l.split(" pid ").nth(1)?;
            rest.split_whitespace().next()?.parse().ok()
        })
        .collect();
    assert_eq!(pids.len(), 4, "all four spawns were announced: {stdout}");
    for pid in pids {
        // The launcher wait()s every child it kills, so the pid must be
        // fully gone (not even a zombie) once the process exits.
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "child {pid} still alive after failed launch"
        );
    }
}
