//! Differential property tests for the binary wire codec: random protocol
//! messages, WAL records and database snapshots must (a) round-trip through
//! the binary codec **byte-for-byte** — encode → decode → re-encode yields
//! identical bytes — and (b) decode to exactly the value the JSON path
//! produces, including foreign-dictionary `SymRemap` on recovery.

use p2pdb::core::codec::{decode_msg, encode_msg};
use p2pdb::core::messages::{AnswerRows, ProtocolMsg};
use p2pdb::core::rule::RuleId;
use p2pdb::net::{Codec, SessionId};
use p2pdb::relational::value::NullId;
use p2pdb::relational::{ConstCatalog, Database, DatabaseSchema, SymId, Tuple, Val};
use p2pdb::storage::{DatabaseSnapshot, MemoryBackend, PeerStorage, WalRecord};
use p2pdb::topology::NodeId;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn val() -> impl Strategy<Value = Val> {
    (
        0u8..3,
        any::<i64>(),
        any::<u32>(),
        0u32..9000,
        0u64..1_000_000,
    )
        .prop_map(|(kind, i, sym, node, counter)| match kind {
            0 => Val::Int(i),
            1 => Val::Sym(SymId(sym)),
            _ => Val::Null(NullId::new(node, counter)),
        })
}

fn null_depths() -> impl Strategy<Value = Vec<(NullId, u32)>> {
    proptest::collection::vec(
        (0u32..9000, 0u64..1_000_000, 0u32..64).prop_map(|(n, c, d)| (NullId::new(n, c), d)),
        0..5,
    )
}

fn marks() -> impl Strategy<Value = BTreeMap<Arc<str>, usize>> {
    proptest::collection::vec((0u8..6, 0usize..100_000), 0..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(k, v)| (Arc::<str>::from(format!("rel{k}")), v))
            .collect()
    })
}

fn dict() -> impl Strategy<Value = Vec<(SymId, Arc<str>)>> {
    proptest::collection::vec((any::<u32>(), 0u16..600), 0..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(id, n)| (SymId(id), Arc::<str>::from(format!("sym-{n}"))))
            .collect()
    })
}

/// Random answer payloads: mostly uniform-arity row blocks (the columnar
/// fast path), occasionally ragged (the generic fallback).
fn answer_rows() -> impl Strategy<Value = AnswerRows> {
    (1usize..4, 0usize..10).prop_flat_map(|(arity, nrows)| {
        (
            proptest::collection::vec(val(), arity * nrows..arity * nrows + 1),
            any::<bool>(),
            null_depths(),
            marks(),
            dict(),
        )
            .prop_map(move |(flat, ragged, null_depths, marks, dict)| {
                let mut rows: Vec<Tuple> =
                    flat.chunks(arity).map(|c| Tuple::new(c.to_vec())).collect();
                if ragged && rows.len() >= 2 {
                    // Shorten the last row: mixed arities must take the
                    // generic fallback and still round-trip exactly.
                    let last = rows.pop().unwrap();
                    rows.push(Tuple::new(last.0[..arity - 1].to_vec()));
                }
                AnswerRows {
                    vars: (0..arity)
                        .map(|i| Arc::<str>::from(format!("X{i}")))
                        .collect(),
                    rows,
                    null_depths,
                    marks,
                    dict,
                }
            })
    })
}

fn session() -> impl Strategy<Value = SessionId> {
    (0u32..9000, 0u64..1_000_000).prop_map(|(root, epoch)| SessionId::new(NodeId(root), epoch))
}

/// A spread of protocol messages: every answer-carrying variant (the hot
/// path), the session-scalar control messages, and discovery traffic.
fn msg() -> impl Strategy<Value = ProtocolMsg> {
    (
        (0u8..13, session(), any::<u32>(), 0u32..100_000),
        answer_rows(),
        (any::<bool>(), any::<bool>()),
        proptest::collection::vec((0u32..200, 0u32..200), 0..6),
        marks(),
    )
        .prop_map(
            |((kind, session, rule, round), rows, (b1, b2), edge_list, since)| {
                let rule = RuleId(rule);
                match kind {
                    0 => ProtocolMsg::StartDiscovery,
                    1 => ProtocolMsg::StartUpdate { session },
                    2 => ProtocolMsg::Answer {
                        session,
                        rule,
                        rows,
                        complete: b1,
                        reopen: b2,
                    },
                    3 => ProtocolMsg::WaveAnswer {
                        session,
                        round,
                        rule,
                        rows,
                    },
                    4 => ProtocolMsg::WaveAnswerDelta {
                        session,
                        round,
                        rule,
                        rows,
                    },
                    5 => ProtocolMsg::ResyncAnswer {
                        session,
                        rule,
                        rows,
                    },
                    6 => ProtocolMsg::Fixpoint {
                        session,
                        generation: round,
                    },
                    7 => ProtocolMsg::Ack { session },
                    8 => ProtocolMsg::RoundEcho {
                        session,
                        round,
                        dirty: b1,
                    },
                    9 => ProtocolMsg::Unsubscribe { session, rule },
                    10 => {
                        let edges: BTreeSet<(NodeId, NodeId)> = edge_list
                            .into_iter()
                            .map(|(a, b)| (NodeId(a), NodeId(b)))
                            .collect();
                        ProtocolMsg::DiscoveryAnswer {
                            owner: NodeId(session.root.0),
                            edges,
                            closed: b1,
                            finished: b2,
                        }
                    }
                    11 => ProtocolMsg::ResyncRequest {
                        session,
                        rule,
                        // Cold structured field: travels as an embedded
                        // generic document, so one shape suffices here.
                        part: p2pdb::core::rule::BodyPart {
                            node: NodeId(session.root.0),
                            atoms: vec![],
                            local_constraints: vec![],
                            vars: vec![Arc::from("X")],
                        },
                        since,
                    },
                    _ => ProtocolMsg::RoundsClosed {
                        session,
                        rounds: round,
                    },
                }
            },
        )
}

fn wal_record() -> impl Strategy<Value = WalRecord> {
    (
        (0u8..2, session(), any::<u32>(), 0u32..9000),
        proptest::collection::vec(val(), 0..8),
        null_depths(),
        marks(),
        dict(),
    )
        .prop_map(
            |((kind, session, rule, node), vals, depths, watermarks, dict)| {
                if kind == 0 {
                    WalRecord::Insert {
                        relation: Arc::from("rel"),
                        tuple: Tuple::new(vals),
                        depths,
                        dict,
                    }
                } else {
                    WalRecord::Answer {
                        session,
                        rule,
                        node: NodeId(node),
                        vars: vec![Arc::from("X")],
                        rows: vals.chunks(1).map(|c| Tuple::new(c.to_vec())).collect(),
                        watermarks,
                        dict,
                    }
                }
            },
        )
}

fn snapshot() -> impl Strategy<Value = DatabaseSnapshot> {
    (
        proptest::collection::vec((any::<i64>(), any::<i64>()), 0..15),
        proptest::collection::vec(0u16..600, 0..6),
        null_depths(),
        0u64..1_000_000,
    )
        .prop_map(|(ints, strs, depths, nulls_next)| {
            let schema = DatabaseSchema::parse("a(x: int, y: int). s(x: str).").unwrap();
            let mut db = Database::new(schema);
            for (x, y) in ints {
                db.insert("a", Tuple::new(vec![Val::Int(x), Val::Int(y)]))
                    .unwrap();
            }
            for n in strs {
                db.insert("s", Tuple::new(vec![Val::str(format!("snap-{n}"))]))
                    .unwrap();
            }
            let syms = db.syms();
            DatabaseSnapshot {
                wal_len: 3,
                nulls_next,
                depths,
                catalog: ConstCatalog::global().export(syms),
                db,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary encode → decode → re-encode is byte-for-byte stable, and the
    /// decoded message is (observed through JSON, the codec-independent
    /// lens) exactly the original.
    #[test]
    fn messages_roundtrip_byte_for_byte(msg in msg()) {
        let bytes = encode_msg(&msg);
        let decoded = decode_msg(&bytes).unwrap();
        prop_assert_eq!(&encode_msg(&decoded), &bytes);
        prop_assert_eq!(
            serde_json::to_string(&decoded).unwrap(),
            serde_json::to_string(&msg).unwrap()
        );
    }

    /// Driving the same message through the JSON path (serialize + parse)
    /// lands on a value whose binary encoding is identical — the two codecs
    /// agree on every message value.
    #[test]
    fn json_path_and_binary_path_agree(msg in msg()) {
        let json = serde_json::to_string(&msg).unwrap();
        let via_json: ProtocolMsg = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(encode_msg(&via_json), encode_msg(&msg));
    }

    /// WAL records round-trip byte-for-byte through the binary frame codec
    /// and agree with the JSON frame path.
    #[test]
    fn wal_records_roundtrip_byte_for_byte(rec in wal_record()) {
        let bytes = rec.to_frame_bytes();
        let decoded = WalRecord::from_frame_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &rec);
        prop_assert_eq!(decoded.to_frame_bytes(), bytes);
        let via_json = WalRecord::from_frame(&rec.to_frame()).unwrap();
        prop_assert_eq!(&via_json, &rec);
        prop_assert_eq!(via_json.to_frame_bytes(), rec.to_frame_bytes());
    }

    /// Database snapshots round-trip byte-for-byte through binpack and
    /// decode to the same value the JSON path produces.
    #[test]
    fn snapshots_roundtrip_byte_for_byte(snap in snapshot()) {
        let bytes = binpack::to_bytes(&snap).unwrap();
        let decoded: DatabaseSnapshot = binpack::from_bytes(&bytes).unwrap();
        prop_assert_eq!(binpack::to_bytes(&decoded).unwrap(), bytes);
        let json = serde_json::to_string(&snap).unwrap();
        prop_assert_eq!(&serde_json::to_string(&decoded).unwrap(), &json);
        let via_json: DatabaseSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&via_json).unwrap(), json);
    }

    /// Foreign-process dictionaries (symbol ids minted in another catalog)
    /// recover through `SymRemap` to the same facts under both codecs.
    #[test]
    fn foreign_dictionaries_remap_identically_across_codecs(
        names in proptest::collection::vec(0u16..900, 1..8),
    ) {
        let mut recovered = Vec::new();
        for codec in [Codec::Json, Codec::Binary] {
            let mut st =
                PeerStorage::with_codec(Box::<MemoryBackend>::default(), 0, codec);
            let db = Database::new(DatabaseSchema::parse("s(x: str).").unwrap());
            st.snapshot(&db, 0, Vec::new()).unwrap();
            for (i, n) in names.iter().enumerate() {
                // Ids far outside the live catalog, as a foreign process
                // would mint them; the record's dictionary defines them.
                let foreign = SymId(3_000_000 + i as u32);
                st.log(&WalRecord::Insert {
                    relation: Arc::from("s"),
                    tuple: Tuple::new(vec![Val::Sym(foreign)]),
                    depths: vec![],
                    dict: vec![(foreign, Arc::from(format!("fw-{n}")))],
                })
                .unwrap();
            }
            let rec = st.recover(0).unwrap().unwrap();
            for n in &names {
                prop_assert!(
                    rec.db
                        .relation("s")
                        .unwrap()
                        .contains(&[Val::str(format!("fw-{n}"))]),
                    "missing fw-{} under {}", n, codec
                );
            }
            recovered.push(rec.db);
        }
        prop_assert_eq!(recovered[0].all_facts(), recovered[1].all_facts());
    }
}
