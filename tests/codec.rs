//! Codec integration: a whole update run under the binary wire codec lands
//! on the identical fix-point (tuple-for-tuple, and against the oracle)
//! while shrinking total wire bytes several-fold; and the transport layer
//! serializes every message exactly once — measuring a message's size and
//! shipping it share a single encode pass.

use p2pdb::core::config::UpdateMode;
use p2pdb::net::Codec;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
use std::collections::BTreeMap;

fn run(codec: Codec, mode: UpdateMode) -> (BTreeMap<NodeId, Vec<String>>, u64, u64) {
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 3,
        },
        records_per_node: 50,
        distribution: Distribution::Disjoint,
        seed: 7,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().mode = mode;
    b.config_mut().codec = codec;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.all_closed, "{codec}: not all closed");
    assert!(report.errors.is_empty(), "{codec}: {:?}", report.errors);
    assert!(
        sys.snapshot().equivalent(&sys.oracle().unwrap()),
        "{codec}: differs from oracle"
    );
    // Render every database to a canonical fact list: the deterministic
    // simulator makes runs under both codecs bit-identical in content, so
    // exact tuple equality (not just equivalence modulo nulls) must hold.
    let facts = sys
        .snapshot()
        .0
        .iter()
        .map(|(node, db)| {
            let mut rendered: Vec<String> = db
                .all_facts()
                .iter()
                .map(|(rel, t)| format!("{rel}{t}"))
                .collect();
            rendered.sort();
            (*node, rendered)
        })
        .collect();
    (facts, report.messages, report.bytes)
}

#[test]
fn binary_codec_is_fixpoint_identical_and_much_smaller() {
    for mode in [UpdateMode::Eager, UpdateMode::Rounds] {
        let (json_facts, json_msgs, json_bytes) = run(Codec::Json, mode);
        let (bin_facts, bin_msgs, bin_bytes) = run(Codec::Binary, mode);
        assert_eq!(json_facts, bin_facts, "{mode:?}: fix-points differ");
        assert_eq!(json_msgs, bin_msgs, "{mode:?}: message counts differ");
        assert!(
            bin_bytes * 3 <= json_bytes,
            "{mode:?}: binary codec must shrink wire bytes at least 3x: \
             binary {bin_bytes} vs json {json_bytes}"
        );
    }
}

/// Regression for the double-serialization bug: `encoded_wire_size` used to
/// be called once to measure and the measurement discarded, with nothing
/// stopping a second walk at delivery. The runtimes now measure at send and
/// carry the size on the envelope — and since the fan-out refactor, a
/// broadcast's receivers share one `Arc`-ed payload and one serialization.
/// So the number of full encode passes per run equals the number of
/// *unique* messages: sends minus the shared-payload reuses, under both
/// codecs.
#[test]
fn each_sent_message_is_serialized_exactly_once() {
    for codec in [Codec::Json, Codec::Binary] {
        let cfg = WorkloadConfig {
            topology: Topology::Chain { n: 4 },
            records_per_node: 8,
            distribution: Distribution::Disjoint,
            seed: 11,
        };
        let mut b = build_system(&cfg).unwrap();
        b.config_mut().codec = codec;
        let mut sys = b.build().unwrap();
        let before = p2pdb::net::codec::encode_passes();
        let report = sys.run_update();
        let passes = p2pdb::net::codec::encode_passes() - before;
        let shared = sys.net_stats().shared_payload_sends;
        assert!(report.all_closed);
        // No faults, no duplication: every send is delivered once, so
        // delivered messages == sends; each unique payload is encoded
        // exactly once and fan-out copies ride along for free.
        assert!(
            shared > 0,
            "{codec}: the roster flood must produce shared fan-out payloads"
        );
        assert_eq!(
            passes,
            report.messages - shared,
            "{codec}: expected one serialization per unique message \
             ({} sends, {shared} shared)",
            report.messages
        );
    }
}
