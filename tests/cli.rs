//! Integration tests of the `p2pdb` command-line driver (cargo exposes the
//! binary path via `CARGO_BIN_EXE_p2pdb`).

use std::process::Command;

fn p2pdb(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_p2pdb"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn sample_emits_loadable_json() {
    let out = p2pdb(&["sample"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let file = p2pdb::core::netfile::NetworkFile::from_json(&text).unwrap();
    assert_eq!(file.nodes.len(), 2);
    assert_eq!(file.rules.len(), 1);
}

#[test]
fn workload_then_run_round_trips() {
    let dir = std::env::temp_dir().join("p2pdb_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");

    let out = p2pdb(&[
        "workload",
        "--topology",
        "chain",
        "--size",
        "4",
        "--records",
        "10",
    ]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();

    let out = p2pdb(&[
        "run",
        net.to_str().unwrap(),
        "--discover",
        "--stats",
        "--query",
        "0",
        "q(I) :- pub(I, T, Y)",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");
    assert!(text.contains("answers at node A"), "{text}");
    assert!(text.contains("per-peer statistics"), "{text}");
}

#[test]
fn run_rounds_mode_and_export() {
    let dir = std::env::temp_dir().join("p2pdb_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let exported = dir.join("out.json");

    let out = p2pdb(&[
        "workload",
        "--topology",
        "ring",
        "--size",
        "4",
        "--records",
        "5",
    ]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();

    let out = p2pdb(&[
        "run",
        net.to_str().unwrap(),
        "--mode",
        "rounds",
        "--export",
        exported.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The export must load back.
    let text = std::fs::read_to_string(&exported).unwrap();
    let file = p2pdb::core::netfile::NetworkFile::from_json(&text).unwrap();
    assert_eq!(file.nodes.len(), 4);
}

/// `--concurrent N` launches N interleaved sessions with per-session
/// attribution and the new session counters; `--concurrent 0` is rejected
/// with a clear error.
#[test]
fn run_concurrent_sessions_prints_attribution() {
    let dir = std::env::temp_dir().join("p2pdb_cli_concurrent");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let out = p2pdb(&[
        "workload",
        "--topology",
        "ring",
        "--size",
        "6",
        "--records",
        "8",
    ]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();

    let out = p2pdb(&["run", net.to_str().unwrap(), "--concurrent", "3", "--stats"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");
    // One attributed line per session, rooted at distinct nodes.
    assert!(text.contains("session A#1:"), "{text}");
    assert!(text.contains("session C#2:"), "{text}");
    assert!(text.contains("session E#3:"), "{text}");
    // The stats summary shows the new counters.
    assert!(text.contains("sessions: 3 launched"), "{text}");
    assert!(text.contains("peak 3 concurrent"), "{text}");
    assert!(text.contains("sessions=3 peak=3"), "{text}");

    let out = p2pdb(&["run", net.to_str().unwrap(), "--concurrent", "0"]);
    assert!(!out.status.success(), "--concurrent 0 must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--concurrent 0"), "{err}");
    assert!(err.contains("at least one"), "{err}");
}

/// `p2pdb sample | p2pdb run /dev/stdin --stats` round-trips: the sample
/// network file is consumable straight from a pipe and the update closes.
#[test]
#[cfg(unix)]
fn sample_pipes_into_run_via_stdin() {
    use std::io::Write;
    use std::process::Stdio;

    let sample = p2pdb(&["sample"]);
    assert!(sample.status.success());

    let mut run = Command::new(env!("CARGO_BIN_EXE_p2pdb"))
        .args(["run", "/dev/stdin", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // Ignore write errors: if the child exits early the pipe breaks, and the
    // status/stderr assertions below report the real failure.
    let _ = run
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(&sample.stdout);
    let out = run.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");
    assert!(text.contains("per-peer statistics"), "{text}");
}

/// Regression: `p2pdb run` parses untrusted network files; a deeply nested
/// document must produce a clean parse error, not recurse the JSON parser
/// off the stack and abort the process.
#[test]
fn deeply_nested_netfile_fails_cleanly_instead_of_overflowing() {
    let dir = std::env::temp_dir().join("p2pdb_cli_deep");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("deep.json");
    let depth = 10_000;
    let doc = "[".repeat(depth) + &"]".repeat(depth);
    std::fs::write(&net, doc).unwrap();

    let out = p2pdb(&["run", net.to_str().unwrap()]);
    assert!(!out.status.success());
    // A controlled exit (code 1), not a signal-killed abort.
    assert_eq!(out.status.code(), Some(1), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nesting depth"), "{stderr}");
}

/// Durability & churn flags: a churned durable run converges and reports
/// the recovery counters; churn flags without `--durable` are rejected
/// with a clear error instead of being silently ignored.
#[test]
fn churn_flags_require_durable_and_report_counters() {
    let dir = std::env::temp_dir().join("p2pdb_cli_churn");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let out = p2pdb(&[
        "workload",
        "--topology",
        "ring",
        "--size",
        "6",
        "--records",
        "10",
    ]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();

    // Churned durable run: closes, and the churn line + per-peer counters
    // show up under --stats.
    let out = p2pdb(&[
        "run",
        net.to_str().unwrap(),
        "--mode",
        "rounds",
        "--durable",
        "--churn",
        "2",
        "--snapshot-every",
        "8",
        "--stats",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");
    assert!(text.contains("churn: 2 crashes, 2 recoveries"), "{text}");
    assert!(text.contains("resync_rows="), "{text}");

    // Rejections: churn/snapshot flags without --durable.
    for flags in [&["--churn", "2"][..], &["--snapshot-every", "8"][..]] {
        let mut args = vec!["run", net.to_str().unwrap()];
        args.extend_from_slice(flags);
        let out = p2pdb(&args);
        assert!(!out.status.success(), "{flags:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("requires --durable"), "{stderr}");
    }
}

/// `--codec binary` runs the whole update under the binary wire codec (and
/// closes with fewer reported bytes than JSON); unknown codecs are rejected.
#[test]
fn codec_flag_switches_wire_accounting() {
    let dir = std::env::temp_dir().join("p2pdb_cli_codec");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let out = p2pdb(&[
        "workload",
        "--topology",
        "chain",
        "--size",
        "4",
        "--records",
        "10",
    ]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();

    fn reported_bytes(text: &str) -> u64 {
        // "update: N messages, B bytes, ..."
        let tail = text.split(" messages, ").nth(1).expect("update line");
        tail.split(" bytes").next().unwrap().parse().unwrap()
    }
    let mut bytes = Vec::new();
    for codec in ["json", "binary"] {
        let out = p2pdb(&["run", net.to_str().unwrap(), "--codec", codec, "--durable"]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("all closed: true"), "{text}");
        bytes.push(reported_bytes(&text));
    }
    assert!(
        bytes[1] < bytes[0],
        "binary codec must report fewer wire bytes: {bytes:?}"
    );

    let out = p2pdb(&["run", net.to_str().unwrap(), "--codec", "protobuf"]);
    assert!(!out.status.success(), "unknown codec must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown codec"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!p2pdb(&[]).status.success());
    assert!(!p2pdb(&["run"]).status.success());
    assert!(!p2pdb(&["run", "/nonexistent/x.json"]).status.success());
    assert!(!p2pdb(&["workload", "--topology", "moebius"])
        .status
        .success());
}

/// The socket verbs validate their flags with exit code 2 (usage error,
/// distinct from runtime failure = 1) and name the offending flag.
#[test]
fn serve_and_launch_usage_errors_exit_2() {
    let dir = std::env::temp_dir().join("p2pdb_cli_socket_usage");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let out = p2pdb(&["workload", "--topology", "ring", "--size", "4"]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();
    let net = net.to_str().unwrap();

    let check = |args: &[&str], flag: &str| {
        let out = p2pdb(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: expected exit 2, got {:?}\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag),
            "{args:?}: stderr must name {flag}: {stderr}"
        );
        // One-line errors: a single trailing newline, no stack traces.
        assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");
    };

    // serve: malformed and missing flags.
    check(
        &["serve", net, "--node", "0", "--listen", "not-an-addr"],
        "--listen",
    );
    check(&["serve", net, "--listen", "127.0.0.1:0"], "--node");
    check(
        &["serve", net, "--node", "zero", "--listen", "127.0.0.1:0"],
        "--node",
    );
    check(
        &["serve", net, "--node", "9", "--listen", "127.0.0.1:0"],
        "--node",
    );
    check(
        &[
            "serve",
            net,
            "--node",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--codec",
            "msgpack",
        ],
        "--codec",
    );
    check(
        &[
            "serve",
            net,
            "--node",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--mode",
            "rounds",
        ],
        "--mode",
    );
    check(
        &[
            "serve",
            net,
            "--node",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--peer",
            "nonsense",
        ],
        "--peer",
    );
    check(
        &[
            "serve",
            net,
            "--node",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--durable",
        ],
        "--state-dir",
    );
    check(
        &[
            "serve",
            net,
            "--node",
            "0",
            "--listen",
            "127.0.0.1:0",
            "--snapshot-every",
            "8",
        ],
        "--durable",
    );

    // serve: a listen address that is already taken is a usage error too —
    // the caller picked the port.
    let taken = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = taken.local_addr().unwrap().to_string();
    check(
        &["serve", net, "--node", "0", "--listen", &addr],
        "--listen",
    );

    // launch: the same validation style.
    check(&["launch", net, "--codec", "msgpack"], "--codec");
    check(&["launch", net, "--timeout-ms", "soon"], "--timeout-ms");
    check(&["launch", net, "--state-dir", "/tmp/x"], "--durable");
    check(&["launch", net, "--durable"], "--state-dir");
    let out = p2pdb(&["launch"]);
    assert_eq!(out.status.code(), Some(2));
}

/// The parallel runtimes behind `--runtime`: threaded and sharded reach a
/// fully closed fix-point, the sharded runtime reports its shard count and
/// cross-shard locality, and the new flags are validated as one-line usage
/// errors with exit code 2.
#[test]
fn run_parallel_runtimes_and_flag_validation() {
    let dir = std::env::temp_dir().join("p2pdb_cli_parallel");
    std::fs::create_dir_all(&dir).unwrap();
    let net = dir.join("net.json");
    let out = p2pdb(&["workload", "--topology", "ring", "--size", "6"]);
    assert!(out.status.success());
    std::fs::write(&net, &out.stdout).unwrap();
    let net = net.to_str().unwrap();

    let out = p2pdb(&["run", net, "--runtime", "threaded"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");

    let out = p2pdb(&["run", net, "--runtime", "sharded", "--threads", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all closed: true"), "{text}");
    assert!(text.contains("sharded: 2 threads"), "{text}");
    assert!(text.contains("cross-shard sends"), "{text}");

    let usage = |args: &[&str], needle: &str| {
        let out = p2pdb(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: expected exit 2, got {:?}\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    };
    usage(
        &["run", net, "--runtime", "sharded", "--threads", "0"],
        "--threads 0",
    );
    usage(&["run", net, "--threads", "2"], "--threads only applies");
    usage(&["run", net, "--runtime", "warp"], "unknown runtime");
    usage(
        &["run", net, "--runtime", "sharded", "--trace", "5"],
        "simulator-only",
    );
}
