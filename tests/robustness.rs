//! Robustness tests: the "robust" of the paper's title under transport
//! faults and real-thread nondeterminism.
//!
//! * message **duplication** must not change the result (handlers are
//!   idempotent — re-delivered queries re-subscribe, re-delivered answers
//!   re-insert already-present tuples);
//! * message **drops** may cost liveness but never safety: no unsound data,
//!   and never a false `closed` state at the super-peer;
//! * the **threaded runtime** (real parallelism, nondeterministic
//!   interleavings) must reach the same fix-point as the simulator.

use p2pdb::core::system::{run_update_threaded, P2PSystemBuilder};
use p2pdb::net::FaultPlan;
use p2pdb::relational::hom::contained_modulo_nulls;
use p2pdb::relational::Val;
use p2pdb::topology::NodeId;

fn builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r3", "A:a(X,Y) => C:c(Y,X)").unwrap(); // cycle A→C→B→A
    for i in 0..15i64 {
        b.insert(2, "c", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
    }
    b
}

#[test]
fn duplication_does_not_change_the_result() {
    let mut clean = builder().build().unwrap();
    let clean_report = clean.run_update();
    assert!(clean_report.all_closed);

    for seed in [1u64, 2, 3] {
        let mut b = builder();
        b.set_fault(FaultPlan::random(0, 40, seed));
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent, "duplication must not wedge");
        assert!(
            sys.snapshot().equivalent(&clean.snapshot()),
            "duplication changed the fix-point (seed {seed})"
        );
        assert!(
            sys.net_stats().duplicated > 0,
            "plan must actually duplicate"
        );
    }
}

#[test]
fn drops_never_produce_unsound_data_or_false_closure() {
    let oracle = {
        let sys = builder().build().unwrap();
        sys.oracle().unwrap()
    };
    for seed in [1u64, 5, 9] {
        let mut b = builder();
        b.set_fault(FaultPlan::random(25, 0, seed));
        let mut sys = b.build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent, "drops stall but do not loop");
        // Safety 1: everything derived is inside the true fix-point.
        for (node, db) in &sys.snapshot().0 {
            assert!(
                contained_modulo_nulls(db, oracle.node(*node).unwrap()),
                "unsound data at {node} under drops (seed {seed})"
            );
        }
        // Safety 2: if the super-peer claims closure, the data really is the
        // fix-point. (With dropped messages the DS acks usually never clear,
        // so closure simply doesn't happen — which is the correct behaviour.)
        if report.all_closed {
            assert!(sys.snapshot().equivalent(&oracle));
        }
    }
}

#[test]
fn link_outage_delays_but_data_stays_sound() {
    use p2pdb::net::fault::LinkOutage;
    use p2pdb::net::SimTime;
    let mut b = builder();
    b.set_fault(FaultPlan::none().with_outage(LinkOutage {
        from: NodeId(2),
        to: NodeId(1),
        start: SimTime::ZERO,
        end: SimTime::from_millis(2),
    }));
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent);
    let oracle = sys.oracle().unwrap();
    for (node, db) in &sys.snapshot().0 {
        assert!(contained_modulo_nulls(db, oracle.node(*node).unwrap()));
    }
}

#[test]
fn threaded_runtime_matches_simulator_fixpoint() {
    // The simulator's deterministic answer…
    let mut sim_sys = builder().build().unwrap();
    let sim_report = sim_sys.run_update();
    assert!(sim_report.all_closed);
    let sim_result = sim_sys.snapshot();

    // …must be reproduced by real threads under arbitrary interleavings.
    for _ in 0..3 {
        let (threaded, stats, all_closed) = run_update_threaded(builder()).unwrap();
        assert!(all_closed, "threaded run must close");
        assert!(
            threaded.equivalent(&sim_result),
            "threaded fix-point differs from simulated one"
        );
        assert!(stats.total_messages > 0);
    }
}

#[test]
fn threaded_runtime_on_workload_tree() {
    use p2pdb::topology::Topology;
    use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 2,
        },
        records_per_node: 10,
        distribution: Distribution::Disjoint,
        seed: 1,
    };
    let mut sim_sys = build_system(&cfg).unwrap().build().unwrap();
    sim_sys.run_update();
    let (threaded, _, all_closed) = run_update_threaded(build_system(&cfg).unwrap()).unwrap();
    assert!(all_closed);
    assert!(threaded.equivalent(&sim_sys.snapshot()));
}
