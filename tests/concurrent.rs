//! Concurrent update sessions: the session as a first-class object.
//!
//! Any number of update sessions — identified by `SessionId { root, epoch }`
//! and initiated by any nodes — run interleaved in one network run. These
//! tests pin the contract of that control plane:
//!
//! * **serial equivalence** — interleaved `run_updates(roots)` reaches a
//!   final global database tuple-identical (modulo null renaming) to
//!   running the same sessions serially, and to the centralized fix-point
//!   oracle (deterministic cases plus a proptest over random topologies ×
//!   root sets × interleaving seeds);
//! * **retirement** — after every session reaches its fix-point, every
//!   peer's session table is empty (no leaked Dijkstra–Scholten state,
//!   watermarks or fragment caches), including after a churn-broken session
//!   is redriven;
//! * **attribution** — the transport layer tags traces and per-session
//!   counters with the session each message belongs to;
//! * **threaded parity** — two concurrent sessions on the real-thread
//!   runtime reach the simulator's fix-point (modulo null renaming).

use p2pdb::core::config::UpdateMode;
use p2pdb::core::system::{run_updates_threaded, LatencySpec, P2PSystemBuilder};
use p2pdb::net::{SessionId, SimTime};
use p2pdb::relational::Val;
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
use proptest::prelude::*;

/// A cyclic three-node system (A→C→B→A) with data at every node: every
/// session has real work and the cycle exercises the Dijkstra–Scholten
/// path rather than pure flag closure.
fn cyclic_builder() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r1", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("r2", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r3", "A:a(X,Y) => C:c(Y,X)").unwrap();
    for i in 0..8i64 {
        b.insert(2, "c", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
        b.insert(1, "b", vec![Val::Int(100 + i), Val::Int(i)])
            .unwrap();
    }
    b
}

/// A ring(8) workload builder for the larger scenarios.
fn ring_builder(mode: UpdateMode) -> P2PSystemBuilder {
    let mut b = build_system(&WorkloadConfig {
        topology: Topology::Ring { n: 8 },
        records_per_node: 15,
        distribution: Distribution::Disjoint,
        seed: 7,
    })
    .unwrap();
    b.config_mut().mode = mode;
    b.config_mut().max_events = 50_000_000;
    b
}

#[test]
fn interleaved_sessions_match_serial_and_oracle_eager() {
    let roots = [NodeId(0), NodeId(1), NodeId(2)];

    let mut concurrent = cyclic_builder().build().unwrap();
    let reports = concurrent.run_updates(&roots);
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(r.outcome.quiescent, "{r:?}");
        assert!(r.all_closed, "session {} must close: {r:?}", r.session);
        assert!(r.errors.is_empty(), "{:?}", r.errors);
        assert!(r.session_messages > 0, "attribution must see {}", r.session);
    }

    let mut serial = cyclic_builder().build().unwrap();
    for &root in &roots {
        let r = serial.run_update_from(root);
        assert!(r.all_closed, "serial session at {root} must close");
    }

    assert!(
        concurrent.snapshot().equivalent(&serial.snapshot()),
        "interleaved != serial"
    );
    assert!(
        concurrent
            .snapshot()
            .equivalent(&concurrent.oracle().unwrap()),
        "interleaved != oracle"
    );
}

#[test]
fn interleaved_sessions_match_serial_and_oracle_rounds() {
    let roots = [NodeId(0), NodeId(3), NodeId(6)];
    let mut concurrent = ring_builder(UpdateMode::Rounds).build().unwrap();
    let reports = concurrent.run_updates(&roots);
    for r in &reports {
        assert!(r.all_closed, "{r:?}");
        assert!(r.rounds >= 1, "{r:?}");
    }
    let mut serial = ring_builder(UpdateMode::Rounds).build().unwrap();
    for &root in &roots {
        assert!(serial.run_update_from(root).all_closed);
    }
    assert!(concurrent.snapshot().equivalent(&serial.snapshot()));
    assert!(concurrent
        .snapshot()
        .equivalent(&concurrent.oracle().unwrap()));
}

/// Retirement: once every session certified its fix-point, no peer holds
/// any session entry — the table is empty in both modes, and the summary
/// (`done`) knows every session.
#[test]
fn session_tables_are_empty_after_fixpoint() {
    for mode in [UpdateMode::Eager, UpdateMode::Rounds] {
        let mut b = ring_builder(mode);
        b.config_mut().mode = mode;
        let mut sys = b.build().unwrap();
        let roots = [NodeId(0), NodeId(2), NodeId(4), NodeId(6)];
        let reports = sys.run_updates(&roots);
        assert!(reports.iter().all(|r| r.all_closed), "{mode:?}");
        for (id, p) in sys.peers() {
            assert_eq!(
                p.session_table_len(),
                0,
                "{mode:?}: peer {id} leaked session state"
            );
            assert_eq!(p.sessions_done(), roots.len(), "{mode:?}: peer {id}");
            assert!(p.stats().sessions_participated >= roots.len() as u64);
            assert!(p.stats().concurrent_peak >= 2, "{mode:?}: peer {id}");
        }
    }
}

/// Retirement survives churn: a crash mid-run wipes and re-creates session
/// state, the redrive supersedes the stranded epoch (eager) or resumes the
/// same session (rounds), and after closure the tables are empty again.
#[test]
fn session_tables_are_empty_after_churn_redrive() {
    for mode in [UpdateMode::Rounds, UpdateMode::Eager] {
        // Probe for the session length, to place the crash mid-session.
        let mut probe_b = ring_builder(mode);
        probe_b.config_mut().durability = true;
        let mut probe = probe_b.build().unwrap();
        let t = probe.run_update().outcome.virtual_time;

        let mut b = ring_builder(mode);
        b.config_mut().durability = true;
        b.config_mut().snapshot_every = 16;
        b.set_churn(p2pdb::net::ChurnPlan::none().with_crash(
            NodeId(3),
            SimTime(t.0 / 3),
            SimTime(t.0 / 3 + t.0 / 5),
        ));
        let mut sys = b.build().unwrap();
        let report = sys.run_update_resilient(8);
        assert!(report.all_closed, "{mode:?}: {report:?}");
        assert_eq!(sys.sum_stats().crashes, 1, "{mode:?}");
        assert_eq!(sys.sum_stats().recoveries, 1, "{mode:?}");
        for (id, p) in sys.peers() {
            assert_eq!(
                p.session_table_len(),
                0,
                "{mode:?}: peer {id} leaked session state after redrive"
            );
        }
        assert!(
            sys.snapshot().equivalent(&sys.oracle().unwrap()),
            "{mode:?}: churned concurrent run != oracle"
        );
    }
}

/// Transport-layer attribution: trace entries carry the session tag of the
/// message they record, both sessions appear, and the per-session counters
/// agree with the tagged trace.
#[test]
fn trace_and_counters_attribute_messages_to_sessions() {
    let mut b = cyclic_builder();
    b.config_mut().trace_capacity = 100_000;
    let mut sys = b.build().unwrap();
    let roots = [NodeId(0), NodeId(2)];
    let reports = sys.run_updates(&roots);
    assert!(reports.iter().all(|r| r.all_closed));

    let sids: Vec<SessionId> = reports.iter().map(|r| r.session).collect();
    assert_eq!(sids[0], SessionId::new(NodeId(0), 1));
    assert_eq!(sids[1], SessionId::new(NodeId(2), 2));

    // Every traced delivery of a session-tagged kind carries its session.
    let entries = sys.trace().entries();
    assert!(!sys.trace().overflowed(), "raise the capacity");
    for sid in &sids {
        let tagged = entries.iter().filter(|e| e.session == Some(*sid)).count() as u64;
        assert!(tagged > 0, "session {sid} missing from the trace");
        assert_eq!(
            tagged,
            sys.net_stats().session(*sid).messages,
            "trace and counters must agree for {sid}"
        );
    }
    // Attributed messages never exceed the total, and the gap is exactly
    // the session-less control/driver traffic.
    let attributed: u64 = sids
        .iter()
        .map(|s| sys.net_stats().session(*s).messages)
        .sum();
    assert!(attributed <= sys.net_stats().total_messages);
    let untagged = entries.iter().filter(|e| e.session.is_none()).count() as u64;
    assert_eq!(attributed + untagged, sys.net_stats().total_messages);
}

/// Two concurrent sessions on the **threaded** runtime (real parallelism,
/// nondeterministic interleavings) reach the simulator's fix-point modulo
/// null renaming — extends the existing threaded-vs-sim oracle pattern to
/// the multi-session control plane.
#[test]
fn threaded_concurrent_sessions_match_simulator() {
    let roots = [NodeId(0), NodeId(2)];
    let mut sim_sys = cyclic_builder().build().unwrap();
    let sim_reports = sim_sys.run_updates(&roots);
    assert!(sim_reports.iter().all(|r| r.all_closed));
    let sim_result = sim_sys.snapshot();

    for _ in 0..3 {
        let (threaded, stats, all_closed) = run_updates_threaded(cyclic_builder(), &roots).unwrap();
        assert!(all_closed, "threaded concurrent run must close everywhere");
        assert!(
            threaded.equivalent(&sim_result),
            "threaded concurrent fix-point differs from simulated one"
        );
        // Per-session attribution exists on the threaded runtime too.
        for (i, &root) in roots.iter().enumerate() {
            let sid = SessionId::new(root, (i + 1) as u64);
            assert!(stats.session(sid).messages > 0, "{sid} unattributed");
        }
    }
}

/// Scoped sessions interleave with global ones: a query-dependent session
/// rooted mid-cycle and a global flood session are injected into **one**
/// simulator run (under jitter, so their traffic genuinely interleaves),
/// and both close, retire, and land on the oracle.
#[test]
fn scoped_and_global_sessions_interleave() {
    use p2pdb::core::messages::ProtocolMsg;
    use p2pdb::core::peer::DbPeer;
    use p2pdb::net::{Simulator, UniformLatency};

    // A hand-rolled simulator: the public drivers run one launch to
    // quiescence, but this test needs both session kinds in flight at once.
    let oracle = cyclic_builder().build().unwrap().oracle().unwrap();
    let mut b = cyclic_builder();
    let peers = b.build_peers().unwrap();
    let mut sim: Simulator<ProtocolMsg, DbPeer> = Simulator::new(Box::new(UniformLatency::new(
        SimTime::from_micros(200),
        SimTime::from_micros(3_000),
        7,
    )));
    for (id, peer) in peers {
        sim.add_peer(id, peer);
    }
    let scoped = SessionId::new(NodeId(1), 1);
    let global = SessionId::new(NodeId(0), 2);
    sim.inject(
        NodeId(1),
        NodeId(1),
        ProtocolMsg::StartScopedUpdate { session: scoped },
    );
    sim.inject(
        NodeId(0),
        NodeId(0),
        ProtocolMsg::StartUpdate { session: global },
    );
    let outcome = sim.run();
    assert!(outcome.quiescent);
    for (id, p) in sim.peers() {
        assert!(p.session_closed(global), "global unclosed at {id}");
        assert_eq!(p.session_table_len(), 0, "leak at {id}");
        assert!(p.errors().is_empty(), "{:?}", p.errors());
    }
    assert!(
        sim.peer(NodeId(1)).unwrap().session_closed(scoped),
        "scoped root must close its own session"
    );
    // Both sessions moved attributed traffic.
    assert!(sim.stats().session(scoped).messages > 0);
    assert!(sim.stats().session(global).messages > 0);
    let snapshot = p2pdb::core::oracle::GlobalDb(
        sim.peers()
            .map(|(id, p)| (*id, p.database().clone()))
            .collect(),
    );
    assert!(snapshot.equivalent(&oracle));
}

// ---------------------------------------------------------------------------
// Property: interleaved == serial == oracle over random topologies, root
// sets and interleaving seeds.
// ---------------------------------------------------------------------------

fn proptest_topology(idx: u8, n: u8) -> Topology {
    let n = 3 + (n % 4) as u32; // 3..=6 nodes
    match idx % 3 {
        0 => Topology::Ring { n },
        1 => Topology::Chain { n },
        _ => Topology::Clique { n: n.min(4) },
    }
}

fn builder_for(topology: Topology, mode: UpdateMode, seed: u64) -> P2PSystemBuilder {
    let mut b = build_system(&WorkloadConfig {
        topology,
        records_per_node: 6,
        distribution: Distribution::Disjoint,
        seed: 11,
    })
    .unwrap();
    b.config_mut().mode = mode;
    b.config_mut().max_events = 50_000_000;
    // The interleaving knob: seeded jitter reorders deliveries across
    // sessions, so every seed is a different interleaving of the same
    // sessions.
    b.set_latency(LatencySpec::Uniform {
        min: SimTime::from_micros(100),
        max: SimTime::from_micros(4_000),
        seed,
    });
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's correctness anchor, property-tested: for random
    /// topologies, random root sets and random interleaving seeds, the
    /// interleaved run's final global database equals the serial execution
    /// of the same sessions and the fix-point oracle (modulo null
    /// renaming), with no session state left behind.
    #[test]
    fn interleaved_equals_serial_equals_oracle(
        topo_idx in 0u8..3,
        size in 0u8..4,
        root_picks in proptest::collection::vec(0u8..8, 1..4),
        seed in 0u64..1000,
        mode_pick in 0u8..2,
    ) {
        let topology = proptest_topology(topo_idx, size);
        let mode = if mode_pick == 0 { UpdateMode::Eager } else { UpdateMode::Rounds };
        let n = topology.generate().node_count as u32;
        // Distinct roots (same-root sessions supersede by design).
        let mut roots: Vec<NodeId> = root_picks
            .iter()
            .map(|r| NodeId(*r as u32 % n))
            .collect();
        roots.sort();
        roots.dedup();

        let mut concurrent = builder_for(topology, mode, seed).build().unwrap();
        let reports = concurrent.run_updates(&roots);
        for r in &reports {
            prop_assert!(r.outcome.quiescent);
            prop_assert!(r.all_closed, "session {} unclosed", r.session);
            prop_assert!(r.errors.is_empty(), "{:?}", r.errors);
        }

        let mut serial = builder_for(topology, mode, seed.wrapping_add(1)).build().unwrap();
        for &root in &roots {
            prop_assert!(serial.run_update_from(root).all_closed);
        }

        prop_assert!(
            concurrent.snapshot().equivalent(&serial.snapshot()),
            "interleaved != serial on {topology} roots {roots:?} seed {seed} ({mode:?})"
        );
        prop_assert!(
            concurrent.snapshot().equivalent(&concurrent.oracle().unwrap()),
            "interleaved != oracle on {topology} roots {roots:?} seed {seed} ({mode:?})"
        );
        for (id, p) in concurrent.peers() {
            prop_assert_eq!(p.session_table_len(), 0, "leak at {}", id);
        }
    }
}
