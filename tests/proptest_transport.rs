//! Property tests for the TCP wire layer: a stream of random protocol
//! messages, framed with the u32 length prefix and encoded under **either**
//! codec, must survive arbitrary read-chunk boundaries — the receiver sees
//! the byte stream diced into random pieces (as TCP is free to do) and must
//! still recover every message exactly. Truncating the stream anywhere that
//! is not a frame boundary must yield a typed `UnexpectedEof`, never a
//! partial message.

use p2pdb::core::messages::{AnswerRows, ProtocolMsg};
use p2pdb::core::rule::RuleId;
use p2pdb::core::socket::ProtoCodec;
use p2pdb::net::{Codec, SessionId};
use p2pdb::relational::value::NullId;
use p2pdb::relational::{SymId, Tuple, Val};
use p2pdb::topology::NodeId;
use p2pdb::transport::{read_frame, write_frame, FrameCodec, TransportError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;
use std::io::Read;
use std::sync::Arc;

/// A reader that hands out the underlying bytes in caller-chosen chunk
/// sizes, cycling through `plan` — the adversarial version of TCP's
/// freedom to split a stream anywhere.
struct Dribble {
    data: Vec<u8>,
    pos: usize,
    plan: Vec<usize>,
    next: usize,
}

impl Read for Dribble {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let want = self.plan[self.next % self.plan.len()].max(1);
        self.next += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn val() -> impl Strategy<Value = Val> {
    (
        0u8..3,
        any::<i64>(),
        any::<u32>(),
        0u32..9000,
        0u64..100_000,
    )
        .prop_map(|(kind, i, sym, node, counter)| match kind {
            0 => Val::Int(i),
            1 => Val::Sym(SymId(sym)),
            _ => Val::Null(NullId::new(node, counter)),
        })
}

fn answer_rows() -> impl Strategy<Value = AnswerRows> {
    (1usize..4, 0usize..8).prop_flat_map(|(arity, nrows)| {
        proptest::collection::vec(val(), arity * nrows..arity * nrows + 1).prop_map(move |flat| {
            AnswerRows {
                vars: (0..arity)
                    .map(|i| Arc::<str>::from(format!("X{i}")))
                    .collect(),
                rows: flat.chunks(arity).map(|c| Tuple::new(c.to_vec())).collect(),
                null_depths: vec![],
                marks: Default::default(),
                dict: vec![],
            }
        })
    })
}

fn session() -> impl Strategy<Value = SessionId> {
    (0u32..9000, 0u64..100_000).prop_map(|(root, epoch)| SessionId::new(NodeId(root), epoch))
}

/// A spread over the message variants the socket runtime actually ships:
/// the row-carrying hot path plus the session-scalar control messages.
fn msg() -> impl Strategy<Value = ProtocolMsg> {
    (
        (0u8..6, session(), any::<u32>(), 0u32..10_000),
        answer_rows(),
    )
        .prop_map(|((kind, session, rule, round), rows)| {
            let rule = RuleId(rule);
            match kind {
                0 => ProtocolMsg::StartUpdate { session },
                1 => ProtocolMsg::Answer {
                    session,
                    rule,
                    rows,
                    complete: round % 2 == 0,
                    reopen: round % 3 == 0,
                },
                2 => ProtocolMsg::WaveAnswerDelta {
                    session,
                    round,
                    rule,
                    rows,
                },
                3 => ProtocolMsg::Fixpoint {
                    session,
                    generation: round,
                },
                4 => ProtocolMsg::Ack { session },
                _ => ProtocolMsg::Unsubscribe { session, rule },
            }
        })
}

fn both_codecs() -> impl Strategy<Value = Codec> {
    any::<bool>().prop_map(|b| if b { Codec::Binary } else { Codec::Json })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frame a random message stream, dice the bytes into random read
    /// chunks, and recover every message exactly — under both codecs.
    #[test]
    fn framed_stream_survives_arbitrary_chunking(
        msgs in proptest::collection::vec(msg(), 1..8),
        codec in both_codecs(),
        plan in proptest::collection::vec(1usize..64, 1..10),
    ) {
        let pc = ProtoCodec(codec);
        let mut wire = Vec::new();
        for m in &msgs {
            write_frame(&mut wire, &pc.encode(m)).unwrap();
        }
        let mut reader = Dribble { data: wire, pos: 0, plan, next: 0 };
        let mut got = Vec::new();
        while let Some(payload) = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap() {
            got.push(pc.decode(&payload).unwrap());
        }
        // `ProtocolMsg` has no `PartialEq`; byte-identical re-encoding is
        // the same equality the codec differential tests use.
        prop_assert_eq!(got.len(), msgs.len());
        for (g, m) in got.iter().zip(&msgs) {
            prop_assert_eq!(pc.encode(g), pc.encode(m));
        }
    }

    /// Cutting the stream anywhere that is not a frame boundary is a typed
    /// mid-frame EOF; cutting exactly at a boundary is a clean end.
    #[test]
    fn truncation_is_typed_eof(
        msgs in proptest::collection::vec(msg(), 1..5),
        codec in both_codecs(),
        cut_seed in any::<u64>(),
    ) {
        let pc = ProtoCodec(codec);
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for m in &msgs {
            write_frame(&mut wire, &pc.encode(m)).unwrap();
            boundaries.push(wire.len());
        }
        let cut = (cut_seed as usize) % (wire.len() + 1);
        wire.truncate(cut);
        let mut reader = Dribble { data: wire, pos: 0, plan: vec![7], next: 0 };
        let at_boundary = boundaries.contains(&cut);
        loop {
            match read_frame(&mut reader, DEFAULT_MAX_FRAME) {
                Ok(Some(payload)) => {
                    // Full frames before the cut still decode.
                    prop_assert!(pc.decode(&payload).is_ok());
                }
                Ok(None) => {
                    prop_assert!(at_boundary, "clean EOF despite mid-frame cut at {cut}");
                    break;
                }
                Err(TransportError::UnexpectedEof { got, needed }) => {
                    prop_assert!(!at_boundary, "mid-frame EOF at a boundary cut {cut}");
                    prop_assert!(got < needed);
                    break;
                }
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            }
        }
    }
}
