//! Delta-driven wave answers: correctness (tuple-identical to the full
//! re-ship baseline *and* the global oracle), traffic savings (≥3× fewer
//! rows shipped on a cyclic topology), stale-round accounting, and
//! property-based checks of the delta layer itself.

use p2pdb::core::config::UpdateMode;
use p2pdb::core::joins::{eval_part, eval_part_delta};
use p2pdb::core::messages::ProtocolMsg;
use p2pdb::core::peer::DbPeer;
use p2pdb::core::rule::CoordinationRule;
use p2pdb::core::stats::PeerStats;
use p2pdb::core::system::{P2PSystem, P2PSystemBuilder};
use p2pdb::net::{SimTime, Simulator, UniformLatency};
use p2pdb::relational::{Database, DatabaseSchema, Tuple, Val};
use p2pdb::topology::{NodeId, Topology};
use p2pdb::workload::{build_system, Distribution, WorkloadConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashSet};

/// The paper's running example (Section 2): a 5-node network with the
/// B↔C dependency cycle that needs several rounds to close.
fn paper_builder(delta_waves: bool) -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int). f(x: int).")
        .unwrap();
    b.add_node_with_schema(3, "d(x: int, y: int).").unwrap();
    b.add_node_with_schema(4, "e(x: int, y: int).").unwrap();
    b.add_rule("r1", "E:e(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("r2", "B:b(X,Y), B:b(Y,Z) => C:c(X,Z)").unwrap();
    b.add_rule("r3", "C:c(X,Y), C:c(Y,Z) => B:b(X,Z)").unwrap();
    b.add_rule("r4", "B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)")
        .unwrap();
    for (x, y) in [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)] {
        b.insert(4, "e", vec![Val::Int(x), Val::Int(y)]).unwrap();
    }
    b.config_mut().mode = UpdateMode::Rounds;
    b.config_mut().delta_waves = delta_waves;
    b
}

/// Exact tuple-level snapshot of every database (not just equivalence
/// modulo nulls — the paper example mints no nulls).
fn exact_facts(sys: &P2PSystem) -> Vec<(NodeId, Vec<(String, Tuple)>)> {
    sys.peers()
        .map(|(id, p)| {
            (
                *id,
                p.database()
                    .all_facts()
                    .into_iter()
                    .map(|(n, t)| (n.to_string(), t))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn paper_example_delta_rounds_identical_to_full_reship_and_oracle() {
    let mut delta = paper_builder(true).build().unwrap();
    let mut full = paper_builder(false).build().unwrap();
    let dr = delta.run_update();
    let fr = full.run_update();
    assert!(dr.all_closed && fr.all_closed);
    assert!(dr.errors.is_empty(), "{:?}", dr.errors);
    assert!(dr.rounds >= 2, "cyclic example needs several rounds");
    assert_eq!(dr.rounds, fr.rounds, "delta must not change convergence");

    // Tuple-identical to the full-reship baseline and to the oracle.
    assert_eq!(exact_facts(&delta), exact_facts(&full));
    assert!(delta.snapshot().equivalent(&delta.oracle().unwrap()));

    // The delta machinery actually engaged and saved traffic.
    let ds = delta.sum_stats();
    let fs = full.sum_stats();
    assert!(ds.delta_answers_sent > 0, "{ds}");
    assert!(ds.rows_saved > 0, "{ds}");
    assert!(
        ds.rows_shipped < fs.rows_shipped,
        "delta {} vs full {}",
        ds.rows_shipped,
        fs.rows_shipped
    );
    assert_eq!(fs.delta_answers_sent, 0, "baseline must not ship deltas");
}

fn run_ring(delta_waves: bool) -> (P2PSystem, PeerStats) {
    let cfg = WorkloadConfig {
        topology: Topology::Ring { n: 8 },
        records_per_node: 20,
        distribution: Distribution::Disjoint,
        seed: 7,
    };
    let mut b = build_system(&cfg).unwrap();
    b.config_mut().mode = UpdateMode::Rounds;
    b.config_mut().delta_waves = delta_waves;
    b.config_mut().max_events = 50_000_000;
    let mut sys = b.build().unwrap();
    let report = sys.run_update();
    assert!(report.outcome.quiescent && report.all_closed);
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(report.rounds >= 3, "a ring needs several rounds");
    let stats = sys.sum_stats();
    (sys, stats)
}

#[test]
fn cyclic_ring_delta_ships_at_least_3x_fewer_rows() {
    let (delta_sys, ds) = run_ring(true);
    let (full_sys, fs) = run_ring(false);
    // Same fix-point as the baseline and the oracle.
    assert!(delta_sys.snapshot().equivalent(&full_sys.snapshot()));
    assert!(delta_sys
        .snapshot()
        .equivalent(&delta_sys.oracle().unwrap()));
    // ≥3× fewer rows over the wire (the acceptance bar; in practice much
    // more — full re-ship grows quadratically with rounds).
    assert!(
        ds.rows_shipped * 3 <= fs.rows_shipped,
        "delta shipped {} rows, full shipped {} — ratio {:.2}",
        ds.rows_shipped,
        fs.rows_shipped,
        fs.rows_shipped as f64 / ds.rows_shipped.max(1) as f64
    );
    assert!(ds.rows_saved > 0);
}

/// Regression: a wave query for an already-finished round is answered with
/// an **empty** acknowledgement counted under `stale_answers_sent`, not
/// with the full current extension counted as useful traffic. The lagging
/// peer is simulated by injecting its round-1 query after the session
/// closed under a jittery latency model.
#[test]
fn stale_wave_query_ships_empty_ack_not_full_extension() {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("rab", "B:b(X,Y) => A:a(X,Y)").unwrap();
    b.add_rule("rbc", "C:c(X,Y) => B:b(X,Y)").unwrap();
    b.add_rule("rca", "A:a(X,Y) => C:c(Y,X)").unwrap();
    for i in 0..10i64 {
        b.insert(2, "c", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
    }
    b.config_mut().mode = UpdateMode::Rounds;
    let peers = b.build_peers().unwrap();

    // A hand-rolled simulator so a stale query can be injected: uniform
    // jitter stands in for the slow links that make peers lag.
    let mut sim: Simulator<ProtocolMsg, DbPeer> = Simulator::new(Box::new(UniformLatency::new(
        SimTime::from_micros(200),
        SimTime::from_micros(5_000),
        13,
    )));
    for (id, peer) in peers {
        sim.add_peer(id, peer);
    }
    let sid = p2pdb::net::SessionId::new(NodeId(0), 1);
    sim.inject(
        NodeId(0),
        NodeId(0),
        ProtocolMsg::StartUpdate { session: sid },
    );
    let outcome = sim.run();
    assert!(outcome.quiescent);
    let final_round = sim.peer(NodeId(0)).unwrap().stats().rounds;
    assert!(final_round >= 2, "cycle needs several rounds");

    let before = sim.peer(NodeId(2)).unwrap().stats().clone();
    let b_received_before = sim.peer(NodeId(1)).unwrap().stats().answers_received;
    assert_eq!(before.stale_answers_sent, 0);

    // The lagging peer B re-asks C for round 1, long finished.
    let resolve = |s: &str| match s {
        "B" => Some(NodeId(1)),
        "C" => Some(NodeId(2)),
        _ => None,
    };
    let rule = CoordinationRule::parse("lag", "C:c(X,Y) => B:b(X,Y)", None, &resolve).unwrap();
    sim.inject(
        NodeId(1),
        NodeId(2),
        ProtocolMsg::WaveQuery {
            session: sid,
            round: 1,
            rule: rule.id,
            part: rule.parts[0].clone(),
        },
    );
    sim.run();

    let after = sim.peer(NodeId(2)).unwrap().stats().clone();
    assert_eq!(after.stale_answers_sent, 1, "stale ack counted separately");
    assert_eq!(
        after.answers_sent, before.answers_sent,
        "stale ack must not count as a useful answer"
    );
    assert_eq!(
        after.rows_shipped, before.rows_shipped,
        "stale ack must ship zero rows"
    );
    // The requester received the ack and dropped it without corrupting its
    // closed state.
    let b_peer = sim.peer(NodeId(1)).unwrap();
    assert!(b_peer.update_closed());
    assert_eq!(b_peer.stats().answers_received, b_received_before + 1);
}

// ---------------------------------------------------------------------------
// Property-based checks of the delta layer
// ---------------------------------------------------------------------------

fn part_rule() -> CoordinationRule {
    let resolve = |s: &str| match s {
        "A" => Some(NodeId(0)),
        "B" => Some(NodeId(1)),
        _ => None,
    };
    CoordinationRule::parse("r", "B:b(X,Y), B:b(Y,Z) => A:a(X,Z)", None, &resolve).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary insert interleavings, the union of all shipped deltas
    /// (each taken against the previous answer's watermarks) equals a fresh
    /// full evaluation of the fragment — the invariant that makes
    /// `WaveAnswerDelta` sound.
    #[test]
    fn deltas_union_to_full_eval(batches in proptest::collection::vec(
        proptest::collection::vec((0..6i64, 0..6i64), 0..8), 1..6)) {
        let rule = part_rule();
        let part = &rule.parts[0];
        let mut db = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        let mut watermarks = BTreeMap::new();
        let mut cached: HashSet<Tuple> = HashSet::new();
        for batch in batches {
            for (x, y) in batch {
                db.insert_values("b", vec![Val::Int(x), Val::Int(y)]).unwrap();
            }
            let delta = eval_part_delta(part, &db, &watermarks).unwrap();
            watermarks = db.watermarks();
            // Every delta row is part of the full evaluation …
            let full: HashSet<Tuple> = eval_part(part, &db).unwrap().into_iter().collect();
            for t in &delta {
                prop_assert!(full.contains(t), "delta row {t} not in full eval");
            }
            cached.extend(delta);
            // … and (cached rows ∪ shipped deltas) IS the full evaluation.
            prop_assert_eq!(&cached, &full);
        }
    }

    /// `watermarks` / `facts_since` survive `Database` clones and
    /// serialize/deserialize snapshots: the delta base is portable state.
    #[test]
    fn watermarks_roundtrip_across_clones_and_snapshots(
        first in proptest::collection::vec((0..6i64, 0..6i64), 0..10),
        second in proptest::collection::vec((0..6i64, 0..6i64), 0..10)) {
        let mut db = Database::new(
            DatabaseSchema::parse("a(x: int). b(x: int, y: int).").unwrap());
        for (x, y) in &first {
            db.insert_values("b", vec![Val::Int(*x), Val::Int(*y)]).unwrap();
            db.insert_values("a", vec![Val::Int(*x)]).unwrap();
        }
        let w = db.watermarks();

        let mut cloned = db.clone();
        let json = serde_json::to_string(&db).unwrap();
        let mut restored: Database = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(restored.watermarks(), w.clone());
        prop_assert_eq!(cloned.watermarks(), w.clone());

        // Inserting the same facts into all three yields the same deltas.
        for (x, y) in &second {
            for d in [&mut db, &mut cloned, &mut restored] {
                d.insert_values("b", vec![Val::Int(*x), Val::Int(*y)]).unwrap();
            }
        }
        prop_assert_eq!(db.facts_since(&w), cloned.facts_since(&w));
        prop_assert_eq!(db.facts_since(&w), restored.facts_since(&w));
        // And the current watermarks still describe "nothing new".
        prop_assert!(db.facts_since(&db.watermarks()).is_empty());
    }
}
