//! Property-based equivalence of the compiled-plan + persistent-index
//! evaluator against the legacy per-call evaluator: full evaluation,
//! semi-naive deltas, and index maintenance under interleaved inserts.

use p2p_relational::query::ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
use p2p_relational::query::{
    evaluate_bindings, evaluate_bindings_planned, evaluate_bindings_since,
    evaluate_bindings_since_planned, Bindings, CompiledBody, EvalMetrics,
};
use p2p_relational::{Database, DatabaseSchema, Val};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// A random instance: two binary relations over a small integer domain.
#[derive(Debug, Clone)]
struct Instance {
    r: Vec<(i64, i64)>,
    s: Vec<(i64, i64)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0..5i64, 0..5i64), 0..12),
        proptest::collection::vec((0..5i64, 0..5i64), 0..12),
    )
        .prop_map(|(r, s)| Instance { r, s })
}

fn db_of(inst: &Instance) -> Database {
    let mut db =
        Database::new(DatabaseSchema::parse("r(x: int, y: int). s(x: int, y: int).").unwrap());
    for &(x, y) in &inst.r {
        db.insert_values("r", vec![Val::Int(x), Val::Int(y)])
            .unwrap();
    }
    for &(x, y) in &inst.s {
        db.insert_values("s", vec![Val::Int(x), Val::Int(y)])
            .unwrap();
    }
    db
}

/// A random body over variables X0..X3: 1–3 atoms over r/s, optional
/// constraint restricted to bound variables (mirrors proptest_relational.rs).
#[derive(Debug, Clone)]
struct RandomQuery {
    atoms: Vec<(bool, usize, usize)>,
    constraint: Option<(usize, u8, usize)>,
}

fn random_query() -> impl Strategy<Value = RandomQuery> {
    (
        proptest::collection::vec((any::<bool>(), 0..4usize, 0..4usize), 1..4),
        proptest::option::of((0..4usize, 0..6u8, 0..4usize)),
    )
        .prop_map(|(atoms, constraint)| {
            let bound: Vec<usize> = atoms.iter().flat_map(|(_, a, b)| [*a, *b]).collect();
            let constraint = constraint.filter(|(a, _, b)| bound.contains(a) && bound.contains(b));
            RandomQuery { atoms, constraint }
        })
}

fn var(i: usize) -> Term {
    Term::var(format!("X{i}"))
}

fn to_cq(q: &RandomQuery) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = q
        .atoms
        .iter()
        .map(|(use_r, a, b)| Atom::new(if *use_r { "r" } else { "s" }, vec![var(*a), var(*b)]))
        .collect();
    let constraints: Vec<Constraint> = q
        .constraint
        .iter()
        .map(|(a, op, b)| Constraint {
            lhs: var(*a),
            op: match op {
                0 => CmpOp::Eq,
                1 => CmpOp::Neq,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            },
            rhs: var(*b),
        })
        .collect();
    ConjunctiveQuery {
        name: Arc::from("q"),
        head: Vec::new(),
        atoms,
        constraints,
    }
}

fn row_set(b: &Bindings) -> HashSet<Vec<Val>> {
    b.rows().map(<[Val]>::to_vec).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Full evaluation: planned (indexed and rebuild paths) equals legacy.
    #[test]
    fn planned_matches_legacy(inst in instance(), q in random_query()) {
        let mut db = db_of(&inst);
        let cq = to_cq(&q);
        let legacy = evaluate_bindings(&cq.atoms, &cq.constraints, &db).unwrap();
        let body = CompiledBody::compile(&cq.atoms, &cq.constraints, &db).unwrap();
        for use_indexes in [false, true] {
            let mut m = EvalMetrics::default();
            let planned =
                evaluate_bindings_planned(&body.full, &mut db, use_indexes, &mut m).unwrap();
            prop_assert_eq!(&planned.vars, &legacy.vars);
            prop_assert_eq!(row_set(&planned), row_set(&legacy));
        }
    }

    /// Interleaved inserts: a plan compiled once stays correct while the
    /// database grows underneath it (persistent-index maintenance), for both
    /// the full and the semi-naive delta entry points.
    #[test]
    fn plan_survives_interleaved_inserts(
        inst in instance(),
        q in random_query(),
        extra in proptest::collection::vec((any::<bool>(), 0..5i64, 0..5i64), 1..8),
    ) {
        let mut db = db_of(&inst);
        let cq = to_cq(&q);
        let body = CompiledBody::compile(&cq.atoms, &cq.constraints, &db).unwrap();
        // Warm the persistent indexes before any insert happens.
        let mut m = EvalMetrics::default();
        evaluate_bindings_planned(&body.full, &mut db, true, &mut m).unwrap();
        let mut w = db.watermarks();
        for (use_r, x, y) in extra {
            let rel = if use_r { "r" } else { "s" };
            db.insert_values(rel, vec![Val::Int(x), Val::Int(y)]).unwrap();

            let legacy_full = evaluate_bindings(&cq.atoms, &cq.constraints, &db).unwrap();
            let mut m = EvalMetrics::default();
            let planned_full =
                evaluate_bindings_planned(&body.full, &mut db, true, &mut m).unwrap();
            prop_assert_eq!(row_set(&planned_full), row_set(&legacy_full));

            let legacy_delta =
                evaluate_bindings_since(&cq.atoms, &cq.constraints, &db, &w).unwrap();
            let mut m = EvalMetrics::default();
            let planned_delta =
                evaluate_bindings_since_planned(&body, &mut db, &w, true, &mut m).unwrap();
            prop_assert_eq!(row_set(&planned_delta), row_set(&legacy_delta));

            w = db.watermarks();
        }
    }
}
