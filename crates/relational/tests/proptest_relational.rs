//! Property-based tests of the relational engine: the hash-join evaluator
//! against a brute-force model, chase idempotence, and homomorphism laws.

use p2p_relational::chase::{apply_rule_local, ChaseConfig, ChaseState};
use p2p_relational::hom::{contained_modulo_nulls, equivalent_modulo_nulls};
use p2p_relational::query::ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
use p2p_relational::query::evaluate;
use p2p_relational::{Database, DatabaseSchema, NullFactory, Tuple, Val};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A random instance: two binary relations over a small integer domain.
#[derive(Debug, Clone)]
struct Instance {
    r: Vec<(i64, i64)>,
    s: Vec<(i64, i64)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0..5i64, 0..5i64), 0..12),
        proptest::collection::vec((0..5i64, 0..5i64), 0..12),
    )
        .prop_map(|(r, s)| Instance { r, s })
}

fn db_of(inst: &Instance) -> Database {
    let mut db =
        Database::new(DatabaseSchema::parse("r(x: int, y: int). s(x: int, y: int).").unwrap());
    for &(x, y) in &inst.r {
        db.insert_values("r", vec![Val::Int(x), Val::Int(y)])
            .unwrap();
    }
    for &(x, y) in &inst.s {
        db.insert_values("s", vec![Val::Int(x), Val::Int(y)])
            .unwrap();
    }
    db
}

/// A random conjunctive query over variables X0..X3: 1–3 atoms over r/s with
/// random variable choices, plus an optional constraint.
#[derive(Debug, Clone)]
struct RandomQuery {
    atoms: Vec<(bool, usize, usize)>, // (use r?, var index, var index)
    constraint: Option<(usize, u8, usize)>,
    head: Vec<usize>,
}

fn random_query() -> impl Strategy<Value = RandomQuery> {
    (
        proptest::collection::vec((any::<bool>(), 0..4usize, 0..4usize), 1..4),
        proptest::option::of((0..4usize, 0..6u8, 0..4usize)),
    )
        .prop_map(|(atoms, constraint)| {
            // Head = all variables appearing in atoms (keeps queries safe).
            let mut head = Vec::new();
            for (_, a, b) in &atoms {
                for v in [a, b] {
                    if !head.contains(v) {
                        head.push(*v);
                    }
                }
            }
            // Constraints restricted to bound variables.
            let constraint = constraint.filter(|(a, _, b)| head.contains(a) && head.contains(b));
            RandomQuery {
                atoms,
                constraint,
                head,
            }
        })
}

fn var(i: usize) -> Term {
    Term::var(format!("X{i}"))
}

fn to_cq(q: &RandomQuery) -> ConjunctiveQuery {
    let atoms = q
        .atoms
        .iter()
        .map(|(use_r, a, b)| Atom::new(if *use_r { "r" } else { "s" }, vec![var(*a), var(*b)]))
        .collect();
    let constraints = q
        .constraint
        .iter()
        .map(|(a, op, b)| Constraint {
            lhs: var(*a),
            op: match op {
                0 => CmpOp::Eq,
                1 => CmpOp::Neq,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            },
            rhs: var(*b),
        })
        .collect();
    ConjunctiveQuery {
        name: Arc::from("q"),
        head: q.head.iter().map(|v| var(*v)).collect(),
        atoms,
        constraints,
    }
}

/// Brute force: enumerate every assignment of the head variables over the
/// active domain and test all atoms/constraints.
fn brute_force(q: &RandomQuery, inst: &Instance) -> Vec<Tuple> {
    let domain: Vec<i64> = (0..5).collect();
    let vars: Vec<usize> = q.head.clone();
    let mut out = Vec::new();
    let mut assignment: HashMap<usize, i64> = HashMap::new();
    enumerate(q, inst, &domain, &vars, 0, &mut assignment, &mut out);
    out.sort();
    out.dedup();
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    q: &RandomQuery,
    inst: &Instance,
    domain: &[i64],
    vars: &[usize],
    idx: usize,
    assignment: &mut HashMap<usize, i64>,
    out: &mut Vec<Tuple>,
) {
    if idx == vars.len() {
        let sat_atoms = q.atoms.iter().all(|(use_r, a, b)| {
            let rel = if *use_r { &inst.r } else { &inst.s };
            rel.contains(&(assignment[a], assignment[b]))
        });
        let sat_con = q.constraint.is_none_or(|(a, op, b)| {
            let (x, y) = (assignment[&a], assignment[&b]);
            match op {
                0 => x == y,
                1 => x != y,
                2 => x < y,
                3 => x <= y,
                4 => x > y,
                _ => x >= y,
            }
        });
        if sat_atoms && sat_con {
            out.push(Tuple::new(
                q.head.iter().map(|v| Val::Int(assignment[v])).collect(),
            ));
        }
        return;
    }
    for &val in domain {
        assignment.insert(vars[idx], val);
        enumerate(q, inst, domain, vars, idx + 1, assignment, out);
    }
    assignment.remove(&vars[idx]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The generic-join evaluator agrees with brute-force enumeration.
    #[test]
    fn evaluator_matches_brute_force(inst in instance(), q in random_query()) {
        let db = db_of(&inst);
        let cq = to_cq(&q);
        let mut fast = evaluate(&cq, &db).unwrap();
        fast.sort();
        let slow = brute_force(&q, &inst);
        prop_assert_eq!(fast, slow);
    }

    /// Chasing a copy rule twice inserts nothing the second time.
    #[test]
    fn chase_is_idempotent(inst in instance()) {
        let mut db = Database::new(
            DatabaseSchema::parse("r(x: int, y: int). s(x: int, y: int).").unwrap(),
        );
        for &(x, y) in &inst.r {
            db.insert_values("r", vec![Val::Int(x), Val::Int(y)]).unwrap();
        }
        let body = vec![Atom::new("r", vec![var(0), var(1)])];
        let head = vec![Atom::new("s", vec![var(0), var(1)])];
        let mut nulls = NullFactory::new(1);
        let mut st = ChaseState::new();
        let cfg = ChaseConfig::default();
        let first =
            apply_rule_local(&mut db, &body, &[], &head, &mut nulls, &mut st, &cfg).unwrap();
        let again =
            apply_rule_local(&mut db, &body, &[], &head, &mut nulls, &mut st, &cfg).unwrap();
        prop_assert_eq!(first.inserted.len(), {
            let mut d: Vec<_> = inst.r.clone();
            d.sort();
            d.dedup();
            d.len()
        });
        prop_assert!(again.is_empty());
    }

    /// Homomorphism laws: reflexivity, and monotonicity under insertion.
    #[test]
    fn hom_reflexive_and_monotone(inst in instance(), extra in (0..5i64, 0..5i64)) {
        let db = db_of(&inst);
        prop_assert!(equivalent_modulo_nulls(&db, &db));
        let mut bigger = db.clone();
        bigger
            .insert_values("r", vec![Val::Int(extra.0), Val::Int(extra.1)])
            .unwrap();
        prop_assert!(contained_modulo_nulls(&db, &bigger));
    }

    /// Existential chase invents at most one null per distinct frontier
    /// binding, and re-chasing invents none.
    #[test]
    fn existential_invention_is_bounded(inst in instance()) {
        let mut db = db_of(&inst);
        // r(X,Y) => s(X,Z): one invention per distinct X.
        let body = vec![Atom::new("r", vec![var(0), var(1)])];
        let head = vec![Atom::new("s", vec![var(0), Term::var("Z")])];
        let mut nulls = NullFactory::new(1);
        let mut st = ChaseState::new();
        let cfg = ChaseConfig::default();
        let distinct_x: std::collections::BTreeSet<i64> =
            inst.r.iter().map(|(x, _)| *x).collect();
        // s may already contain tuples satisfying some X.
        let satisfied_x: std::collections::BTreeSet<i64> =
            inst.s.iter().map(|(x, _)| *x).collect();
        let expected = distinct_x.difference(&satisfied_x).count();
        let out =
            apply_rule_local(&mut db, &body, &[], &head, &mut nulls, &mut st, &cfg).unwrap();
        prop_assert_eq!(out.nulls_minted, expected);
        let again =
            apply_rule_local(&mut db, &body, &[], &head, &mut nulls, &mut st, &cfg).unwrap();
        prop_assert!(again.is_empty());
    }
}
