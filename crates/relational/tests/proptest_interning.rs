//! Property-based equivalence of the two data planes: random databases
//! (integers, strings, labeled nulls) and random conjunctive queries must
//! evaluate identically under the legacy `Value` path and the interned
//! `Val`/columnar path, and the catalog machinery must round-trip.

use p2p_relational::legacy::{evaluate_legacy, resolve_tuples, LegacyDatabase};
use p2p_relational::query::ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
use p2p_relational::query::evaluate;
use p2p_relational::value::NullId;
use p2p_relational::{ConstCatalog, Database, DatabaseSchema, Relation, Val};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// A value pick over a small mixed domain: integers, a pool of strings
/// (shared across the instance so joins actually hit), and a few nulls.
fn val_of(pick: u8) -> Val {
    match pick % 10 {
        0..=3 => Val::Int((pick % 5) as i64),
        4..=7 => Val::str(format!("const-{}", pick % 4)),
        _ => Val::Null(NullId::new(3, (pick % 3) as u64)),
    }
}

#[derive(Debug, Clone)]
struct Instance {
    r: Vec<(u8, u8)>,
    s: Vec<(u8, u8)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0..30u8, 0..30u8), 0..14),
        proptest::collection::vec((0..30u8, 0..30u8), 0..14),
    )
        .prop_map(|(r, s)| Instance { r, s })
}

fn db_of(inst: &Instance) -> Database {
    // Mixed-type columns are modelled as two str columns (nulls and the
    // schema checker admit anything string-shaped via `Val::str`; integers
    // are encoded as distinct interned strings to keep columns typed).
    let mut db =
        Database::new(DatabaseSchema::parse("r(x: str, y: str). s(x: str, y: str).").unwrap());
    let norm = |p: u8| match val_of(p) {
        Val::Int(i) => Val::str(format!("int-{i}")),
        other => other,
    };
    for &(x, y) in &inst.r {
        db.insert_values("r", vec![norm(x), norm(y)]).unwrap();
    }
    for &(x, y) in &inst.s {
        db.insert_values("s", vec![norm(x), norm(y)]).unwrap();
    }
    db
}

#[derive(Debug, Clone)]
struct RandomQuery {
    atoms: Vec<(bool, usize, usize)>,
    constraint: Option<(usize, u8, usize)>,
    head: Vec<usize>,
}

fn random_query() -> impl Strategy<Value = RandomQuery> {
    (
        proptest::collection::vec((any::<bool>(), 0..4usize, 0..4usize), 1..4),
        proptest::option::of((0..4usize, 0..6u8, 0..4usize)),
    )
        .prop_map(|(atoms, constraint)| {
            let mut head = Vec::new();
            for (_, a, b) in &atoms {
                for v in [a, b] {
                    if !head.contains(v) {
                        head.push(*v);
                    }
                }
            }
            let constraint = constraint.filter(|(a, _, b)| head.contains(a) && head.contains(b));
            RandomQuery {
                atoms,
                constraint,
                head,
            }
        })
}

fn var(i: usize) -> Term {
    Term::var(format!("X{i}"))
}

fn to_cq(q: &RandomQuery) -> ConjunctiveQuery {
    let atoms = q
        .atoms
        .iter()
        .map(|(use_r, a, b)| Atom::new(if *use_r { "r" } else { "s" }, vec![var(*a), var(*b)]))
        .collect();
    let constraints = q
        .constraint
        .iter()
        .map(|(a, op, b)| Constraint {
            lhs: var(*a),
            op: match op {
                0 => CmpOp::Eq,
                1 => CmpOp::Neq,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            },
            rhs: var(*b),
        })
        .collect();
    ConjunctiveQuery {
        name: Arc::from("q"),
        head: q.head.iter().map(|v| var(*v)).collect(),
        atoms,
        constraints,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The interned/columnar evaluator and the legacy `Value` evaluator
    /// agree on every random database + query — including string ordering
    /// built-ins (`<`, `>=`), which the interned path must resolve through
    /// the catalog.
    #[test]
    fn interned_path_equals_legacy_path(inst in instance(), q in random_query()) {
        let db = db_of(&inst);
        let legacy_db = LegacyDatabase::from_database(&db);
        let cq = to_cq(&q);
        let fast: HashSet<_> = resolve_tuples(&evaluate(&cq, &db).unwrap())
            .into_iter()
            .collect();
        let slow: HashSet<_> = evaluate_legacy(&cq, &legacy_db).unwrap().into_iter().collect();
        prop_assert_eq!(fast, slow);
    }

    /// A database round-trips through serde: same facts, same membership
    /// (dedup still works), same watermarks — with the serialized form
    /// carrying each row exactly once (no `present` duplicate).
    #[test]
    fn database_serde_round_trip(inst in instance()) {
        let db = db_of(&inst);
        let text = serde_json::to_string(&db).unwrap();
        assert!(!text.contains("present"), "{text}");
        let back: Database = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back.all_facts(), db.all_facts());
        prop_assert_eq!(back.watermarks(), db.watermarks());
        // Dedup (membership rebuild) still functions after the round trip.
        let mut back = back;
        for (rel, t) in db.all_facts() {
            prop_assert!(!back.insert(&rel, t).unwrap());
        }
    }

    /// Catalog dictionaries round-trip through serde and absorb correctly
    /// into a *foreign* catalog: resolved strings are preserved even though
    /// the raw ids differ.
    #[test]
    fn catalog_delta_round_trips_into_foreign_catalog(
        names in proptest::collection::vec(0..50u32, 1..10),
        offset in 1..7u32,
    ) {
        let writer = ConstCatalog::new();
        let reader = ConstCatalog::new();
        for i in 0..offset {
            reader.intern(&format!("reader-preexisting-{i}"));
        }
        let ids: Vec<_> = names
            .iter()
            .map(|n| writer.intern(&format!("shared-const-{n}")))
            .collect();
        let delta = writer.export(ids.iter().copied());
        // Serde round trip of the dictionary itself.
        let text = serde_json::to_string(&delta).unwrap();
        let back: Vec<(p2p_relational::SymId, Arc<str>)> = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&back, &delta);
        // Foreign absorb preserves the strings under remap.
        let remap = reader.absorb(&back);
        for id in ids {
            prop_assert_eq!(writer.resolve(id), reader.resolve(remap.map(id)));
        }
    }

    /// Columnar `Relation` round-trips through serde with membership intact.
    #[test]
    fn relation_serde_round_trip(rows in proptest::collection::vec((0..30u8, 0..30u8), 0..20)) {
        let schema = DatabaseSchema::parse("r(x: str, y: str).").unwrap();
        let mut rel = Relation::new(schema.relation("r").unwrap().clone());
        let norm = |p: u8| match val_of(p) {
            Val::Int(i) => Val::str(format!("int-{i}")),
            other => other,
        };
        for &(x, y) in &rows {
            rel.insert_row(&[norm(x), norm(y)]);
        }
        let text = serde_json::to_string(&rel).unwrap();
        let back: Relation = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back.len(), rel.len());
        for row in rel.iter() {
            prop_assert!(back.contains(row));
        }
    }
}
