//! A local database: the paper's `LDB` held by each peer.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use crate::tuple::Tuple;
use crate::value::Val;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An in-memory database instance over a fixed [`DatabaseSchema`].
///
/// Relations are kept in a `BTreeMap` so iteration (and hence everything
/// downstream: query plans, messages, statistics) is deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    schema: DatabaseSchema,
    relations: BTreeMap<Arc<str>, Relation>,
}

impl Database {
    /// Creates an empty database over `schema`, with one (empty) relation
    /// instance per declared relation.
    pub fn new(schema: DatabaseSchema) -> Self {
        let relations = schema
            .relations()
            .map(|r| (r.name.clone(), Relation::new(r.clone())))
            .collect();
        Database { schema, relations }
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Immutable access to a relation instance.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a relation instance.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Inserts a validated tuple; returns `true` iff it was new.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let rel = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| Error::UnknownRelation(relation.to_string()))?;
        rel.schema().check(&tuple.0)?;
        Ok(rel.insert(tuple))
    }

    /// Convenience: insert from a `Vec<Val>`.
    pub fn insert_values(&mut self, relation: &str, values: Vec<Val>) -> Result<bool> {
        self.insert(relation, Tuple::new(values))
    }

    /// Iterates `(name, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&Arc<str>, &Relation)> {
        self.relations.iter()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// True iff no relation holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.total_tuples() == 0
    }

    /// All facts as `(relation name, tuple)` pairs in deterministic order —
    /// the exchange format used when shipping whole databases (centralized
    /// baseline) and when comparing against the fix-point oracle.
    pub fn all_facts(&self) -> Vec<(Arc<str>, Tuple)> {
        let mut out = Vec::with_capacity(self.total_tuples());
        for (name, rel) in &self.relations {
            for row in rel.iter() {
                out.push((name.clone(), Tuple::from_row(row)));
            }
        }
        out
    }

    /// Per-relation insertion watermarks, used by delta subscriptions: a
    /// later call to [`Database::facts_since`] with these watermarks yields
    /// exactly the facts inserted in between.
    pub fn watermarks(&self) -> BTreeMap<Arc<str>, usize> {
        self.relations
            .iter()
            .map(|(n, r)| (n.clone(), r.len()))
            .collect()
    }

    /// Facts inserted since the given watermarks (missing entries mean 0).
    pub fn facts_since(&self, watermarks: &BTreeMap<Arc<str>, usize>) -> Vec<(Arc<str>, Tuple)> {
        let mut out = Vec::new();
        for (name, rel) in &self.relations {
            let w = watermarks.get(name).copied().unwrap_or(0);
            for row in rel.since(w) {
                out.push((name.clone(), Tuple::from_row(row)));
            }
        }
        out
    }

    /// Every distinct interned symbol occurring in the database — what a
    /// persisted copy must carry a dictionary for.
    pub fn syms(&self) -> Vec<crate::catalog::SymId> {
        let mut out: Vec<_> = self.relations.values().flat_map(|r| r.syms()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rewrites every symbol id through `f` (crash recovery remaps foreign
    /// catalog ids through the live catalog).
    pub fn remap_syms(&mut self, f: &impl Fn(crate::catalog::SymId) -> crate::catalog::SymId) {
        for rel in self.relations.values_mut() {
            rel.remap_syms(f);
        }
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rel in self.relations.values() {
            write!(f, "{rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::new(DatabaseSchema::parse("a(x: int). b(x: int, y: str).").unwrap())
    }

    #[test]
    fn insert_validates_relation_name() {
        let mut d = db();
        let e = d.insert_values("zzz", vec![Val::Int(1)]).unwrap_err();
        assert_eq!(e, Error::UnknownRelation("zzz".to_string()));
    }

    #[test]
    fn insert_validates_types() {
        let mut d = db();
        assert!(d
            .insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .is_err());
        assert!(d
            .insert_values("b", vec![Val::Int(1), Val::str("ok")])
            .unwrap());
    }

    #[test]
    fn total_tuples_counts_all_relations() {
        let mut d = db();
        d.insert_values("a", vec![Val::Int(1)]).unwrap();
        d.insert_values("a", vec![Val::Int(2)]).unwrap();
        d.insert_values("b", vec![Val::Int(1), Val::str("x")])
            .unwrap();
        assert_eq!(d.total_tuples(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn facts_since_respects_watermarks() {
        let mut d = db();
        d.insert_values("a", vec![Val::Int(1)]).unwrap();
        let w = d.watermarks();
        d.insert_values("a", vec![Val::Int(2)]).unwrap();
        d.insert_values("b", vec![Val::Int(1), Val::str("x")])
            .unwrap();
        let delta = d.facts_since(&w);
        assert_eq!(delta.len(), 2);
        assert_eq!(&*delta[0].0, "a");
        assert_eq!(delta[0].1, Tuple::new(vec![Val::Int(2)]));
        assert_eq!(&*delta[1].0, "b");
    }

    #[test]
    fn all_facts_is_deterministic_name_order() {
        let mut d = db();
        d.insert_values("b", vec![Val::Int(1), Val::str("x")])
            .unwrap();
        d.insert_values("a", vec![Val::Int(9)]).unwrap();
        let facts = d.all_facts();
        assert_eq!(&*facts[0].0, "a"); // "a" sorts before "b"
        assert_eq!(&*facts[1].0, "b");
    }
}
