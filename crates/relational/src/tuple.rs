//! Tuples: immutable, cheaply clonable rows of fixed-width [`Val`]s.

use crate::value::Val;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of [`Val`]s.
///
/// Tuples are the in-flight row representation: query answers, protocol
/// messages and WAL records all ship them, and `Arc<[Val]>` keeps those
/// copies O(1). At rest, rows live flattened inside [`crate::Relation`]'s
/// columnar store; a `Tuple` is materialised only at that boundary. Equality,
/// hashing and ordering are structural (by content), so a tuple can be used
/// directly for deduplication in answer sets and for the insertion guard of
/// algorithm A6.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Arc<[Val]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Val>) -> Self {
        Tuple(Arc::from(values))
    }

    /// Builds a tuple by copying a row slice (e.g. straight out of a
    /// columnar relation).
    pub fn from_row(row: &[Val]) -> Self {
        Tuple(Arc::from(row))
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field accessor.
    pub fn get(&self, idx: usize) -> Option<&Val> {
        self.0.get(idx)
    }

    /// Iterates over the fields.
    pub fn values(&self) -> impl Iterator<Item = &Val> {
        self.0.iter()
    }

    /// True iff any field is a labeled null. Answers containing nulls are not
    /// *certain* (they witness existentially-invented data), so
    /// certain-answer evaluation filters on this.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Val::is_null)
    }

    /// Projects the tuple onto the given column indices.
    ///
    /// # Panics
    /// Panics if an index is out of bounds — projections are computed from
    /// schemas validated at construction time, so an out-of-bounds index is a
    /// programming error, not a data error.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.0[i]).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Val>> for Tuple {
    fn from(values: Vec<Val>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    fn t(vals: Vec<Val>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(
            t(vec![Val::Int(1), Val::str("a")]),
            t(vec![Val::Int(1), Val::str("a")])
        );
        assert_ne!(
            t(vec![Val::Int(1), Val::str("a")]),
            t(vec![Val::Int(1), Val::str("b")])
        );
    }

    #[test]
    fn has_null_detects_nulls() {
        assert!(!t(vec![Val::Int(1)]).has_null());
        assert!(t(vec![Val::Int(1), Val::Null(NullId::new(0, 0))]).has_null());
    }

    #[test]
    fn project_selects_columns_in_order() {
        let tup = t(vec![Val::Int(1), Val::Int(2), Val::Int(3)]);
        assert_eq!(tup.project(&[2, 0]), t(vec![Val::Int(3), Val::Int(1)]));
        assert_eq!(tup.project(&[]), t(vec![]));
    }

    #[test]
    fn from_row_copies_a_slice() {
        let row = [Val::Int(4), Val::str("s")];
        assert_eq!(Tuple::from_row(&row), t(vec![Val::Int(4), Val::str("s")]));
    }

    #[test]
    fn display_is_parenthesised() {
        let tup = t(vec![Val::Int(1), Val::str("x")]);
        assert_eq!(tup.to_string(), "(1, 'x')");
    }
}
