//! Tuples: immutable, cheaply clonable rows.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of [`Value`]s.
///
/// Tuples are shared between the local store, query answers, and network
/// messages; `Arc<[Value]>` keeps those copies O(1). Equality, hashing and
/// ordering are structural (by content), so a tuple can be used directly for
/// deduplication in answer sets and for the insertion guard of algorithm A6.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Arc<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(Arc::from(values))
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field accessor.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Iterates over the fields.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// True iff any field is a labeled null. Answers containing nulls are not
    /// *certain* (they witness existentially-invented data), so
    /// certain-answer evaluation filters on this.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Approximate serialized size in bytes for data-volume accounting.
    pub fn wire_size(&self) -> usize {
        2 + self.0.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Projects the tuple onto the given column indices.
    ///
    /// # Panics
    /// Panics if an index is out of bounds — projections are computed from
    /// schemas validated at construction time, so an out-of-bounds index is a
    /// programming error, not a data error.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.0[i].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(
            t(vec![Value::Int(1), Value::str("a")]),
            t(vec![Value::Int(1), Value::str("a")])
        );
        assert_ne!(
            t(vec![Value::Int(1), Value::str("a")]),
            t(vec![Value::Int(1), Value::str("b")])
        );
    }

    #[test]
    fn has_null_detects_nulls() {
        assert!(!t(vec![Value::Int(1)]).has_null());
        assert!(t(vec![Value::Int(1), Value::Null(NullId::new(0, 0))]).has_null());
    }

    #[test]
    fn project_selects_columns_in_order() {
        let tup = t(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(tup.project(&[2, 0]), t(vec![Value::Int(3), Value::Int(1)]));
        assert_eq!(tup.project(&[]), t(vec![]));
    }

    #[test]
    fn display_is_parenthesised() {
        let tup = t(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(tup.to_string(), "(1, 'x')");
    }

    #[test]
    fn wire_size_sums_fields() {
        let tup = t(vec![Value::Int(1), Value::str("xy")]);
        assert_eq!(tup.wire_size(), 2 + 8 + 6);
    }
}
