//! Conjunctive queries with built-in predicates: AST, parser, evaluator.
//!
//! This is the query language the paper assigns to coordination rules —
//! "coordination rules may contain conjunctive queries in both the head and
//! body (without any safety assumption and possibly with built-in
//! predicates)" (Section 2). Atoms may carry a *qualifier* naming the peer a
//! formula belongs to (`B:b(X,Y)`), mirroring the paper's `j : b(x, y)`
//! notation; the evaluator itself works on a single local database and
//! rejects qualified atoms (the distributed layer strips qualifiers when it
//! routes sub-queries to peers).

pub mod ast;
pub mod eval;
pub mod parser;
pub mod plan;

pub use ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
pub use eval::{evaluate, evaluate_bindings, evaluate_bindings_since, evaluate_certain, Bindings};
pub use parser::{parse_atom, parse_implication, parse_query, Implication};
pub use plan::{
    compile_body, evaluate_bindings_planned, evaluate_bindings_since_planned, execute_plan,
    CompiledBody, EvalMetrics, QueryPlan,
};
