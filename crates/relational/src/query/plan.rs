//! Compiled query plans and persistent-index execution — the incremental
//! query engine.
//!
//! [`crate::query::eval`] re-derives the whole query plan (variable slots,
//! greedy atom order, per-position actions) and rebuilds a transient hash
//! index over the **entire relation** per atom on *every* call, so per-wave
//! cost in the update protocol is O(|relation|) even when the semi-naive
//! delta is one tuple. This module splits that work along its natural
//! boundary:
//!
//! * **Compile once** — [`compile_body`] turns a body (atoms + constraints)
//!   into a [`QueryPlan`]: the slot table, the atom order, each atom's key
//!   columns and [`PosAction`] list, and a static constraint schedule.
//!   Everything the legacy evaluator derives per call is derivable from the
//!   body text alone (the bound-variable set evolves deterministically), so
//!   a plan compiles once per `(rule, restricted-atom)` and is cached by the
//!   peer until the rule changes. [`CompiledBody`] bundles the full plan
//!   with one delta plan per atom for semi-naive evaluation.
//!
//! * **Probe persistent indexes** — [`execute_plan`] looks joins up in
//!   [`crate::relation::Index`]es that [`crate::Relation`] maintains
//!   incrementally on insert ([`crate::Relation::ensure_index`]), instead of
//!   rebuilding a per-call hash table. The watermark-restricted (delta) atom
//!   still scans only its suffix, so a 1-tuple delta wave reads O(delta)
//!   rows regardless of relation size — the standard incremental-view-
//!   maintenance property, observable through [`EvalMetrics`].
//!
//! Semantics are **identical** to the legacy evaluator (which remains the
//! equivalence oracle in tests): same naive-table certain-answer treatment
//! of labeled nulls, same column order, same result sets. Only row order
//! within a result may differ, because the greedy tie-break on relation
//! size is frozen at compile time instead of re-evaluated per call.

use crate::database::Database;
use crate::error::Result;
use crate::fxhash::FxHashMap;
use crate::query::ast::{Atom, CmpOp, Constraint, Term};
use crate::query::eval::{greedy_order, push_dedup, validate_body, Bindings};
use crate::relation::key_hash;
use crate::value::Val;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Work counters for plan execution, for observing the incremental win.
///
/// `rows_scanned` counts relation rows physically read (suffix scans,
/// transient-index builds, and candidate rows visited after a probe);
/// `index_probes` counts hash-bucket lookups against persistent indexes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalMetrics {
    /// Relation rows physically read.
    pub rows_scanned: u64,
    /// Persistent-index bucket probes.
    pub index_probes: u64,
}

impl EvalMetrics {
    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: EvalMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
    }
}

/// Where a join-key value comes from when probing an atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// A constant from the atom text.
    Const(Val),
    /// The value of an already-bound variable slot.
    Slot(usize),
}

impl KeySource {
    fn value(&self, binding: &[Val]) -> Val {
        match self {
            KeySource::Const(c) => *c,
            KeySource::Slot(s) => binding[*s],
        }
    }
}

/// Per-position action when extending a binding by one matched tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosAction {
    /// First occurrence of a variable in this atom: write `tuple[pos]` into
    /// the binding slot.
    Bind {
        /// Column position within the atom's tuple.
        pos: usize,
        /// Destination binding slot.
        slot: usize,
    },
    /// Repeated occurrence within the same atom: the slot was just written,
    /// so compare.
    Recheck {
        /// Column position within the atom's tuple.
        pos: usize,
        /// Binding slot to compare against.
        slot: usize,
    },
}

/// A constraint with its terms resolved to slots/constants at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledConstraint {
    /// Left-hand side.
    pub lhs: KeySource,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: KeySource,
}

/// One join step: probe `relation` on `key`, extend bindings via `actions`,
/// then filter by the constraints that just became ground.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomStep {
    /// Index of the atom in the original body (delta plans are keyed by it).
    pub atom: usize,
    /// Relation probed by this step.
    pub relation: Arc<str>,
    /// Key positions with their value sources, in column order.
    pub key: Vec<(usize, KeySource)>,
    /// Just the key column positions (the persistent-index key), cached so
    /// probing allocates nothing.
    pub key_cols: Box<[usize]>,
    /// Slot writes/rechecks for the non-key positions.
    pub actions: Vec<PosAction>,
    /// Indices into [`QueryPlan::constraints`] that become fully bound after
    /// this step.
    pub constraints_after: Vec<usize>,
}

/// A compiled body: everything [`crate::query::eval::evaluate_bindings`]
/// re-derives per call, computed once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Variable names in slot (first-occurrence) order.
    pub vars: Vec<Arc<str>>,
    /// Join steps in execution order.
    pub steps: Vec<AtomStep>,
    /// All body constraints, compiled.
    pub constraints: Vec<CompiledConstraint>,
    /// Constraints ground before any step runs (constant comparisons).
    pub pre_constraints: Vec<usize>,
    /// True iff `steps[0]` is the semi-naive delta atom: it scans only the
    /// post-watermark suffix of its relation.
    pub restricted: bool,
}

/// The full plan plus one delta plan per atom — what a peer caches per rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledBody {
    /// Unrestricted plan ([`crate::query::eval::evaluate_bindings`]).
    pub full: QueryPlan,
    /// `delta[i]` restricts atom `i` to its post-watermark suffix.
    pub delta: Vec<QueryPlan>,
}

impl CompiledBody {
    /// Compiles a body's full plan and every semi-naive delta plan.
    pub fn compile(atoms: &[Atom], constraints: &[Constraint], db: &Database) -> Result<Self> {
        let full = compile_body(atoms, constraints, db, None)?;
        let delta = (0..atoms.len())
            .map(|i| compile_body(atoms, constraints, db, Some(i)))
            .collect::<Result<Vec<_>>>()?;
        Ok(CompiledBody { full, delta })
    }
}

/// Compiles one body into a [`QueryPlan`], optionally restricting atom
/// `restricted` to its post-watermark suffix (it is then forced first in the
/// join order, exactly like the legacy evaluator).
///
/// Validation (qualified atoms, unknown relations, arity, unbound constraint
/// variables) happens here, so executing a compiled plan cannot fail on the
/// body itself.
pub fn compile_body(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &Database,
    restricted: Option<usize>,
) -> Result<QueryPlan> {
    let (vars, slot_of) = validate_body(atoms, constraints, db)?;
    let restricted = restricted.filter(|&r| r < atoms.len());
    let order = greedy_order(atoms, db, &slot_of, restricted);

    let compiled_constraints: Vec<CompiledConstraint> = constraints
        .iter()
        .map(|c| CompiledConstraint {
            lhs: compile_term(&c.lhs, &slot_of),
            op: c.op,
            rhs: compile_term(&c.rhs, &slot_of),
        })
        .collect();

    // Static constraint schedule: the bound-slot set evolves deterministically
    // with the atom order, so each constraint attaches to the first point at
    // which all its variables are bound.
    let mut bound: Vec<bool> = vec![false; vars.len()];
    let mut scheduled: Vec<bool> = vec![false; constraints.len()];
    let ready = |bound: &[bool], c: &Constraint| -> bool {
        c.variables().iter().all(|v| bound[slot_of[v]])
    };
    let mut pre_constraints: Vec<usize> = Vec::new();
    for (ci, c) in constraints.iter().enumerate() {
        if ready(&bound, c) {
            scheduled[ci] = true;
            pre_constraints.push(ci);
        }
    }

    let mut steps: Vec<AtomStep> = Vec::with_capacity(order.len());
    for &ai in &order {
        let atom = &atoms[ai];
        let mut key: Vec<(usize, KeySource)> = Vec::new();
        let mut actions: Vec<PosAction> = Vec::new();
        let mut bound_here: Vec<usize> = Vec::new();
        for (pos, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(c) => key.push((pos, KeySource::Const(*c))),
                Term::Var(v) => {
                    let slot = slot_of[v];
                    if bound[slot] {
                        key.push((pos, KeySource::Slot(slot)));
                    } else if !bound_here.contains(&slot) {
                        bound_here.push(slot);
                        actions.push(PosAction::Bind { pos, slot });
                    } else {
                        actions.push(PosAction::Recheck { pos, slot });
                    }
                }
            }
        }
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound[slot_of[v]] = true;
            }
        }
        let mut constraints_after: Vec<usize> = Vec::new();
        for (ci, c) in constraints.iter().enumerate() {
            if !scheduled[ci] && ready(&bound, c) {
                scheduled[ci] = true;
                constraints_after.push(ci);
            }
        }
        steps.push(AtomStep {
            atom: ai,
            relation: atom.relation.clone(),
            key_cols: key.iter().map(|&(p, _)| p).collect(),
            key,
            actions,
            constraints_after,
        });
    }

    Ok(QueryPlan {
        vars,
        steps,
        constraints: compiled_constraints,
        pre_constraints,
        restricted: restricted.is_some(),
    })
}

fn compile_term(t: &Term, slot_of: &std::collections::HashMap<Arc<str>, usize>) -> KeySource {
    match t {
        Term::Const(c) => KeySource::Const(*c),
        Term::Var(v) => KeySource::Slot(slot_of[v]),
    }
}

/// Executes a compiled plan. `watermark` applies only to a restricted plan's
/// first step. With `use_indexes` the join probes the relation's persistent
/// [`crate::relation::Index`] (built on first use, maintained on insert);
/// without it a transient index is rebuilt per call — the legacy cost model,
/// kept as the `--no-indexes` ablation baseline.
///
/// `db` is `&mut` only to create missing persistent indexes; data is never
/// modified.
pub fn execute_plan(
    plan: &QueryPlan,
    db: &mut Database,
    watermark: usize,
    use_indexes: bool,
    m: &mut EvalMetrics,
) -> Result<Bindings> {
    let nvars = plan.vars.len();
    let width = nvars.max(1);
    let mut rows: Vec<Val> = vec![Val::Int(0); width]; // one empty binding
    let mut nrows: usize = 1;
    apply_constraints(plan, &plan.pre_constraints, &mut rows, &mut nrows, width);

    let mut key: Vec<Val> = Vec::new();
    for (si, step) in plan.steps.iter().enumerate() {
        if nrows == 0 {
            break;
        }
        let mut next: Vec<Val> = Vec::new();
        let mut next_n: usize = 0;
        let extend = |next: &mut Vec<Val>,
                      next_n: &mut usize,
                      binding: &[Val],
                      tuple: &[Val],
                      key: &[Val]|
         -> () {
            // Hash-collision / suffix-scan guard: key columns must match.
            if step
                .key_cols
                .iter()
                .zip(key.iter())
                .any(|(&p, kv)| tuple[p] != *kv)
            {
                return;
            }
            let start = next.len();
            next.extend_from_slice(binding);
            for act in &step.actions {
                match *act {
                    PosAction::Bind { pos, slot } => next[start + slot] = tuple[pos],
                    PosAction::Recheck { pos, slot } => {
                        if next[start + slot] != tuple[pos] {
                            next.truncate(start);
                            return;
                        }
                    }
                }
            }
            *next_n += 1;
        };

        if si == 0 && plan.restricted {
            // Semi-naive delta atom: scan only the post-watermark suffix.
            // Bindings here are the single empty binding, so keys are
            // constants and an index would not narrow anything.
            let rel = db.relation(&step.relation)?;
            for bi in 0..nrows {
                let binding = &rows[bi * width..bi * width + width];
                key.clear();
                key.extend(step.key.iter().map(|(_, src)| src.value(binding)));
                for tuple in rel.since(watermark) {
                    m.rows_scanned += 1;
                    extend(&mut next, &mut next_n, binding, tuple, &key);
                }
            }
        } else if use_indexes {
            let rel = db.relation_mut(&step.relation)?;
            if step.key_cols.is_empty() {
                // No key: every row extends every binding (cross product /
                // first atom) — an index has nothing to narrow.
                let rel = &*rel;
                for bi in 0..nrows {
                    let binding = &rows[bi * width..bi * width + width];
                    key.clear();
                    for tuple in rel.iter() {
                        m.rows_scanned += 1;
                        extend(&mut next, &mut next_n, binding, tuple, &key);
                    }
                }
            } else {
                rel.ensure_index(&step.key_cols);
                let rel = &*rel;
                let idx = rel.index(&step.key_cols).expect("just ensured");
                for bi in 0..nrows {
                    let binding = &rows[bi * width..bi * width + width];
                    key.clear();
                    key.extend(step.key.iter().map(|(_, src)| src.value(binding)));
                    m.index_probes += 1;
                    for &ri in idx.candidates(key_hash(key.iter())) {
                        m.rows_scanned += 1;
                        extend(&mut next, &mut next_n, binding, rel.row(ri as usize), &key);
                    }
                }
            }
        } else {
            // Ablation baseline: rebuild a transient index over the whole
            // relation per call, exactly like the legacy evaluator.
            let rel = db.relation(&step.relation)?;
            let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for (ri, row) in rel.iter().enumerate() {
                m.rows_scanned += 1;
                let hash = key_hash(step.key_cols.iter().map(|&p| &row[p]));
                index.entry(hash).or_default().push(ri as u32);
            }
            for bi in 0..nrows {
                let binding = &rows[bi * width..bi * width + width];
                key.clear();
                key.extend(step.key.iter().map(|(_, src)| src.value(binding)));
                if let Some(matches) = index.get(&key_hash(key.iter())) {
                    for &ri in matches {
                        m.rows_scanned += 1;
                        extend(&mut next, &mut next_n, binding, rel.row(ri as usize), &key);
                    }
                }
            }
        }

        rows = next;
        nrows = next_n;
        apply_constraints(plan, &step.constraints_after, &mut rows, &mut nrows, width);
    }

    // Materialise with hash-bucket dedup (no per-row allocation).
    let mut out = Bindings::empty(plan.vars.clone());
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for i in 0..nrows {
        let row = &rows[i * width..i * width + width];
        push_dedup(&mut out, &mut seen, &row[..nvars]);
    }
    Ok(out)
}

fn apply_constraints(
    plan: &QueryPlan,
    list: &[usize],
    rows: &mut Vec<Val>,
    nrows: &mut usize,
    width: usize,
) {
    for &ci in list {
        let c = &plan.constraints[ci];
        let mut keep = 0usize;
        for i in 0..*nrows {
            let row = &rows[i * width..i * width + width];
            let lhs = c.lhs.value(row);
            let rhs = c.rhs.value(row);
            if c.op.certainly_holds(&lhs, &rhs) {
                if keep != i {
                    rows.copy_within(i * width..i * width + width, keep * width);
                }
                keep += 1;
            }
        }
        rows.truncate(keep * width);
        *nrows = keep;
    }
}

/// Plan-based counterpart of [`crate::query::eval::evaluate_bindings`]:
/// same result set, no per-call plan derivation or index rebuild.
pub fn evaluate_bindings_planned(
    plan: &QueryPlan,
    db: &mut Database,
    use_indexes: bool,
    m: &mut EvalMetrics,
) -> Result<Bindings> {
    execute_plan(plan, db, 0, use_indexes, m)
}

/// Plan-based counterpart of
/// [`crate::query::eval::evaluate_bindings_since`]: unions every delta
/// plan's rows, deduplicated, over the given per-relation watermarks.
pub fn evaluate_bindings_since_planned(
    body: &CompiledBody,
    db: &mut Database,
    watermarks: &BTreeMap<Arc<str>, usize>,
    use_indexes: bool,
    m: &mut EvalMetrics,
) -> Result<Bindings> {
    let mut out = Bindings::empty(body.full.vars.clone());
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for plan in &body.delta {
        let relation = &plan.steps[0].relation;
        let watermark = watermarks.get(relation).copied().unwrap_or(0);
        if db.relation(relation)?.len() <= watermark {
            continue; // No new tuples in this atom's relation.
        }
        let delta = execute_plan(plan, db, watermark, use_indexes, m)?;
        for row in delta.rows() {
            push_dedup(&mut out, &mut seen, row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::eval::{evaluate_bindings, evaluate_bindings_since};
    use crate::query::parser::parse_query;
    use crate::schema::DatabaseSchema;
    use std::collections::HashSet;

    fn db_with_b(pairs: &[(i64, i64)]) -> Database {
        let mut db = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        for &(x, y) in pairs {
            db.insert_values("b", vec![Val::Int(x), Val::Int(y)])
                .unwrap();
        }
        db
    }

    fn row_set(b: &Bindings) -> HashSet<Vec<Val>> {
        b.rows().map(<[Val]>::to_vec).collect()
    }

    fn check_equivalence(query: &str, db: &mut Database) {
        let q = parse_query(query).unwrap();
        let legacy = evaluate_bindings(&q.atoms, &q.constraints, db).unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, db).unwrap();
        for use_indexes in [false, true] {
            let mut m = EvalMetrics::default();
            let planned = evaluate_bindings_planned(&body.full, db, use_indexes, &mut m).unwrap();
            assert_eq!(planned.vars, legacy.vars, "{query}");
            assert_eq!(row_set(&planned), row_set(&legacy), "{query}");
        }
    }

    #[test]
    fn planned_matches_legacy_on_core_shapes() {
        let mut db = db_with_b(&[(1, 2), (2, 3), (3, 4), (1, 1), (7, 7)]);
        for q in [
            "q(X, Z) :- b(X, Y), b(Y, Z)",
            "q(X, Y) :- b(X, Y), b(X, Z), Y != Z",
            "q(X) :- b(X, 2)",
            "q(X) :- b(X, X)",
            "q(X, U) :- b(X, Y), b(U, V)",
            "q(X, Y) :- b(X, Y), X < Y",
            "q(1) :- b(1, 2)",
            "q(1) :- b(8, 9)",
        ] {
            check_equivalence(q, &mut db);
        }
    }

    #[test]
    fn delta_planned_matches_legacy() {
        let mut db = db_with_b(&[(1, 2), (2, 3)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let w = db.watermarks();
        db.insert_values("b", vec![Val::Int(3), Val::Int(4)])
            .unwrap();
        db.insert_values("b", vec![Val::Int(0), Val::Int(1)])
            .unwrap();
        let legacy = evaluate_bindings_since(&q.atoms, &q.constraints, &db, &w).unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
        for use_indexes in [false, true] {
            let mut m = EvalMetrics::default();
            let planned =
                evaluate_bindings_since_planned(&body, &mut db, &w, use_indexes, &mut m).unwrap();
            assert_eq!(planned.vars, legacy.vars);
            assert_eq!(row_set(&planned), row_set(&legacy));
        }
    }

    #[test]
    fn delta_rows_scanned_is_o_delta_not_o_relation() {
        // Same 1-tuple delta against a small and a large relation: the
        // indexed planned path must read the same number of rows.
        let scanned = |n: i64| -> u64 {
            let mut db = db_with_b(&[]);
            for i in 0..n {
                db.insert_values("b", vec![Val::Int(i), Val::Int(i + 1)])
                    .unwrap();
            }
            let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
            let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
            // Warm the persistent indexes, as a long-running peer would.
            let mut m = EvalMetrics::default();
            evaluate_bindings_planned(&body.full, &mut db, true, &mut m).unwrap();
            let w = db.watermarks();
            db.insert_values("b", vec![Val::Int(n), Val::Int(n + 1)])
                .unwrap();
            let mut m = EvalMetrics::default();
            let delta = evaluate_bindings_since_planned(&body, &mut db, &w, true, &mut m).unwrap();
            // Appending (n, n+1) to the chain creates exactly one new join
            // result: (n-1, n, n+1).
            assert_eq!(delta.len(), 1);
            m.rows_scanned
        };
        assert_eq!(scanned(10), scanned(1_000));
    }

    #[test]
    fn rebuild_path_scans_the_whole_relation() {
        let mut db = db_with_b(&[]);
        for i in 0..100 {
            db.insert_values("b", vec![Val::Int(i), Val::Int(i + 1)])
                .unwrap();
        }
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
        let w = db.watermarks();
        db.insert_values("b", vec![Val::Int(500), Val::Int(501)])
            .unwrap();
        let mut indexed = EvalMetrics::default();
        evaluate_bindings_since_planned(&body, &mut db, &w, true, &mut indexed).unwrap();
        let mut rebuild = EvalMetrics::default();
        evaluate_bindings_since_planned(&body, &mut db, &w, false, &mut rebuild).unwrap();
        assert!(
            rebuild.rows_scanned >= 2 * 101,
            "rebuild path reads every row per delta plan, got {}",
            rebuild.rows_scanned
        );
        assert!(
            indexed.rows_scanned < rebuild.rows_scanned / 10,
            "indexed {} vs rebuild {}",
            indexed.rows_scanned,
            rebuild.rows_scanned
        );
    }

    #[test]
    fn empty_watermarks_mean_everything_is_new() {
        let mut db = db_with_b(&[(1, 2), (2, 3)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
        let mut m = EvalMetrics::default();
        let delta = evaluate_bindings_since_planned(&body, &mut db, &BTreeMap::new(), true, &mut m)
            .unwrap();
        let full = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
        assert_eq!(row_set(&delta), row_set(&full));
    }

    #[test]
    fn unchanged_database_gives_empty_delta_without_scanning() {
        let mut db = db_with_b(&[(1, 2), (2, 3)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
        let w = db.watermarks();
        let mut m = EvalMetrics::default();
        let delta = evaluate_bindings_since_planned(&body, &mut db, &w, true, &mut m).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.vars, body.full.vars);
        assert_eq!(m.rows_scanned, 0);
        assert_eq!(m.index_probes, 0);
    }

    #[test]
    fn plans_survive_inserts_via_index_maintenance() {
        let mut db = db_with_b(&[(1, 2)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let body = CompiledBody::compile(&q.atoms, &q.constraints, &db).unwrap();
        let mut m = EvalMetrics::default();
        evaluate_bindings_planned(&body.full, &mut db, true, &mut m).unwrap();
        // Interleave inserts with evaluations; the persistent index must
        // track them without recompilation.
        for i in 2..20 {
            db.insert_values("b", vec![Val::Int(i), Val::Int(i + 1)])
                .unwrap();
            let legacy = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
            let mut m = EvalMetrics::default();
            let planned = evaluate_bindings_planned(&body.full, &mut db, true, &mut m).unwrap();
            assert_eq!(row_set(&planned), row_set(&legacy), "after insert {i}");
        }
    }

    #[test]
    fn compile_validates_the_body() {
        let db = db_with_b(&[]);
        let atom = crate::query::parser::parse_atom("B:b(X, Y)").unwrap();
        assert!(CompiledBody::compile(&[atom], &[], &db).is_err());
        let q = parse_query("q(X) :- zzz(X)").unwrap();
        assert!(CompiledBody::compile(&q.atoms, &q.constraints, &db).is_err());
    }
}
