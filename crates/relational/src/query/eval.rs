//! Conjunctive-query evaluation: greedy atom ordering + hash joins over
//! fixed-width [`Val`] rows.
//!
//! Semantics: **naive tables**. Labeled nulls are ordinary values that join
//! only with themselves; built-in comparisons involving nulls are unknown and
//! filtered out (see [`CmpOp::certainly_holds`]). Consequently
//! [`evaluate_certain`] — which additionally drops answer tuples containing
//! nulls — returns certain answers for positive queries, the semantics under
//! which the paper's soundness/completeness statements are phrased.
//!
//! The evaluator works entirely on flat row buffers: intermediate bindings
//! are one contiguous `Vec<Val>` with stride = variable count, join keys are
//! copied `Val` words hashed into `u64`-keyed candidate buckets (collisions
//! resolved by comparing the key columns, which the join loop re-checks
//! anyway), and no per-row allocation happens anywhere. The old
//! `Value`-based evaluator survives as [`crate::legacy`] for equivalence
//! testing and as the benchmark baseline. For cached plans and persistent
//! indexes see [`crate::query::plan`] — this module remains the
//! plan-per-call reference implementation.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::fxhash::{fx_hash, FxHashMap};
use crate::query::ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
use crate::relation::key_hash;
use crate::tuple::Tuple;
use crate::value::Val;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// The result of evaluating a body: a table of variable bindings stored as
/// one flat buffer (`row i` = `data[i*width .. (i+1)*width]`, column `j` =
/// the value of `vars[j]`). Rows are deduplicated and listed in a
/// deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bindings {
    /// Variable names, in slot order.
    pub vars: Vec<Arc<str>>,
    width: usize,
    data: Vec<Val>,
    /// A zero-variable body has at most one (empty) satisfying assignment,
    /// which the flat buffer cannot represent — this flag does.
    nonempty_zero_width: bool,
}

impl Bindings {
    /// An empty table over the given variables.
    pub fn empty(vars: Vec<Arc<str>>) -> Self {
        let width = vars.len();
        Bindings {
            vars,
            width,
            data: Vec::new(),
            nonempty_zero_width: false,
        }
    }

    /// Slot index of a variable.
    pub fn slot(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| &**v == var)
    }

    /// Number of satisfying assignments.
    pub fn len(&self) -> usize {
        match self.data.len().checked_div(self.width) {
            Some(n) => n,
            // Zero-variable body: at most one (empty) assignment.
            None => usize::from(self.nonempty_zero_width),
        }
    }

    /// True iff the body has no satisfying assignment.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[Val] {
        &self.data[i * self.width..i * self.width + self.width]
    }

    /// Iterates rows as slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Val]> {
        // `chunks_exact(0)` panics, so special-case zero width.
        let width = self.width.max(1);
        let n = self.len();
        (0..n).map(move |i| {
            if self.width == 0 {
                &self.data[0..0]
            } else {
                &self.data[i * width..i * width + width]
            }
        })
    }

    /// Appends one row (caller guarantees dedup and width).
    pub fn push_row(&mut self, row: &[Val]) {
        debug_assert_eq!(row.len(), self.width);
        if self.width == 0 {
            self.nonempty_zero_width = true;
        }
        self.data.extend_from_slice(row);
    }

    /// Drops all rows, keeping the columns.
    pub fn clear(&mut self) {
        self.data.clear();
        self.nonempty_zero_width = false;
    }

    /// Projects the bindings onto head terms, deduplicating while preserving
    /// first-occurrence order.
    pub fn project(&self, head: &[Term]) -> Result<Vec<Tuple>> {
        let mut slots = Vec::with_capacity(head.len());
        for t in head {
            match t {
                Term::Var(v) => {
                    let s = self
                        .slot(v)
                        .ok_or_else(|| Error::UnboundVariable(v.to_string()))?;
                    slots.push(Ok(s));
                }
                Term::Const(c) => slots.push(Err(*c)),
            }
        }
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut buf: Vec<Val> = Vec::with_capacity(head.len());
        for row in self.rows() {
            buf.clear();
            buf.extend(slots.iter().map(|s| match s {
                Ok(idx) => row[*idx],
                Err(c) => *c,
            }));
            let tuple = Tuple::from_row(&buf);
            if seen.insert(tuple.clone()) {
                out.push(tuple);
            }
        }
        Ok(out)
    }
}

/// Evaluates a conjunctive query, returning deduplicated head tuples.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Result<Vec<Tuple>> {
    let bindings = evaluate_bindings(&q.atoms, &q.constraints, db)?;
    bindings.project(&q.head)
}

/// Evaluates a conjunctive query and keeps only **certain** answers: tuples
/// free of labeled nulls.
pub fn evaluate_certain(q: &ConjunctiveQuery, db: &Database) -> Result<Vec<Tuple>> {
    Ok(evaluate(q, db)?
        .into_iter()
        .filter(|t| !t.has_null())
        .collect())
}

/// Evaluates a body (atoms + constraints) over a local database.
///
/// Errors if an atom is peer-qualified, references an unknown relation, has
/// the wrong arity, or if a constraint mentions a variable bound by no atom.
pub fn evaluate_bindings(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &Database,
) -> Result<Bindings> {
    evaluate_bindings_restricted(atoms, constraints, db, None)
}

/// Semi-naive **delta** evaluation of a body: the bindings derivable using at
/// least one tuple inserted at or after the given per-relation `watermarks`
/// (missing entries mean 0, i.e. the whole relation is new).
///
/// Computed as the standard semi-naive expansion `⋃ᵢ full(a₁) ⋈ … ⋈ Δ(aᵢ) ⋈
/// … ⋈ full(aₖ)`: for each atom in turn, that atom ranges over the delta
/// rows only while every other atom ranges over the full current relation.
/// The union over-approximates the set of *genuinely new* bindings (a new
/// tuple may re-derive an old binding) but never misses one, and is always a
/// subset of the full evaluation — exactly what a monotone delta shipment
/// needs. Column order matches [`evaluate_bindings`] on the same body.
pub fn evaluate_bindings_since(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &Database,
    watermarks: &BTreeMap<Arc<str>, usize>,
) -> Result<Bindings> {
    let mut out: Option<Bindings> = None;
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, atom) in atoms.iter().enumerate() {
        if atom.qualifier.is_some() {
            return Err(Error::QualifiedAtom(atom.to_string()));
        }
        let watermark = watermarks.get(&atom.relation).copied().unwrap_or(0);
        if db.relation(&atom.relation)?.len() <= watermark {
            continue; // No new tuples in this atom's relation.
        }
        let delta = evaluate_bindings_restricted(atoms, constraints, db, Some((i, watermark)))?;
        match &mut out {
            None => {
                // The first delta is internally deduplicated already; just
                // seed the buckets.
                for (ri, row) in delta.rows().enumerate() {
                    seen.entry(fx_hash(row)).or_default().push(ri as u32);
                }
                out = Some(delta);
            }
            Some(acc) => {
                debug_assert_eq!(acc.vars, delta.vars);
                for row in delta.rows() {
                    push_dedup(acc, &mut seen, row);
                }
            }
        }
    }
    match out {
        Some(b) => Ok(b),
        // All relations unchanged: an empty table over the body's variables,
        // derived from the slot table alone — no evaluation needed.
        None => {
            let (vars, _) = validate_body(atoms, constraints, db)?;
            Ok(Bindings::empty(vars))
        }
    }
}

/// Appends `row` to `out` unless already present, using `seen` as a
/// hash-bucket membership structure over `out`'s rows (bucket entries are
/// row indices; collisions resolved by comparing slices). Returns `true`
/// iff the row was new. Allocation-free per accepted row beyond the flat
/// buffer growth — no per-row `Box<[Val]>` keys.
pub(crate) fn push_dedup(
    out: &mut Bindings,
    seen: &mut FxHashMap<u64, Vec<u32>>,
    row: &[Val],
) -> bool {
    let bucket = seen.entry(fx_hash(row)).or_default();
    if bucket.iter().any(|&i| out.row(i as usize) == row) {
        return false;
    }
    bucket.push(out.len() as u32);
    out.push_row(row);
    true
}

/// Per-position action when extending a binding row by one matched tuple.
enum PosAction {
    /// First occurrence of a variable in this atom: write `tuple[pos]` into
    /// the binding slot.
    Bind { pos: usize, slot: usize },
    /// Repeated occurrence within the same atom: the slot was just written,
    /// so compare.
    Recheck { pos: usize, slot: usize },
}

/// Validates a body against a database and returns its variable slot table:
/// variables in first-occurrence order plus the name → slot map. Shared by
/// this evaluator and the plan compiler ([`crate::query::plan`]).
///
/// Errors if an atom is peer-qualified, references an unknown relation, has
/// the wrong arity, or if a constraint mentions a variable bound by no atom.
#[allow(clippy::type_complexity)]
pub(crate) fn validate_body(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &Database,
) -> Result<(Vec<Arc<str>>, HashMap<Arc<str>, usize>)> {
    for a in atoms {
        if a.qualifier.is_some() {
            return Err(Error::QualifiedAtom(a.to_string()));
        }
        let schema = db.schema().relation_or_err(&a.relation)?;
        if schema.arity() != a.terms.len() {
            return Err(Error::ArityMismatch {
                relation: a.relation.to_string(),
                expected: schema.arity(),
                got: a.terms.len(),
            });
        }
    }
    let mut vars: Vec<Arc<str>> = Vec::new();
    let mut slot_of: HashMap<Arc<str>, usize> = HashMap::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Var(v) = t {
                if !slot_of.contains_key(v) {
                    slot_of.insert(v.clone(), vars.len());
                    vars.push(v.clone());
                }
            }
        }
    }
    for c in constraints {
        for v in c.variables() {
            if !slot_of.contains_key(&v) {
                return Err(Error::UnboundVariable(v.to_string()));
            }
        }
    }
    Ok((vars, slot_of))
}

/// Greedy atom ordering: repeatedly pick the atom with the most positions
/// bound by already chosen atoms (constants count as bound); tie-break on
/// smaller relation, then stable index. A `restricted` atom (semi-naive
/// delta position) is forced first: it ranges over only the delta suffix,
/// so starting from it keeps the join cost proportional to the delta
/// instead of the full extension. Shared with the plan compiler.
pub(crate) fn greedy_order(
    atoms: &[Atom],
    db: &Database,
    slot_of: &HashMap<Arc<str>, usize>,
    restricted: Option<usize>,
) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
    let mut statically_bound: HashSet<usize> = HashSet::new();
    if let Some(restricted) = restricted {
        if restricted < atoms.len() {
            remaining.retain(|&ai| ai != restricted);
            for t in &atoms[restricted].terms {
                if let Term::Var(v) = t {
                    statically_bound.insert(slot_of[v]);
                }
            }
            order.push(restricted);
        }
    }
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_score = (usize::MIN, usize::MAX, usize::MAX);
        for (k, &ai) in remaining.iter().enumerate() {
            let atom = &atoms[ai];
            let bound_positions = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => statically_bound.contains(&slot_of[v]),
                })
                .count();
            let size = db.relation(&atom.relation).map(|r| r.len()).unwrap_or(0);
            // Maximize bound positions; minimize relation size; then stable.
            let score = (bound_positions, size, ai);
            let better = score.0 > best_score.0
                || (score.0 == best_score.0
                    && (score.1 < best_score.1
                        || (score.1 == best_score.1 && score.2 < best_score.2)));
            if k == 0 || better {
                best = k;
                best_score = score;
            }
        }
        let ai = remaining.swap_remove(best);
        for t in &atoms[ai].terms {
            if let Term::Var(v) = t {
                statically_bound.insert(slot_of[v]);
            }
        }
        order.push(ai);
    }
    order
}

/// Shared implementation: evaluates a body, optionally restricting one atom
/// (by index) to the tuples at insertion positions `>= watermark`.
fn evaluate_bindings_restricted(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &Database,
    restrict: Option<(usize, usize)>,
) -> Result<Bindings> {
    let (vars, slot_of) = validate_body(atoms, constraints, db)?;
    let order = greedy_order(
        atoms,
        db,
        &slot_of,
        restrict.map(|(restricted, _)| restricted),
    );

    // -- join ----------------------------------------------------------------
    // One flat buffer of candidate bindings; unbound slots hold a harmless
    // placeholder (the stage-level `bound` set says which slots are live, so
    // the placeholder is never read).
    let nvars = vars.len();
    let width = nvars.max(1);
    let mut rows: Vec<Val> = vec![Val::Int(0); width]; // one empty binding
    let mut nrows: usize = 1;
    let mut bound: HashSet<usize> = HashSet::new();
    let mut applied: Vec<bool> = vec![false; constraints.len()];

    apply_ready_constraints(
        constraints,
        &mut applied,
        &bound,
        &slot_of,
        &mut rows,
        &mut nrows,
        width,
    );

    let mut key: Vec<Val> = Vec::new();
    for &ai in &order {
        let atom = &atoms[ai];
        let relation = db.relation(&atom.relation)?;

        // Classify positions: key (value determined by current bindings or a
        // constant), bind (new variable), recheck (variable repeated within
        // this atom).
        let mut key_positions: Vec<usize> = Vec::new();
        let mut actions: Vec<PosAction> = Vec::new();
        let mut bound_here: HashSet<usize> = HashSet::new();
        for (pos, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Const(_) => key_positions.push(pos),
                Term::Var(v) => {
                    let slot = slot_of[v];
                    if bound.contains(&slot) {
                        key_positions.push(pos);
                    } else if bound_here.insert(slot) {
                        actions.push(PosAction::Bind { pos, slot });
                    } else {
                        actions.push(PosAction::Recheck { pos, slot });
                    }
                }
            }
        }

        // Hash the relation on the key positions once: key hash → candidate
        // positions (collisions resolved by re-comparing the key columns at
        // probe time — no per-row `Box<[Val]>` keys). A restricted atom
        // (semi-naive delta position) only sees its post-watermark suffix.
        let min_pos = match restrict {
            Some((atom_idx, watermark)) if atom_idx == ai => watermark,
            _ => 0,
        };
        let mut index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (ri, row) in relation.iter().enumerate().skip(min_pos) {
            let hash = key_hash(key_positions.iter().map(|&p| &row[p]));
            index.entry(hash).or_default().push(ri as u32);
        }

        let mut next: Vec<Val> = Vec::new();
        let mut next_n: usize = 0;
        for bi in 0..nrows {
            let binding = &rows[bi * width..bi * width + width];
            key.clear();
            key.extend(key_positions.iter().map(|&p| match &atom.terms[p] {
                Term::Const(c) => *c,
                Term::Var(v) => binding[slot_of[v]],
            }));
            let Some(matches) = index.get(&key_hash(key.iter())) else {
                continue;
            };
            'rows: for &ri in matches {
                let tuple = relation.row(ri as usize);
                // Hash-collision guard: the key columns must really match.
                if key_positions
                    .iter()
                    .zip(key.iter())
                    .any(|(&p, kv)| tuple[p] != *kv)
                {
                    continue;
                }
                let start = next.len();
                next.extend_from_slice(binding);
                for act in &actions {
                    match *act {
                        PosAction::Bind { pos, slot } => next[start + slot] = tuple[pos],
                        PosAction::Recheck { pos, slot } => {
                            if next[start + slot] != tuple[pos] {
                                next.truncate(start);
                                continue 'rows;
                            }
                        }
                    }
                }
                next_n += 1;
            }
        }
        rows = next;
        nrows = next_n;

        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound.insert(slot_of[v]);
            }
        }
        apply_ready_constraints(
            constraints,
            &mut applied,
            &bound,
            &slot_of,
            &mut rows,
            &mut nrows,
            width,
        );
        if nrows == 0 {
            break;
        }
    }

    // Any constraint still unapplied (possible only when `rows` emptied early
    // or the body had no atoms) is applied now if ground, else it already
    // failed validation above.
    apply_ready_constraints(
        constraints,
        &mut applied,
        &bound,
        &slot_of,
        &mut rows,
        &mut nrows,
        width,
    );

    // -- materialise ---------------------------------------------------------
    let mut out = Bindings::empty(vars);
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for i in 0..nrows {
        let row = &rows[i * width..i * width + width];
        let row = &row[..nvars]; // drop the width-1 padding of a 0-var body
        push_dedup(&mut out, &mut seen, row);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn apply_ready_constraints(
    constraints: &[Constraint],
    applied: &mut [bool],
    bound: &HashSet<usize>,
    slot_of: &HashMap<Arc<str>, usize>,
    rows: &mut Vec<Val>,
    nrows: &mut usize,
    width: usize,
) {
    for (ci, c) in constraints.iter().enumerate() {
        if applied[ci] {
            continue;
        }
        let ready = c.variables().iter().all(|v| bound.contains(&slot_of[v]));
        if !ready {
            continue;
        }
        applied[ci] = true;
        // Compact in place, keeping rows that certainly satisfy `c`.
        let mut keep = 0usize;
        for i in 0..*nrows {
            let row = &rows[i * width..i * width + width];
            let lhs = term_value(&c.lhs, row, slot_of);
            let rhs = term_value(&c.rhs, row, slot_of);
            if c.op.certainly_holds(&lhs, &rhs) {
                if keep != i {
                    rows.copy_within(i * width..i * width + width, keep * width);
                }
                keep += 1;
            }
        }
        rows.truncate(keep * width);
        *nrows = keep;
    }
}

fn term_value(t: &Term, row: &[Val], slot_of: &HashMap<Arc<str>, usize>) -> Val {
    match t {
        Term::Const(c) => *c,
        Term::Var(v) => row[slot_of[v]],
    }
}

/// Evaluates the comparison `lhs op rhs` over two ground values — exposed for
/// reuse by the chase and the distributed layer.
pub fn compare(op: CmpOp, lhs: &Val, rhs: &Val) -> bool {
    op.certainly_holds(lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parser::parse_query;
    use crate::schema::DatabaseSchema;

    fn db_with_b(pairs: &[(i64, i64)]) -> Database {
        let mut db = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        for &(x, y) in pairs {
            db.insert_values("b", vec![Val::Int(x), Val::Int(y)])
                .unwrap();
        }
        db
    }

    fn row_set(b: &Bindings) -> HashSet<Vec<Val>> {
        b.rows().map(<[Val]>::to_vec).collect()
    }

    #[test]
    fn transitive_join() {
        let db = db_with_b(&[(1, 2), (2, 3), (3, 4)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(
            ans,
            vec![
                Tuple::new(vec![Val::Int(1), Val::Int(3)]),
                Tuple::new(vec![Val::Int(2), Val::Int(4)]),
            ]
        );
    }

    #[test]
    fn self_join_with_neq_matches_paper_rule_r4_shape() {
        let db = db_with_b(&[(1, 2), (1, 3), (2, 5)]);
        let q = parse_query("q(X, Y) :- b(X, Y), b(X, Z), Y != Z").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(
            ans,
            vec![
                Tuple::new(vec![Val::Int(1), Val::Int(2)]),
                Tuple::new(vec![Val::Int(1), Val::Int(3)]),
            ]
        );
    }

    #[test]
    fn constants_in_atoms_filter() {
        let db = db_with_b(&[(1, 2), (3, 2), (3, 4)]);
        let q = parse_query("q(X) :- b(X, 2)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(
            ans,
            vec![Tuple::new(vec![Val::Int(1)]), Tuple::new(vec![Val::Int(3)])]
        );
    }

    #[test]
    fn repeated_variable_within_atom() {
        let db = db_with_b(&[(1, 1), (1, 2), (7, 7)]);
        let q = parse_query("q(X) :- b(X, X)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(
            ans,
            vec![Tuple::new(vec![Val::Int(1)]), Tuple::new(vec![Val::Int(7)])]
        );
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let db = db_with_b(&[(1, 2), (3, 4)]);
        let q = parse_query("q(X, U) :- b(X, Y), b(U, V)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn duplicate_answers_are_deduplicated() {
        let db = db_with_b(&[(1, 2), (1, 3)]);
        let q = parse_query("q(X) :- b(X, Y)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans, vec![Tuple::new(vec![Val::Int(1)])]);
    }

    #[test]
    fn empty_relation_gives_empty_answer() {
        let db = db_with_b(&[]);
        let q = parse_query("q(X) :- b(X, Y)").unwrap();
        assert!(evaluate(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn constraints_on_constants() {
        let db = db_with_b(&[(1, 2)]);
        let q = parse_query("q(X) :- b(X, Y), Y < 10").unwrap();
        assert_eq!(evaluate(&q, &db).unwrap().len(), 1);
        let q = parse_query("q(X) :- b(X, Y), Y > 10").unwrap();
        assert!(evaluate(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn qualified_atom_rejected_by_local_eval() {
        let db = db_with_b(&[]);
        let atom = crate::query::parser::parse_atom("B:b(X, Y)").unwrap();
        let err = evaluate_bindings(&[atom], &[], &db).unwrap_err();
        assert!(matches!(err, Error::QualifiedAtom(_)));
    }

    #[test]
    fn unknown_relation_rejected() {
        let db = db_with_b(&[]);
        let q = parse_query("q(X) :- zzz(X)").unwrap();
        assert!(matches!(evaluate(&q, &db), Err(Error::UnknownRelation(_))));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = db_with_b(&[]);
        let q = parse_query("q(X) :- b(X)").unwrap();
        assert!(matches!(
            evaluate(&q, &db),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn nulls_join_only_with_themselves() {
        use crate::value::NullFactory;
        let mut db = db_with_b(&[]);
        let mut nf = NullFactory::new(1);
        let n1 = nf.fresh();
        let n2 = nf.fresh();
        db.insert_values("b", vec![Val::Int(1), n1]).unwrap();
        db.insert_values("b", vec![n1, Val::Int(9)]).unwrap();
        db.insert_values("b", vec![n2, Val::Int(8)]).unwrap();
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        // 1 -> n1 -> 9 joins (same null); n2 chain does not.
        assert_eq!(ans, vec![Tuple::new(vec![Val::Int(1), Val::Int(9)])]);
    }

    #[test]
    fn certain_answers_drop_null_tuples() {
        use crate::value::NullFactory;
        let mut db = db_with_b(&[(1, 2)]);
        let mut nf = NullFactory::new(1);
        db.insert_values("b", vec![Val::Int(3), nf.fresh()])
            .unwrap();
        let q = parse_query("q(X, Y) :- b(X, Y)").unwrap();
        assert_eq!(evaluate(&q, &db).unwrap().len(), 2);
        let certain = evaluate_certain(&q, &db).unwrap();
        assert_eq!(certain, vec![Tuple::new(vec![Val::Int(1), Val::Int(2)])]);
    }

    #[test]
    fn constraints_involving_nulls_are_unknown() {
        use crate::value::NullFactory;
        let mut db = db_with_b(&[]);
        let mut nf = NullFactory::new(1);
        db.insert_values("b", vec![Val::Int(1), nf.fresh()])
            .unwrap();
        // Y != 5 is unknown when Y is a null — excluded.
        let q = parse_query("q(X) :- b(X, Y), Y != 5").unwrap();
        assert!(evaluate(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn string_and_int_columns_mix() {
        let mut db = Database::new(
            DatabaseSchema::parse("p(id: int, name: str). w(name: str, year: int).").unwrap(),
        );
        db.insert_values("p", vec![Val::Int(1), Val::str("ana")])
            .unwrap();
        db.insert_values("w", vec![Val::str("ana"), Val::Int(2001)])
            .unwrap();
        db.insert_values("w", vec![Val::str("bob"), Val::Int(2002)])
            .unwrap();
        let q = parse_query("q(I, Y) :- p(I, N), w(N, Y)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans, vec![Tuple::new(vec![Val::Int(1), Val::Int(2001)])]);
    }

    #[test]
    fn string_order_constraints_resolve_through_the_catalog() {
        let mut db = Database::new(DatabaseSchema::parse("w(name: str).").unwrap());
        db.insert_values("w", vec![Val::str("zeta")]).unwrap();
        db.insert_values("w", vec![Val::str("alpha")]).unwrap();
        let q = parse_query("q(N) :- w(N), N < 'm'").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans, vec![Tuple::new(vec![Val::str("alpha")])]);
    }

    #[test]
    fn delta_bindings_cover_exactly_the_new_derivations() {
        let mut db = db_with_b(&[(1, 2), (2, 3)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let before = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
        let w = db.watermarks();

        // Nothing new: empty delta over the same columns.
        let delta = evaluate_bindings_since(&q.atoms, &q.constraints, &db, &w).unwrap();
        assert_eq!(delta.vars, before.vars);
        assert!(delta.is_empty());

        // Insert b(3,4): new chains 2→3→4 must appear; both delta positions
        // (new-as-first-atom and new-as-second-atom) are exercised.
        db.insert_values("b", vec![Val::Int(3), Val::Int(4)])
            .unwrap();
        db.insert_values("b", vec![Val::Int(0), Val::Int(1)])
            .unwrap();
        let delta = evaluate_bindings_since(&q.atoms, &q.constraints, &db, &w).unwrap();
        let after = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
        // The delta is a subset of the full evaluation …
        let full = row_set(&after);
        let delta_rows = row_set(&delta);
        assert!(delta_rows.iter().all(|r| full.contains(r)));
        // … and (old ∪ delta) equals the full evaluation.
        let mut union = row_set(&before);
        union.extend(delta_rows.iter().cloned());
        assert_eq!(union, full);
        // The genuinely new chains are in the delta.
        assert!(delta_rows.contains(&vec![Val::Int(2), Val::Int(3), Val::Int(4)]));
        assert!(delta_rows.contains(&vec![Val::Int(0), Val::Int(1), Val::Int(2)]));
    }

    #[test]
    fn delta_bindings_respect_constraints() {
        let mut db = db_with_b(&[(1, 2)]);
        let q = parse_query("q(X, Y) :- b(X, Y), X < Y").unwrap();
        let w = db.watermarks();
        db.insert_values("b", vec![Val::Int(5), Val::Int(3)])
            .unwrap();
        db.insert_values("b", vec![Val::Int(3), Val::Int(5)])
            .unwrap();
        let delta = evaluate_bindings_since(&q.atoms, &q.constraints, &db, &w).unwrap();
        let rows: Vec<Vec<Val>> = delta.rows().map(<[Val]>::to_vec).collect();
        assert_eq!(rows, vec![vec![Val::Int(3), Val::Int(5)]]);
    }

    #[test]
    fn delta_bindings_missing_watermark_means_whole_relation_is_new() {
        let db = db_with_b(&[(1, 2), (2, 3)]);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        let delta =
            evaluate_bindings_since(&q.atoms, &q.constraints, &db, &BTreeMap::new()).unwrap();
        let full = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
        assert_eq!(row_set(&delta), row_set(&full));
    }

    #[test]
    fn head_constants_are_emitted() {
        let db = db_with_b(&[(1, 2)]);
        let q = parse_query("q(X, 'tag') :- b(X, Y)").unwrap();
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans, vec![Tuple::new(vec![Val::Int(1), Val::str("tag")])]);
    }

    #[test]
    fn all_constant_body_yields_one_empty_binding() {
        let db = db_with_b(&[(1, 2)]);
        let q = parse_query("q(1) :- b(1, 2)").unwrap();
        let b = evaluate_bindings(&q.atoms, &q.constraints, &db).unwrap();
        assert_eq!(b.len(), 1);
        let ans = evaluate(&q, &db).unwrap();
        assert_eq!(ans, vec![Tuple::new(vec![Val::Int(1)])]);
        // Unsatisfied constant body: zero bindings.
        let q = parse_query("q(1) :- b(8, 9)").unwrap();
        assert!(evaluate(&q, &db).unwrap().is_empty());
    }
}
