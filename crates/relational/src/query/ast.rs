//! Abstract syntax for conjunctive queries and rule formulas.

use crate::value::{Val, Value};
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, named as in the source text (`X`, `Year`, …).
    Var(Arc<str>),
    /// A constant value.
    Const(Val),
}

// Terms travel inside rules and query fragments (`AddRule`,
// `BroadcastRules`, `Query`, `WaveQuery` …). Unlike answer rows — which
// amortise their symbols through per-pipe dictionary deltas — a rule is a
// one-shot, tiny payload with no delta channel, so its constants serialize
// in the **boundary** form, string inline (`{"Const":{"Str":"open"}}`,
// byte-identical to the pre-interning shape): any receiver can resolve it
// without prior dictionary sync, and the wire accounting pays for the
// string honestly. Deserialization re-interns.
impl Serialize for Term {
    fn to_content(&self) -> Content {
        match self {
            Term::Var(v) => Content::Map(vec![("Var".to_string(), v.to_content())]),
            Term::Const(c) => Content::Map(vec![("Const".to_string(), c.to_value().to_content())]),
        }
    }
}

impl Deserialize for Term {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .filter(|m| m.len() == 1)
            .ok_or_else(|| DeError::expected("single-key object", "Term"))?;
        let (k, v) = &m[0];
        match k.as_str() {
            "Var" => Ok(Term::Var(Arc::<str>::from_content(v)?)),
            "Const" => Ok(Term::Const(Value::from_content(v)?.to_val())),
            other => Err(DeError::custom(format!(
                "unknown variant `{other}` of Term"
            ))),
        }
    }
}

impl Term {
    /// Convenience constructor for variables.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Arc::from(name.as_ref()))
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&Arc<str>> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `r(t1, …, tn)`, optionally qualified with the peer it
/// refers to (`B:b(X,Y)` — the paper's `j : b(x,y)` notation).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Peer qualifier, if written (`B` in `B:b(X,Y)`). `None` for purely
    /// local formulas.
    pub qualifier: Option<Arc<str>>,
    /// Relation name.
    pub relation: Arc<str>,
    /// Argument terms, one per column.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an unqualified atom.
    pub fn new(relation: impl AsRef<str>, terms: Vec<Term>) -> Self {
        Atom {
            qualifier: None,
            relation: Arc::from(relation.as_ref()),
            terms,
        }
    }

    /// Builds a qualified atom (`qualifier:relation(terms)`).
    pub fn qualified(
        qualifier: impl AsRef<str>,
        relation: impl AsRef<str>,
        terms: Vec<Term>,
    ) -> Self {
        Atom {
            qualifier: Some(Arc::from(qualifier.as_ref())),
            relation: Arc::from(relation.as_ref()),
            terms,
        }
    }

    /// Returns a copy with the qualifier removed (used when routing a
    /// sub-query to the peer that owns it).
    pub fn unqualified(&self) -> Atom {
        Atom {
            qualifier: None,
            relation: self.relation.clone(),
            terms: self.terms.clone(),
        }
    }

    /// Variables occurring in this atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<Arc<str>> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write!(f, "{q}:")?;
        }
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operator of a built-in predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison under **certain-answer semantics** over
    /// naive tables: a labeled null is an unknown constant, so a comparison
    /// involving nulls holds only when it holds under *every* valuation.
    ///
    /// Concretely: two occurrences of the *same* null are certainly equal;
    /// any other comparison touching a null is unknown and therefore does
    /// not hold. This makes built-in filtering sound for certain answers of
    /// positive queries.
    pub fn certainly_holds(self, lhs: &Val, rhs: &Val) -> bool {
        use Val::Null;
        match (lhs, rhs) {
            (Null(a), Null(b)) => match self {
                CmpOp::Eq => a == b,
                CmpOp::Le | CmpOp::Ge => a == b,
                _ => false,
            },
            (Null(_), _) | (_, Null(_)) => false,
            _ => match self {
                CmpOp::Eq => lhs == rhs,
                CmpOp::Neq => lhs != rhs,
                CmpOp::Lt => lhs < rhs,
                CmpOp::Le => lhs <= rhs,
                CmpOp::Gt => lhs > rhs,
                CmpOp::Ge => lhs >= rhs,
            },
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A built-in constraint `t1 op t2` (e.g. `X != Z` in rule r4 of the paper's
/// running example).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Constraint {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl Constraint {
    /// Variables mentioned by the constraint.
    pub fn variables(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        for t in [&self.lhs, &self.rhs] {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A conjunctive query with built-ins:
/// `name(head terms) :- atom, …, constraint, …`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Name of the query (head predicate symbol).
    pub name: Arc<str>,
    /// Head terms; variables must be bound by the body (safe queries).
    pub head: Vec<Term>,
    /// Relational body atoms.
    pub atoms: Vec<Atom>,
    /// Built-in constraints.
    pub constraints: Vec<Constraint>,
}

impl ConjunctiveQuery {
    /// All distinct variables of the body atoms, in first-occurrence order.
    pub fn body_variables(&self) -> Vec<Arc<str>> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.atoms {
            for v in a.variables() {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.constraints {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_variables_first_occurrence_order() {
        let a = Atom::new("r", vec![Term::var("Y"), Term::var("X"), Term::var("Y")]);
        let vars = a.variables();
        assert_eq!(vars.len(), 2);
        assert_eq!(&*vars[0], "Y");
        assert_eq!(&*vars[1], "X");
    }

    #[test]
    fn cmp_certain_semantics_on_constants() {
        assert!(CmpOp::Eq.certainly_holds(&Val::Int(1), &Val::Int(1)));
        assert!(CmpOp::Neq.certainly_holds(&Val::Int(1), &Val::Int(2)));
        assert!(CmpOp::Lt.certainly_holds(&Val::Int(1), &Val::Int(2)));
        assert!(CmpOp::Ge.certainly_holds(&Val::str("b"), &Val::str("a")));
        assert!(!CmpOp::Gt.certainly_holds(&Val::Int(1), &Val::Int(2)));
    }

    #[test]
    fn cmp_certain_semantics_on_nulls() {
        use crate::value::NullId;
        let n1 = Val::Null(NullId::new(0, 1));
        let n2 = Val::Null(NullId::new(0, 2));
        // Same null: certainly equal.
        assert!(CmpOp::Eq.certainly_holds(&n1, &n1));
        assert!(CmpOp::Le.certainly_holds(&n1, &n1));
        assert!(!CmpOp::Neq.certainly_holds(&n1, &n1));
        // Distinct nulls / null vs constant: unknown, never holds.
        assert!(!CmpOp::Eq.certainly_holds(&n1, &n2));
        assert!(!CmpOp::Neq.certainly_holds(&n1, &n2));
        assert!(!CmpOp::Lt.certainly_holds(&n1, &Val::Int(3)));
        assert!(!CmpOp::Eq.certainly_holds(&Val::Int(3), &n1));
    }

    #[test]
    fn display_round_trip_shape() {
        let q = ConjunctiveQuery {
            name: Arc::from("q"),
            head: vec![Term::var("X"), Term::var("Z")],
            atoms: vec![
                Atom::new("b", vec![Term::var("X"), Term::var("Y")]),
                Atom::new("b", vec![Term::var("Y"), Term::var("Z")]),
            ],
            constraints: vec![Constraint {
                lhs: Term::var("X"),
                op: CmpOp::Neq,
                rhs: Term::var("Z"),
            }],
        };
        assert_eq!(q.to_string(), "q(X, Z) :- b(X, Y), b(Y, Z), X != Z");
    }

    #[test]
    fn term_constants_serialize_with_strings_inline() {
        // Rule constants must be self-describing on the wire (no dictionary
        // channel exists for them) — and byte-identical to the pre-interning
        // form.
        let t = Term::Const(Val::str("inline-const"));
        let text = serde_json::to_string(&t).unwrap();
        assert_eq!(text, "{\"Const\":{\"Str\":\"inline-const\"}}");
        let back: Term = serde_json::from_str(&text).unwrap();
        assert_eq!(back, t);
        let v = Term::var("X");
        let back: Term = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let i = Term::Const(Val::Int(-3));
        let back: Term = serde_json::from_str(&serde_json::to_string(&i).unwrap()).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn qualified_atom_display() {
        let a = Atom::qualified("B", "b", vec![Term::var("X")]);
        assert_eq!(a.to_string(), "B:b(X)");
        assert_eq!(a.unqualified().to_string(), "b(X)");
    }
}
