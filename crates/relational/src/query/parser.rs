//! Text parser for queries, atoms and rule-shaped implications.
//!
//! Grammar (whitespace-insensitive, `#` comments to end of line):
//!
//! ```text
//! query       := head ":-" body
//! head        := ident "(" terms ")"
//! body        := (atom | constraint) ("," (atom | constraint))*
//! atom        := (ident ":")? ident "(" terms ")"
//! constraint  := term cmp term
//! cmp         := "=" | "!=" | "<" | "<=" | ">" | ">="
//! term        := UPPER-ident            (variable)
//!              | integer | 'string'     (constant)
//! implication := body "=>" atom ("," atom)*
//! ```
//!
//! Variables start with an uppercase letter or `_`; everything else
//! lowercase-initial is a relation/query name. This matches the notation of
//! the paper's running example (`B:b(X,Y), b(X,Z), X != Z => A:a(X,Y)`).

use crate::error::{Error, Result};
use crate::query::ast::{Atom, CmpOp, ConjunctiveQuery, Constraint, Term};
use crate::value::Val;
use std::sync::Arc;

/// A parsed implication `body => head`: the shape of a coordination rule
/// before peer names are resolved (that resolution lives in `p2p-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Implication {
    /// Body atoms (possibly qualified with peer names).
    pub body: Vec<Atom>,
    /// Built-in constraints over body variables.
    pub constraints: Vec<Constraint>,
    /// Head atoms (possibly qualified); variables absent from the body are
    /// existential.
    pub head: Vec<Atom>,
}

/// Parses a conjunctive query, e.g. `q(X, Z) :- b(X, Y), b(Y, Z), X != Z`.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery> {
    let mut p = P::new(input);
    let (name, head_terms, qualifier) = p.head_atom()?;
    if let Some(q) = qualifier {
        return Err(p.err_at(format!("query head must not be qualified (got `{q}:`)")));
    }
    p.ws();
    p.expect_str(":-")?;
    let (atoms, constraints) = p.body()?;
    p.ws();
    p.eof()?;
    let q = ConjunctiveQuery {
        name,
        head: head_terms,
        atoms,
        constraints,
    };
    check_safety(&q)?;
    Ok(q)
}

/// Parses a single (possibly qualified) atom, e.g. `B:b(X, 'v')`.
pub fn parse_atom(input: &str) -> Result<Atom> {
    let mut p = P::new(input);
    let atom = p.atom()?;
    p.ws();
    p.eof()?;
    Ok(atom)
}

/// Parses an implication `body => head` (coordination-rule shape), e.g.
/// `B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)`.
pub fn parse_implication(input: &str) -> Result<Implication> {
    let mut p = P::new(input);
    let (body, constraints) = p.body()?;
    p.ws();
    p.expect_str("=>")?;
    let mut head = Vec::new();
    loop {
        p.ws();
        head.push(p.atom()?);
        p.ws();
        if p.peek() == Some(b',') {
            p.pos += 1;
        } else {
            break;
        }
    }
    p.ws();
    p.eof()?;
    if body.is_empty() {
        return Err(Error::Parse {
            offset: 0,
            message: "implication needs at least one body atom".into(),
        });
    }
    Ok(Implication {
        body,
        constraints,
        head,
    })
}

/// Safety check: every head variable and every constraint variable must be
/// bound by a body atom.
fn check_safety(q: &ConjunctiveQuery) -> Result<()> {
    let bound: Vec<Arc<str>> = q.body_variables();
    for t in &q.head {
        if let Term::Var(v) = t {
            if !bound.contains(v) {
                return Err(Error::UnboundVariable(v.to_string()));
            }
        }
    }
    for c in &q.constraints {
        for v in c.variables() {
            if !bound.contains(&v) {
                return Err(Error::UnboundVariable(v.to_string()));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Recursive-descent machinery
// ---------------------------------------------------------------------------

/// `(relation name, terms, qualifier)` of a parsed atom.
type ParsedAtomParts = (Arc<str>, Vec<Term>, Option<Arc<str>>);

struct P<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Self {
        P { input, pos: 0 }
    }

    fn err_at(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn ws(&mut self) {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos + 1).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn expect(&mut self, ch: u8) -> Result<()> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected `{}`", ch as char)))
        }
    }

    fn expect_str(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err_at(format!("expected `{s}`")))
        }
    }

    fn eof(&mut self) -> Result<()> {
        self.ws();
        if self.pos == self.input.len() {
            Ok(())
        } else {
            Err(self.err_at("unexpected trailing input"))
        }
    }

    fn ident(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
            while self.pos < bytes.len()
                && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
            {
                self.pos += 1;
            }
            Ok(&self.input[start..self.pos])
        } else {
            Err(self.err_at("expected identifier"))
        }
    }

    /// `name "(" terms ")"` with an optional qualifier; returns
    /// `(name, terms, qualifier)`.
    fn head_atom(&mut self) -> Result<ParsedAtomParts> {
        self.ws();
        let first = self.ident()?;
        self.ws();
        let (qualifier, name) = if self.peek() == Some(b':') && self.peek2() != Some(b'-') {
            self.pos += 1;
            self.ws();
            let n = self.ident()?;
            (Some(Arc::from(first)), Arc::from(n))
        } else {
            (None, Arc::<str>::from(first))
        };
        self.ws();
        self.expect(b'(')?;
        let terms = self.terms()?;
        Ok((name, terms, qualifier))
    }

    fn atom(&mut self) -> Result<Atom> {
        let (name, terms, qualifier) = self.head_atom()?;
        Ok(Atom {
            qualifier,
            relation: name,
            terms,
        })
    }

    /// Comma-separated `term` list up to and including the closing `)`.
    fn terms(&mut self) -> Result<Vec<Term>> {
        let mut out = Vec::new();
        loop {
            self.ws();
            if self.peek() == Some(b')') {
                self.pos += 1;
                break;
            }
            out.push(self.term()?);
            self.ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else if self.peek() != Some(b')') {
                return Err(self.err_at("expected `,` or `)` in term list"));
            }
        }
        Ok(out)
    }

    fn term(&mut self) -> Result<Term> {
        self.ws();
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let start = self.pos;
                let bytes = self.input.as_bytes();
                while self.pos < bytes.len() && bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos == bytes.len() {
                    return Err(self.err_at("unterminated string literal"));
                }
                let s = &self.input[start..self.pos];
                self.pos += 1;
                Ok(Term::Const(Val::str(s)))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                let bytes = self.input.as_bytes();
                while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = &self.input[start..self.pos];
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err_at(format!("invalid integer `{text}`")))?;
                Ok(Term::Const(Val::Int(n)))
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let name = self.ident()?;
                let first = name.as_bytes()[0];
                if first.is_ascii_uppercase() || first == b'_' {
                    Ok(Term::Var(Arc::from(name)))
                } else {
                    // Lowercase bare word: treat as string constant, matching
                    // common Datalog usage (`status(X, open)`).
                    Ok(Term::Const(Val::str(name)))
                }
            }
            _ => Err(self.err_at("expected term (variable, integer or 'string')")),
        }
    }

    /// Body: atoms and constraints separated by commas, terminated by end of
    /// input or by `=>` (not consumed).
    fn body(&mut self) -> Result<(Vec<Atom>, Vec<Constraint>)> {
        let mut atoms = Vec::new();
        let mut constraints = Vec::new();
        loop {
            self.ws();
            if self.pos == self.input.len() || self.starts_with("=>") {
                break;
            }
            // Disambiguate: an item is an atom iff an identifier is followed
            // by `(` or `:ident(`. Otherwise it is a constraint.
            let save = self.pos;
            if let Ok(atom) = self.try_atom() {
                atoms.push(atom);
            } else {
                self.pos = save;
                constraints.push(self.constraint()?);
            }
            self.ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok((atoms, constraints))
    }

    fn try_atom(&mut self) -> Result<Atom> {
        let save = self.pos;
        let atom = self.atom();
        if atom.is_err() {
            self.pos = save;
        }
        atom
    }

    fn constraint(&mut self) -> Result<Constraint> {
        let lhs = self.term()?;
        self.ws();
        let op = if self.starts_with("!=") {
            self.pos += 2;
            CmpOp::Neq
        } else if self.starts_with("<=") {
            self.pos += 2;
            CmpOp::Le
        } else if self.starts_with(">=") {
            self.pos += 2;
            CmpOp::Ge
        } else if self.peek() == Some(b'<') {
            self.pos += 1;
            CmpOp::Lt
        } else if self.peek() == Some(b'>') {
            self.pos += 1;
            CmpOp::Gt
        } else if self.peek() == Some(b'=') {
            self.pos += 1;
            CmpOp::Eq
        } else {
            return Err(self.err_at("expected comparison operator"));
        };
        let rhs = self.term()?;
        Ok(Constraint { lhs, op, rhs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_query() {
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        assert_eq!(&*q.name, "q");
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.atoms.len(), 2);
        assert!(q.constraints.is_empty());
    }

    #[test]
    fn parse_query_with_constraints_and_constants() {
        let q = parse_query("q(X) :- r(X, Y, 'tag'), s(Y, 3), X != Y, Y >= 2").unwrap();
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.atoms[0].terms[2], Term::Const(Val::str("tag")));
        assert_eq!(q.atoms[1].terms[1], Term::Const(Val::Int(3)));
        assert_eq!(q.constraints[1].op, CmpOp::Ge);
    }

    #[test]
    fn parse_rejects_unsafe_head() {
        let e = parse_query("q(X, W) :- b(X, Y)").unwrap_err();
        assert_eq!(e, Error::UnboundVariable("W".to_string()));
    }

    #[test]
    fn parse_rejects_unsafe_constraint() {
        let e = parse_query("q(X) :- b(X, Y), W != X").unwrap_err();
        assert_eq!(e, Error::UnboundVariable("W".to_string()));
    }

    #[test]
    fn parse_implication_of_paper_rule_r4() {
        // r4 : B : b(X,Y), b(X,Z), X != Z → A : a(X,Y)
        let imp = parse_implication("B:b(X,Y), B:b(X,Z), X != Z => A:a(X,Y)").unwrap();
        assert_eq!(imp.body.len(), 2);
        assert_eq!(imp.body[0].qualifier.as_deref(), Some("B"));
        assert_eq!(imp.constraints.len(), 1);
        assert_eq!(imp.head.len(), 1);
        assert_eq!(imp.head[0].qualifier.as_deref(), Some("A"));
    }

    #[test]
    fn parse_implication_with_existential_head() {
        // r2 : B : b(X,Y), b(Y,Z) → C : c(X,Z) — here with an extra head
        // variable W that is existential.
        let imp = parse_implication("B:b(X,Y) => C:c(X,W)").unwrap();
        assert_eq!(imp.head[0].terms[1], Term::var("W"));
    }

    #[test]
    fn parse_multi_head_implication() {
        let imp = parse_implication("S:art(I, T, N) => pub(I, T), author(I, N)").unwrap();
        assert_eq!(imp.head.len(), 2);
        assert!(imp.head[0].qualifier.is_none());
    }

    #[test]
    fn lowercase_bare_words_are_string_constants() {
        let q = parse_query("q(X) :- status(X, open)").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::Const(Val::str("open")));
    }

    #[test]
    fn negative_integers_parse() {
        let q = parse_query("q(X) :- r(X, -5)").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::Const(Val::Int(-5)));
    }

    #[test]
    fn underscore_initial_is_variable() {
        let q = parse_query("q(X) :- r(X, _y)").unwrap();
        assert_eq!(q.atoms[0].terms[1], Term::var("_y"));
    }

    #[test]
    fn display_parse_round_trip() {
        let text = "q(X, Z) :- b(X, Y), b(Y, Z), X != Z";
        let q = parse_query(text).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = parse_query("q(X) :- r(X,").unwrap_err();
        match e {
            Error::Parse { offset, .. } => assert!(offset >= 9),
            other => panic!("unexpected: {other:?}"),
        }
        // An empty body leaves the head variable unbound.
        assert_eq!(
            parse_query("q(X) :- ").unwrap_err(),
            Error::UnboundVariable("X".to_string())
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("q(X) :- r(X) extra").is_err());
        assert!(parse_atom("r(X))").is_err());
    }
}
