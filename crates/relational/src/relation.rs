//! A single relation instance: columnar, deduplicated, insertion-ordered
//! rows with per-column hash indexes.
//!
//! Storage is one flat `Vec<Val>` in row-major order with stride = arity —
//! a row is a contiguous 16-byte-per-field slice, cache-friendly to scan and
//! free of per-row allocations. Membership (deduplication) is a hash of the
//! row slice mapping to candidate positions; there is **no** second
//! serialized copy of the data (the old `present: HashSet<Tuple>` both
//! doubled memory and doubled every snapshot on disk).
//!
//! Insertion order is preserved so that (a) iteration is deterministic and
//! (b) *watermarks* work: the update protocol's delta optimization sends a
//! subscriber only the rows inserted after the watermark recorded at the
//! previous answer, which is exactly the "delta optimization … to minimize
//! data transfer and duplication" the paper sketches in Section 3.

use crate::fxhash::{fx_hash, FxHashMap};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Val;
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::fmt;

/// Hashes one row slice (used for membership buckets).
fn row_hash(row: &[Val]) -> u64 {
    fx_hash(row)
}

/// Hashes a join key, value by value. Index maintenance (projecting a stored
/// row onto the key columns) and probes (projecting a partial binding) must
/// agree on this hash without materializing the projected slice, so both
/// feed the values through one raw [`crate::fxhash::FxHasher`].
pub fn key_hash<'a>(vals: impl IntoIterator<Item = &'a Val>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fxhash::FxHasher::default();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// A persistent hash index over a subset of columns: key hash → candidate
/// row positions. Collisions are possible; callers must verify the key
/// columns of each candidate against the probe values (which the join loop
/// needs anyway for repeated-variable rechecks).
///
/// Built lazily by [`Relation::ensure_index`] and maintained incrementally
/// by [`Relation::insert_row`], so repeated evaluation never rebuilds it.
#[derive(Debug, Clone, Default)]
pub struct Index {
    cols: Box<[usize]>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl Index {
    /// The indexed column positions, in probe order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Candidate row positions whose key columns hash to `hash`.
    pub fn candidates(&self, hash: u64) -> &[u32] {
        self.buckets.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A relation instance.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    /// Column count, cached (`schema.arity()`).
    arity: usize,
    /// Row-major flat storage: row `i` is `data[i*arity .. (i+1)*arity]`.
    data: Vec<Val>,
    /// Number of rows (tracked separately so arity-0 relations work).
    len: usize,
    /// Membership: row-slice hash → positions with that hash (collisions
    /// resolved by comparing slices). Rebuilt on deserialize, never stored.
    seen: FxHashMap<u64, Vec<u32>>,
    /// Lazily built per-column indexes: column → value → row positions.
    indexes: FxHashMap<usize, FxHashMap<Val, Vec<u32>>>,
    /// Lazily built multi-column join indexes keyed by column subset.
    /// Maintained incrementally by [`Relation::insert_row`]; cleared on
    /// symbol remap (key hashes go stale) and never serialized.
    key_indexes: FxHashMap<Box<[usize]>, Index>,
}

impl Relation {
    /// Creates an empty relation with the given signature.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            arity,
            data: Vec::new(),
            len: 0,
            seen: FxHashMap::default(),
            indexes: FxHashMap::default(),
            key_indexes: FxHashMap::default(),
        }
    }

    /// The relation's signature.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the relation holds no tuple.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test on a row slice.
    pub fn contains(&self, row: &[Val]) -> bool {
        if row.len() != self.arity {
            return false;
        }
        match self.seen.get(&row_hash(row)) {
            Some(positions) => positions.iter().any(|&p| self.row(p as usize) == row),
            None => false,
        }
    }

    /// Inserts a row by copy; returns `true` iff it was new. The caller is
    /// expected to have validated the row against the schema (see
    /// [`crate::Database::insert`], which does).
    pub fn insert_row(&mut self, row: &[Val]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        let hash = row_hash(row);
        let bucket = self.seen.entry(hash).or_default();
        // Membership probe against flat storage (no borrow of `self.row`
        // here because `bucket` borrows `self.seen` mutably).
        let arity = self.arity;
        let data = &self.data;
        if bucket
            .iter()
            .any(|&p| &data[p as usize * arity..p as usize * arity + arity] == row)
        {
            return false;
        }
        let pos = self.len as u32;
        bucket.push(pos);
        self.data.extend_from_slice(row);
        self.len += 1;
        for (col, index) in self.indexes.iter_mut() {
            index.entry(row[*col]).or_default().push(pos);
        }
        for idx in self.key_indexes.values_mut() {
            let hash = key_hash(idx.cols.iter().map(|&c| &row[c]));
            idx.buckets.entry(hash).or_default().push(pos);
        }
        true
    }

    /// Inserts a tuple (convenience over [`Relation::insert_row`]).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        self.insert_row(&tuple.0)
    }

    /// Row at insertion position `pos`, as a slice into columnar storage.
    pub fn row(&self, pos: usize) -> &[Val] {
        &self.data[pos * self.arity..pos * self.arity + self.arity]
    }

    /// Iterates rows in insertion order (zero-copy slices).
    pub fn iter(&self) -> RowIter<'_> {
        RowIter { rel: self, next: 0 }
    }

    /// Rows inserted at or after `watermark` (insertion index), in order.
    /// `watermark >= len()` yields an empty iterator.
    pub fn since(&self, watermark: usize) -> RowIter<'_> {
        RowIter {
            rel: self,
            next: watermark.min(self.len),
        }
    }

    /// Ensures a hash index on `column` exists and returns row positions
    /// whose `column` equals `value` (empty slice if none).
    ///
    /// The index is built on first use and maintained incrementally by
    /// [`Relation::insert_row`] afterwards — scans during fix-point
    /// computation repeatedly probe the same join columns, so this pays off
    /// immediately.
    pub fn rows_matching(&mut self, column: usize, value: &Val) -> &[u32] {
        let arity = self.arity;
        let data = &self.data;
        let len = self.len;
        let index = match self.indexes.entry(column) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                let mut idx: FxHashMap<Val, Vec<u32>> = FxHashMap::default();
                for pos in 0..len {
                    idx.entry(data[pos * arity + column])
                        .or_default()
                        .push(pos as u32);
                }
                v.insert(idx)
            }
        };
        index.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ensures a persistent multi-column index on `cols` exists, building it
    /// from current rows on first use. Subsequent [`Relation::insert_row`]
    /// calls maintain it incrementally. Pair with [`Relation::index`] when
    /// rows must be read while the index is borrowed.
    pub fn ensure_index(&mut self, cols: &[usize]) {
        debug_assert!(cols.iter().all(|&c| c < self.arity));
        if self.key_indexes.contains_key(cols) {
            return;
        }
        let mut idx = Index {
            cols: cols.into(),
            buckets: FxHashMap::default(),
        };
        for pos in 0..self.len {
            let row = &self.data[pos * self.arity..pos * self.arity + self.arity];
            let hash = key_hash(cols.iter().map(|&c| &row[c]));
            idx.buckets.entry(hash).or_default().push(pos as u32);
        }
        self.key_indexes.insert(cols.into(), idx);
    }

    /// The persistent index on `cols`, if [`Relation::ensure_index`] has
    /// built it. Immutable, so candidate rows can be read while probing.
    pub fn index(&self, cols: &[usize]) -> Option<&Index> {
        self.key_indexes.get(cols)
    }

    /// Ensures and returns the persistent index on `cols` (convenience over
    /// [`Relation::ensure_index`] + [`Relation::index`]).
    pub fn index_on(&mut self, cols: &[usize]) -> &Index {
        self.ensure_index(cols);
        &self.key_indexes[cols]
    }

    /// Every distinct [`crate::catalog::SymId`] occurring in this relation —
    /// the symbols a persisted copy must carry a dictionary for.
    pub fn syms(&self) -> impl Iterator<Item = crate::catalog::SymId> + '_ {
        self.data.iter().filter_map(Val::as_sym)
    }

    /// Rewrites every symbol through `f` (crash recovery remaps foreign
    /// catalog ids through the live catalog). Membership buckets and column
    /// indexes are rebuilt.
    pub fn remap_syms(&mut self, f: &impl Fn(crate::catalog::SymId) -> crate::catalog::SymId) {
        for v in &mut self.data {
            if let Val::Sym(id) = v {
                *id = f(*id);
            }
        }
        self.rebuild_membership();
        self.indexes.clear();
        self.key_indexes.clear();
    }

    /// Rebuilds the membership buckets from flat storage (deserialize,
    /// remap).
    fn rebuild_membership(&mut self) {
        self.seen.clear();
        for pos in 0..self.len {
            let hash = row_hash(&self.data[pos * self.arity..pos * self.arity + self.arity]);
            self.seen.entry(hash).or_default().push(pos as u32);
        }
    }
}

/// Iterator over a relation's rows as slices.
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    rel: &'a Relation,
    next: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Val];

    fn next(&mut self) -> Option<&'a [Val]> {
        if self.next >= self.rel.len {
            return None;
        }
        let row = self.rel.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.rel.len - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

// Serialization carries the schema and the rows exactly once, as nested
// arrays (`"rows": [[...], ...]`); membership and indexes are rebuilt on
// read. The old derived form additionally serialized a `present` set — a
// byte-for-byte duplicate of every tuple that roughly doubled snapshots.
impl Serialize for Relation {
    fn to_content(&self) -> Content {
        let rows: Vec<Content> = self
            .iter()
            .map(|row| Content::Seq(row.iter().map(|v| v.to_content()).collect()))
            .collect();
        Content::Map(vec![
            ("schema".to_string(), self.schema.to_content()),
            ("rows".to_string(), Content::Seq(rows)),
        ])
    }
}

impl Deserialize for Relation {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Relation"))?;
        let schema = serde::content_get(m, "schema")
            .ok_or_else(|| DeError::missing_field("schema", "Relation"))
            .and_then(RelationSchema::from_content)?;
        let rows = serde::content_get(m, "rows")
            .ok_or_else(|| DeError::missing_field("rows", "Relation"))?
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "Relation::rows"))?;
        let mut rel = Relation::new(schema);
        let mut buf: Vec<Val> = Vec::with_capacity(rel.arity);
        for row in rows {
            let fields = row
                .as_seq()
                .ok_or_else(|| DeError::expected("array", "Relation row"))?;
            if fields.len() != rel.arity {
                return Err(DeError::expected("row of schema arity", "Relation row"));
            }
            buf.clear();
            for f in fields {
                buf.push(Val::from_content(f)?);
            }
            rel.insert_row(&buf);
        }
        Ok(rel)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len)?;
        for row in self.iter() {
            write!(f, "  (")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn rel() -> Relation {
        Relation::new(RelationSchema::new(
            "r",
            vec![("x", ColumnType::Int), ("y", ColumnType::Int)],
        ))
    }

    fn tup(x: i64, y: i64) -> Vec<Val> {
        vec![Val::Int(x), Val::Int(y)]
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert!(r.insert_row(&tup(1, 2)));
        assert!(!r.insert_row(&tup(1, 2)));
        assert!(r.insert_row(&tup(2, 1)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tup(1, 2)));
        assert!(!r.contains(&tup(9, 9)));
    }

    #[test]
    fn insertion_order_preserved() {
        let mut r = rel();
        r.insert_row(&tup(3, 3));
        r.insert_row(&tup(1, 1));
        r.insert_row(&tup(2, 2));
        let got: Vec<Vec<Val>> = r.iter().map(<[Val]>::to_vec).collect();
        assert_eq!(got, vec![tup(3, 3), tup(1, 1), tup(2, 2)]);
    }

    #[test]
    fn since_returns_suffix() {
        let mut r = rel();
        r.insert_row(&tup(1, 1));
        let w = r.len();
        r.insert_row(&tup(2, 2));
        r.insert_row(&tup(3, 3));
        let got: Vec<Vec<Val>> = r.since(w).map(<[Val]>::to_vec).collect();
        assert_eq!(got, vec![tup(2, 2), tup(3, 3)]);
        assert_eq!(r.since(r.len()).count(), 0);
        assert_eq!(r.since(usize::MAX).count(), 0);
    }

    #[test]
    fn index_built_lazily_and_maintained() {
        let mut r = rel();
        r.insert_row(&tup(1, 10));
        r.insert_row(&tup(2, 20));
        // Build index on column 0 after two inserts …
        assert_eq!(r.rows_matching(0, &Val::Int(1)), &[0]);
        // … and it must be maintained by subsequent inserts.
        r.insert_row(&tup(1, 30));
        assert_eq!(r.rows_matching(0, &Val::Int(1)), &[0, 2]);
        assert!(r.rows_matching(0, &Val::Int(9)).is_empty());
    }

    #[test]
    fn index_on_second_column() {
        let mut r = rel();
        r.insert_row(&tup(1, 7));
        r.insert_row(&tup(2, 7));
        assert_eq!(r.rows_matching(1, &Val::Int(7)), &[0, 1]);
    }

    #[test]
    fn key_index_built_lazily_and_maintained() {
        let mut r = rel();
        r.insert_row(&tup(1, 10));
        r.insert_row(&tup(2, 10));
        r.insert_row(&tup(1, 20));
        let probe = |r: &Relation, x: i64, y: i64| -> Vec<u32> {
            let idx = r.index(&[0, 1]).expect("index built");
            let h = key_hash([Val::Int(x), Val::Int(y)].iter());
            idx.candidates(h)
                .iter()
                .copied()
                .filter(|&p| r.row(p as usize) == tup(x, y))
                .collect()
        };
        r.ensure_index(&[0, 1]);
        assert_eq!(probe(&r, 1, 10), &[0]);
        assert_eq!(probe(&r, 2, 10), &[1]);
        assert!(probe(&r, 2, 20).is_empty());
        // Maintained incrementally by subsequent inserts.
        r.insert_row(&tup(2, 20));
        assert_eq!(probe(&r, 2, 20), &[3]);
        // index_on is ensure + get.
        assert_eq!(r.index_on(&[0, 1]).cols(), &[0, 1]);
    }

    #[test]
    fn key_index_single_column_matches_rows_matching() {
        let mut r = rel();
        r.insert_row(&tup(1, 7));
        r.insert_row(&tup(2, 7));
        r.insert_row(&tup(1, 8));
        r.ensure_index(&[0]);
        let h = key_hash([Val::Int(1)].iter());
        let via_key: Vec<u32> = r
            .index(&[0])
            .unwrap()
            .candidates(h)
            .iter()
            .copied()
            .filter(|&p| r.row(p as usize)[0] == Val::Int(1))
            .collect();
        assert_eq!(via_key, r.rows_matching(0, &Val::Int(1)));
    }

    #[test]
    fn remap_syms_drops_key_indexes() {
        let mut r = Relation::new(RelationSchema::new("s", vec![("x", ColumnType::Str)]));
        let a = Val::str("key-remap-a");
        r.insert_row(&[a]);
        r.ensure_index(&[0]);
        assert!(r.index(&[0]).is_some());
        r.remap_syms(&|id| id);
        assert!(r.index(&[0]).is_none(), "stale hashes must be dropped");
    }

    #[test]
    fn serde_round_trip_rebuilds_membership() {
        let mut r = rel();
        r.insert_row(&tup(1, 2));
        r.insert_row(&tup(3, 4));
        let text = serde_json::to_string(&r).unwrap();
        let back: Relation = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.contains(&tup(1, 2)));
        let mut back = back;
        assert!(!back.insert_row(&tup(3, 4))); // dedup still works
        assert!(back.insert_row(&tup(5, 6)));
    }

    #[test]
    fn serialized_form_has_no_duplicate_row_copy() {
        let mut r = rel();
        r.insert_row(&tup(123_456, 654_321));
        let text = serde_json::to_string(&r).unwrap();
        assert_eq!(text.matches("123456").count(), 1, "{text}");
        assert!(!text.contains("present"), "{text}");
    }

    #[test]
    fn zero_arity_relation_holds_at_most_one_row() {
        let mut r = Relation::new(RelationSchema::new("unit", vec![]));
        assert!(r.insert_row(&[]));
        assert!(!r.insert_row(&[]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn remap_syms_rewrites_and_rebuilds() {
        let mut r = Relation::new(RelationSchema::new("s", vec![("x", ColumnType::Str)]));
        let a = Val::str("remap-a");
        let b = Val::str("remap-b");
        r.insert_row(&[a]);
        let (a_id, b_id) = (a.as_sym().unwrap(), b.as_sym().unwrap());
        r.remap_syms(&|id| if id == a_id { b_id } else { id });
        assert!(r.contains(&[b]));
        assert!(!r.contains(&[a]));
    }
}
