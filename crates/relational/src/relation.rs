//! A single relation instance: deduplicated, insertion-ordered tuples with
//! per-column hash indexes.
//!
//! Insertion order is preserved so that (a) iteration is deterministic and
//! (b) *watermarks* work: the update protocol's delta optimization sends a
//! subscriber only the tuples inserted after the watermark recorded at the
//! previous answer, which is exactly the "delta optimization … to minimize
//! data transfer and duplication" the paper sketches in Section 3.

use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A relation instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: RelationSchema,
    /// Tuples in insertion order (the authoritative store).
    rows: Vec<Tuple>,
    /// Fast membership for deduplication.
    present: HashSet<Tuple>,
    /// Lazily built per-column indexes: column -> value -> row positions.
    #[serde(skip)]
    indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl Relation {
    /// Creates an empty relation with the given signature.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            present: HashSet::new(),
            indexes: HashMap::new(),
        }
    }

    /// The relation's signature.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation holds no tuple.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.present.contains(tuple)
    }

    /// Inserts a tuple; returns `true` iff it was new. The caller is expected
    /// to have validated the tuple against the schema (see
    /// [`crate::Database::insert`], which does).
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        if !self.present.insert(tuple.clone()) {
            return false;
        }
        let pos = self.rows.len();
        for (col, index) in self.indexes.iter_mut() {
            index.entry(tuple.0[*col].clone()).or_default().push(pos);
        }
        self.rows.push(tuple);
        true
    }

    /// Iterates tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Tuples inserted at or after `watermark` (insertion index), in order.
    /// `watermark == len()` yields an empty slice.
    pub fn since(&self, watermark: usize) -> &[Tuple] {
        &self.rows[watermark.min(self.rows.len())..]
    }

    /// Ensures a hash index on `column` exists and returns row positions
    /// whose `column` equals `value` (empty slice if none).
    ///
    /// The index is built on first use and maintained incrementally by
    /// [`Relation::insert`] afterwards — scans during fix-point computation
    /// repeatedly probe the same join columns, so this pays off immediately.
    pub fn rows_matching(&mut self, column: usize, value: &Value) -> &[usize] {
        let index = match self.indexes.entry(column) {
            Entry::Occupied(o) => o.into_mut(),
            Entry::Vacant(v) => {
                let mut idx: HashMap<Value, Vec<usize>> = HashMap::new();
                for (pos, t) in self.rows.iter().enumerate() {
                    idx.entry(t.0[column].clone()).or_default().push(pos);
                }
                v.insert(idx)
            }
        };
        index.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row at insertion position `pos`.
    pub fn row(&self, pos: usize) -> &Tuple {
        &self.rows[pos]
    }

    /// All tuples as a slice, in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Approximate total serialized size (statistics module).
    pub fn wire_size(&self) -> usize {
        self.rows.iter().map(Tuple::wire_size).sum()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.rows.len())?;
        for t in &self.rows {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn rel() -> Relation {
        Relation::new(RelationSchema::new(
            "r",
            vec![("x", ColumnType::Int), ("y", ColumnType::Int)],
        ))
    }

    fn tup(x: i64, y: i64) -> Tuple {
        Tuple::new(vec![Value::Int(x), Value::Int(y)])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert!(r.insert(tup(1, 2)));
        assert!(!r.insert(tup(1, 2)));
        assert!(r.insert(tup(2, 1)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut r = rel();
        r.insert(tup(3, 3));
        r.insert(tup(1, 1));
        r.insert(tup(2, 2));
        let got: Vec<_> = r.iter().cloned().collect();
        assert_eq!(got, vec![tup(3, 3), tup(1, 1), tup(2, 2)]);
    }

    #[test]
    fn since_returns_suffix() {
        let mut r = rel();
        r.insert(tup(1, 1));
        let w = r.len();
        r.insert(tup(2, 2));
        r.insert(tup(3, 3));
        assert_eq!(r.since(w), &[tup(2, 2), tup(3, 3)]);
        assert!(r.since(r.len()).is_empty());
        assert!(r.since(usize::MAX).is_empty());
    }

    #[test]
    fn index_built_lazily_and_maintained() {
        let mut r = rel();
        r.insert(tup(1, 10));
        r.insert(tup(2, 20));
        // Build index on column 0 after two inserts …
        assert_eq!(r.rows_matching(0, &Value::Int(1)), &[0]);
        // … and it must be maintained by subsequent inserts.
        r.insert(tup(1, 30));
        assert_eq!(r.rows_matching(0, &Value::Int(1)), &[0, 2]);
        assert!(r.rows_matching(0, &Value::Int(9)).is_empty());
    }

    #[test]
    fn index_on_second_column() {
        let mut r = rel();
        r.insert(tup(1, 7));
        r.insert(tup(2, 7));
        assert_eq!(r.rows_matching(1, &Value::Int(7)), &[0, 1]);
    }
}
