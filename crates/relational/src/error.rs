//! Error type shared across the relational engine.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the relational engine.
///
/// Each variant carries enough context to be actionable without a backtrace;
/// the engine never panics on malformed user input (schemas, queries, data) —
/// it returns one of these instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation name was referenced that does not exist in the schema.
    UnknownRelation(String),
    /// A relation was declared twice in one schema.
    DuplicateRelation(String),
    /// A tuple's arity does not match the relation's declared arity.
    ArityMismatch {
        /// Relation whose arity was violated.
        relation: String,
        /// Declared number of columns.
        expected: usize,
        /// Number of values actually supplied.
        got: usize,
    },
    /// A value's type does not match the declared column type.
    TypeMismatch {
        /// Relation containing the column.
        relation: String,
        /// Zero-based column index.
        column: usize,
        /// Human-readable description of the expected/actual types.
        detail: String,
    },
    /// A query used a variable in a built-in predicate or head position
    /// without binding it in any relational atom.
    UnboundVariable(String),
    /// A peer-qualified atom (`B:b(X)`) reached the *local* evaluator. Local
    /// evaluation is only defined on unqualified formulas; the distributed
    /// layer must strip qualifiers when routing sub-queries.
    QualifiedAtom(String),
    /// Text could not be parsed; carries position and message.
    Parse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// The restricted chase exceeded the configured null-derivation depth.
    /// This is the safety valve against non-terminating chases on rule sets
    /// that are not weakly acyclic.
    ChaseDepthExceeded {
        /// The configured bound that was hit.
        limit: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            Error::DuplicateRelation(name) => {
                write!(f, "relation `{name}` declared more than once")
            }
            Error::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected} values, got {got}"
            ),
            Error::TypeMismatch {
                relation,
                column,
                detail,
            } => write!(
                f,
                "type mismatch for `{relation}` column {column}: {detail}"
            ),
            Error::UnboundVariable(v) => write!(
                f,
                "variable `{v}` is not bound by any relational atom (unsafe query)"
            ),
            Error::QualifiedAtom(a) => write!(
                f,
                "atom `{a}` is peer-qualified; local evaluation requires unqualified atoms"
            ),
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::ChaseDepthExceeded { limit } => write!(
                f,
                "chase exceeded null-derivation depth {limit}; rule set is \
                 likely not weakly acyclic"
            ),
        }
    }
}

impl std::error::Error for Error {}
