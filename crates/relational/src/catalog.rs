//! The network-wide constant catalog: an interner mapping string constants
//! to fixed-width [`SymId`]s.
//!
//! The paper's Definition 1 assumes all peers share a set of constants `C`
//! "acting as URIs": equal constants denote equal objects network-wide.
//! That assumption is exactly what makes interning sound — a string constant
//! has one canonical identity, so the data plane can carry a 4-byte id
//! instead of the string itself, and equality/hashing of values becomes a
//! word comparison instead of a byte-by-byte walk.
//!
//! One process hosts one catalog ([`ConstCatalog::global`]), mirroring the
//! shared `C`. What crosses process boundaries — wire messages in a real
//! deployment, snapshots and WAL files on disk — additionally carries
//! *dictionary deltas*: `(SymId, string)` pairs for symbols the receiver may
//! not have seen yet (first-use sync). A reader in a different process
//! re-interns those strings and remaps ids through a [`SymRemap`]; in-process
//! the remap is the identity, and [`SymRemap::is_identity`] lets hot paths
//! skip the rewrite entirely.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Identifier of an interned string constant.
///
/// Plain `Ord`/`Hash` on the raw id — **id order is intern order, not
/// lexicographic order**. Code that needs string order (deterministic sorts,
/// `<`/`>` built-ins) must compare through [`crate::value::Val`]'s `Ord`,
/// which resolves via the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymId(pub u32);

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[derive(Debug, Default)]
struct CatalogInner {
    /// `strings[id]` is the interned string of `SymId(id)`.
    strings: Vec<Arc<str>>,
    /// Reverse map for interning.
    ids: HashMap<Arc<str>, SymId>,
}

/// The interner. One global instance per process stands in for the paper's
/// network-wide constant set `C`; separate instances exist only in tests and
/// in recovery paths that rebuild a catalog read from disk.
#[derive(Debug, Default)]
pub struct ConstCatalog {
    inner: RwLock<CatalogInner>,
}

static GLOBAL: OnceLock<ConstCatalog> = OnceLock::new();

impl ConstCatalog {
    /// A fresh, empty catalog (tests, recovery staging).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide catalog — the paper's shared `C`.
    pub fn global() -> &'static ConstCatalog {
        GLOBAL.get_or_init(ConstCatalog::new)
    }

    /// Interns a string, returning its canonical id. Idempotent.
    pub fn intern(&self, s: &str) -> SymId {
        if let Some(id) = self.inner.read().expect("catalog lock").ids.get(s) {
            return *id;
        }
        let mut inner = self.inner.write().expect("catalog lock");
        if let Some(id) = inner.ids.get(s) {
            return *id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = SymId(u32::try_from(inner.strings.len()).expect("catalog overflow"));
        inner.strings.push(arc.clone());
        inner.ids.insert(arc, id);
        id
    }

    /// Resolves an id minted by this catalog.
    ///
    /// # Panics
    /// Panics on an id this catalog never issued — ids are only obtainable
    /// through [`ConstCatalog::intern`], so an unknown id is a logic error
    /// (e.g. a foreign-process id used without [`SymRemap`]).
    pub fn resolve(&self, id: SymId) -> Arc<str> {
        self.try_resolve(id)
            .unwrap_or_else(|| panic!("unknown {id} (missing dictionary sync?)"))
    }

    /// Resolves an id, returning `None` if unknown.
    pub fn try_resolve(&self, id: SymId) -> Option<Arc<str>> {
        self.inner
            .read()
            .expect("catalog lock")
            .strings
            .get(id.0 as usize)
            .cloned()
    }

    /// Compares two interned strings lexicographically without exposing the
    /// contents.
    pub fn cmp_syms(&self, a: SymId, b: SymId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let inner = self.inner.read().expect("catalog lock");
        inner.strings[a.0 as usize].cmp(&inner.strings[b.0 as usize])
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.read().expect("catalog lock").strings.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports the `(id, string)` pairs for the given ids (deduplicated,
    /// ascending) — the payload of a dictionary delta or a persisted catalog
    /// section. Unknown ids are skipped.
    pub fn export(&self, ids: impl IntoIterator<Item = SymId>) -> Vec<(SymId, Arc<str>)> {
        let inner = self.inner.read().expect("catalog lock");
        let mut ids: Vec<SymId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .filter_map(|id| {
                inner
                    .strings
                    .get(id.0 as usize)
                    .map(|s| (id, Arc::clone(s)))
            })
            .collect()
    }

    /// Absorbs a dictionary delta written by some catalog (possibly a
    /// foreign process's), returning the remap from the writer's ids to this
    /// catalog's ids. Strings already interned keep their local id — that is
    /// what makes the in-process remap the identity.
    pub fn absorb(&self, entries: &[(SymId, Arc<str>)]) -> SymRemap {
        let mut map = HashMap::with_capacity(entries.len());
        let mut identity = true;
        for (old, s) in entries {
            let new = self.intern(s);
            identity &= new == *old;
            map.insert(*old, new);
        }
        SymRemap { map, identity }
    }
}

/// A mapping from a writer catalog's ids to the reader catalog's ids,
/// produced by [`ConstCatalog::absorb`].
#[derive(Debug, Clone)]
pub struct SymRemap {
    map: HashMap<SymId, SymId>,
    identity: bool,
}

impl Default for SymRemap {
    fn default() -> Self {
        SymRemap {
            map: HashMap::new(),
            identity: true,
        }
    }
}

impl SymRemap {
    /// True iff every absorbed id mapped to itself — the common in-process
    /// case, where rewriting rows can be skipped wholesale.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Maps one id. Ids absent from the delta map to themselves (they must
    /// then already be valid in the reader's catalog).
    pub fn map(&self, id: SymId) -> SymId {
        self.map.get(&id).copied().unwrap_or(id)
    }

    /// Folds another remap in (recovery accumulates one remap across a
    /// snapshot catalog and every WAL dictionary delta).
    pub fn extend(&mut self, other: SymRemap) {
        self.identity &= other.identity;
        self.map.extend(other.map);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolvable() {
        let c = ConstCatalog::new();
        let a = c.intern("ana");
        let b = c.intern("bob");
        assert_ne!(a, b);
        assert_eq!(c.intern("ana"), a);
        assert_eq!(&*c.resolve(a), "ana");
        assert_eq!(&*c.resolve(b), "bob");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cmp_is_lexicographic_regardless_of_intern_order() {
        let c = ConstCatalog::new();
        let z = c.intern("zz");
        let a = c.intern("aa");
        assert_eq!(c.cmp_syms(a, z), Ordering::Less);
        assert_eq!(c.cmp_syms(z, a), Ordering::Greater);
        assert_eq!(c.cmp_syms(a, a), Ordering::Equal);
    }

    #[test]
    fn try_resolve_unknown_is_none() {
        let c = ConstCatalog::new();
        assert!(c.try_resolve(SymId(99)).is_none());
    }

    #[test]
    fn export_dedups_and_sorts() {
        let c = ConstCatalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let out = c.export([b, a, b]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, a);
        assert_eq!(out[1].0, b);
    }

    #[test]
    fn absorb_same_catalog_is_identity() {
        let c = ConstCatalog::new();
        let a = c.intern("a");
        let delta = c.export([a]);
        let remap = c.absorb(&delta);
        assert!(remap.is_identity());
        assert_eq!(remap.map(a), a);
    }

    #[test]
    fn absorb_foreign_ids_remaps() {
        let writer = ConstCatalog::new();
        let reader = ConstCatalog::new();
        // Reader interned something else first, so ids diverge.
        reader.intern("unrelated");
        let w_ana = writer.intern("ana");
        let delta = writer.export([w_ana]);
        let remap = reader.absorb(&delta);
        assert!(!remap.is_identity());
        let r_ana = remap.map(w_ana);
        assert_eq!(&*reader.resolve(r_ana), "ana");
        assert_ne!(r_ana, w_ana);
    }

    #[test]
    fn global_catalog_is_shared() {
        let a = ConstCatalog::global().intern("global-shared-const");
        let b = ConstCatalog::global().intern("global-shared-const");
        assert_eq!(a, b);
    }
}
