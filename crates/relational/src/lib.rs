//! # p2p-relational
//!
//! A small in-memory relational engine purpose-built for peer-to-peer
//! database coordination, the substrate required by
//! *"A distributed algorithm for robust data sharing and updates in P2P
//! database networks"* (Franconi, Kuper, Lopatenko, Zaihrayeu — EDBT
//! P2P&DB'04).
//!
//! The paper assumes every peer is a relational database whose coordination
//! rules carry conjunctive queries (with built-in predicates) in their bodies
//! and conjunctive formulas — possibly with **existential variables** — in
//! their heads. This crate provides exactly that machinery:
//!
//! * [`Val`] — the fixed-width data-plane value: integers, **interned**
//!   string constants ([`catalog::ConstCatalog`], the paper's shared set `C`
//!   of constants "acting as URIs"), and **labeled nulls**, the fresh values
//!   invented for existential head variables ("insert with new values for
//!   existential", algorithm A6 of the paper). [`Value`] is the boundary
//!   form carrying strings verbatim for the external JSON formats;
//! * [`schema::RelationSchema`] / [`schema::DatabaseSchema`] — typed,
//!   named relation signatures (the paper's `DBS` module);
//! * [`Relation`] / [`Database`] — deduplicated, insertion-ordered
//!   **columnar** tuple stores (one flat `Vec<Val>` per relation) with
//!   per-column hash indexes;
//! * [`query`] — a conjunctive-query AST, a text parser
//!   (`q(X,Y) :- r(X,Z), s(Z,Y), X != Y`), and a flat-buffer hash-join
//!   evaluator under naive-table semantics (labeled nulls join only with
//!   themselves, built-ins involving nulls are *unknown* and therefore
//!   excluded — sound for certain answers of positive queries);
//! * [`hom`] — homomorphism checks between sets of facts with nulls, used
//!   both by the restricted chase and by tests that compare distributed
//!   results with the global fix-point oracle *modulo null renaming*;
//! * [`chase`] — restricted-chase application of rule heads: a head is
//!   instantiated only when no homomorphic image of it is already present,
//!   which is what bounds null invention and guarantees termination of the
//!   update fix-point for weakly-acyclic rule sets;
//! * [`legacy`] — the pre-interning `Value`-based reference evaluator, kept
//!   as the oracle for equivalence tests and as the benchmark baseline.
//!
//! The engine is deliberately self-contained (no external storage, no SQL)
//! and deterministic: all iteration that can influence observable behaviour
//! happens in insertion or lexicographic order.
//!
//! ## Quick example
//!
//! ```
//! use p2p_relational::{Database, DatabaseSchema, Val};
//! use p2p_relational::query::{parse_query, evaluate};
//!
//! let schema = DatabaseSchema::parse("b(x: int, y: int).").unwrap();
//! let mut db = Database::new(schema);
//! db.insert_values("b", vec![Val::Int(1), Val::Int(2)]).unwrap();
//! db.insert_values("b", vec![Val::Int(2), Val::Int(3)]).unwrap();
//!
//! let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
//! let ans = evaluate(&q, &db).unwrap();
//! assert_eq!(ans.len(), 1); // (1, 3)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod chase;
pub mod database;
pub mod error;
pub mod fxhash;
pub mod hom;
pub mod legacy;
pub mod query;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use catalog::{ConstCatalog, SymId, SymRemap};
pub use database::Database;
pub use error::{Error, Result};
pub use fxhash::{fx_hash, FxHashMap, FxHashSet};
pub use relation::{key_hash, Index, Relation};
pub use schema::{ColumnType, DatabaseSchema, RelationSchema};
pub use tuple::Tuple;
pub use value::{NullFactory, NullId, Val, Value};
