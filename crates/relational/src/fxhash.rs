//! A fast, non-cryptographic hasher for the join/membership hot paths.
//!
//! The data plane hashes fixed-width [`crate::Val`] words constantly: every
//! membership probe, every join-index build, every dedup. The standard
//! library's SipHash is DoS-resistant but pays for it per word; this is the
//! Fowler-style multiply-rotate scheme popularised by rustc (`FxHash`),
//! which is 2–4× faster on short keys. Keys here are not
//! attacker-controlled (they come from the operator's own databases), so
//! the trade is sound.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes one value with [`FxHasher`] (membership bucket keys).
pub fn fx_hash<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(fx_hash(&[1u64, 2, 3]), fx_hash(&[1u64, 2, 3]));
        assert_ne!(fx_hash(&[1u64, 2, 3]), fx_hash(&[1u64, 2, 4]));
        assert_ne!(fx_hash("abc"), fx_hash("abd"));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(7, 8);
        assert_eq!(m[&7], 8);
        let mut s: FxHashSet<&str> = FxHashSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }
}
