//! Values: constants shared across the network plus labeled nulls.
//!
//! The paper (Definition 1) assumes all peers share a set of constants `C`
//! acting as URIs: equal constants denote equal objects network-wide. On top
//! of those, existential variables in rule heads are materialised as
//! **labeled nulls** — globally unique placeholder values minted by the node
//! performing the insertion (algorithm A6: "insert with new values for
//! existential"). A labeled null is equal only to itself, so nulls behave as
//! the marked nulls of naive tables.
//!
//! Two value types live here:
//!
//! * [`Val`] — the data-plane representation: a `Copy`, 16-byte word.
//!   String constants are interned through the [`crate::catalog::ConstCatalog`]
//!   and carried as a [`SymId`]; equality and hashing are O(1) word
//!   operations, which is what makes columnar storage and hash joins cheap.
//! * [`Value`] — the boundary representation carrying the actual string
//!   (`Arc<str>`), used by the external JSON formats (network files, CLI)
//!   and by the legacy reference evaluator. Its serde form is unchanged
//!   (`{"Int":1}` / `{"Str":"x"}` / `{"Null":n}`), keeping those formats
//!   byte-compatible.

use crate::catalog::{ConstCatalog, SymId};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Identifier of a labeled null, globally unique across the network.
///
/// The high 24 bits carry the minting node, the low 40 bits a per-node
/// counter; this lets any peer invent fresh nulls with no coordination, the
/// same way the paper relies on node-local invention during `UpdateLocalData`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NullId(pub u64);

impl NullId {
    /// Number of bits reserved for the per-node counter.
    pub const COUNTER_BITS: u32 = 40;

    /// Builds a null id from a minting node and a local counter.
    pub fn new(node: u32, counter: u64) -> Self {
        debug_assert!(counter < (1u64 << Self::COUNTER_BITS));
        NullId(((node as u64) << Self::COUNTER_BITS) | counter)
    }

    /// The node that minted this null.
    pub fn node(self) -> u32 {
        (self.0 >> Self::COUNTER_BITS) as u32
    }

    /// The minting node's local counter value.
    pub fn counter(self) -> u64 {
        self.0 & ((1u64 << Self::COUNTER_BITS) - 1)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}_{}", self.node(), self.counter())
    }
}

/// A data-plane value: an integer constant, an interned string constant, or
/// a labeled null. `Copy` and at most 16 bytes, so tuples are flat arrays
/// and join keys are plain words — no reference counting on any hot path.
///
/// `Ord` is total (Int < Sym < Null) and matches the pre-interning semantics:
/// symbols compare by their *string contents* (resolved through the global
/// catalog), not by raw id, so sorts and range built-ins are independent of
/// intern order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Val {
    /// 64-bit integer constant.
    Int(i64),
    /// Interned string constant (resolve via [`ConstCatalog::global`]).
    Sym(SymId),
    /// Labeled null invented for an existential head variable.
    Null(NullId),
}

// The whole point: a fixed-width word the columnar store can pack flat.
const _: () = assert!(std::mem::size_of::<Val>() <= 16);

impl Val {
    /// Interns a string constant into the global catalog.
    pub fn str(s: impl AsRef<str>) -> Self {
        Val::Sym(ConstCatalog::global().intern(s.as_ref()))
    }

    /// True iff this value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Val::Null(_))
    }

    /// A short type tag used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Val::Int(_) => "int",
            Val::Sym(_) => "str",
            Val::Null(_) => "null",
        }
    }

    /// The symbol id, if this is an interned string.
    pub fn as_sym(&self) -> Option<SymId> {
        match self {
            Val::Sym(id) => Some(*id),
            _ => None,
        }
    }

    /// Converts to the boundary representation, resolving interned strings.
    pub fn to_value(self) -> Value {
        match self {
            Val::Int(i) => Value::Int(i),
            Val::Sym(id) => Value::Str(ConstCatalog::global().resolve(id)),
            Val::Null(n) => Value::Null(n),
        }
    }
}

impl PartialOrd for Val {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Val {
    fn cmp(&self, other: &Self) -> Ordering {
        use Val::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Sym(a), Sym(b)) => ConstCatalog::global().cmp_syms(*a, *b),
            (Null(a), Null(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Sym(_), Null(_)) => Ordering::Less,
            (Null(_), Sym(_)) => Ordering::Greater,
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::Int(v)
    }
}

impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::str(v)
    }
}

impl From<String> for Val {
    fn from(v: String) -> Self {
        Val::str(v)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(i) => write!(f, "{i}"),
            Val::Sym(id) => match ConstCatalog::global().try_resolve(*id) {
                Some(s) => write!(f, "'{s}'"),
                None => write!(f, "'<{id}>'"),
            },
            Val::Null(n) => write!(f, "{n}"),
        }
    }
}

/// A boundary value carrying its string in full — the shape of the external
/// JSON formats and the legacy reference evaluator. Convert with
/// [`Value::to_val`] (interning) and [`Val::to_value`] (resolving).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer constant.
    Int(i64),
    /// String constant, carried verbatim.
    Str(Arc<str>),
    /// Labeled null.
    Null(NullId),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Converts to the data-plane representation, interning strings into the
    /// global catalog.
    pub fn to_val(&self) -> Val {
        match self {
            Value::Int(i) => Val::Int(*i),
            Value::Str(s) => Val::Sym(ConstCatalog::global().intern(s)),
            Value::Null(n) => Val::Null(*n),
        }
    }
}

impl From<Val> for Value {
    fn from(v: Val) -> Self {
        v.to_value()
    }
}

impl From<&Value> for Val {
    fn from(v: &Value) -> Self {
        v.to_val()
    }
}

impl From<Value> for Val {
    fn from(v: Value) -> Self {
        v.to_val()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

/// Mints fresh labeled nulls on behalf of one node.
///
/// Each peer owns one factory; the node id baked into every [`NullId`]
/// guarantees global uniqueness without coordination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NullFactory {
    node: u32,
    next: u64,
}

impl NullFactory {
    /// Creates a factory for the given minting node.
    pub fn new(node: u32) -> Self {
        NullFactory { node, next: 0 }
    }

    /// Resumes a factory at a given counter — used by crash recovery so a
    /// restarted peer never re-mints a null id that already circulates in
    /// the network.
    pub fn resume(node: u32, next: u64) -> Self {
        NullFactory { node, next }
    }

    /// Returns a fresh, never-before-seen null value.
    pub fn fresh(&mut self) -> Val {
        let id = NullId::new(self.node, self.next);
        self.next += 1;
        Val::Null(id)
    }

    /// Number of nulls minted so far (used by the statistics module).
    pub fn minted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_id_roundtrip() {
        let id = NullId::new(7, 123_456);
        assert_eq!(id.node(), 7);
        assert_eq!(id.counter(), 123_456);
    }

    #[test]
    fn null_ids_from_distinct_nodes_differ() {
        assert_ne!(NullId::new(1, 0), NullId::new(2, 0));
        assert_ne!(NullId::new(1, 0), NullId::new(1, 1));
    }

    #[test]
    fn factory_mints_distinct_nulls() {
        let mut f = NullFactory::new(3);
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert!(a.is_null() && b.is_null());
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn val_is_a_fixed_width_word() {
        assert!(std::mem::size_of::<Val>() <= 16);
    }

    #[test]
    fn val_ordering_is_total_and_by_kind() {
        // Intern in reverse order so id order and string order disagree —
        // the sort must still be lexicographic.
        let b = Val::str("ord_b");
        let a = Val::str("ord_a");
        let vals = vec![
            Val::Null(NullId::new(0, 0)),
            a,
            Val::Int(5),
            Val::Int(-1),
            b,
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                Val::Int(-1),
                Val::Int(5),
                a,
                b,
                Val::Null(NullId::new(0, 0))
            ]
        );
    }

    #[test]
    fn equal_strings_intern_to_equal_syms() {
        assert_eq!(Val::str("same"), Val::str("same"));
        assert_ne!(Val::str("same"), Val::str("other"));
    }

    #[test]
    fn nulls_equal_only_themselves() {
        let n1 = Val::Null(NullId::new(0, 0));
        let n2 = Val::Null(NullId::new(0, 1));
        assert_eq!(n1, n1);
        assert_ne!(n1, n2);
        assert_ne!(n1, Val::Int(0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Int(42).to_string(), "42");
        assert_eq!(Val::str("x").to_string(), "'x'");
        assert_eq!(Val::Null(NullId::new(2, 9)).to_string(), "_:n2_9");
    }

    #[test]
    fn boundary_round_trip() {
        for v in [
            Value::Int(7),
            Value::str("round-trip"),
            Value::Null(NullId::new(1, 2)),
        ] {
            assert_eq!(v.to_val().to_value(), v);
        }
    }

    #[test]
    fn boundary_serde_form_is_stable() {
        // The external JSON formats depend on this exact shape.
        assert_eq!(
            serde_json::to_string(&Value::Int(1)).unwrap(),
            "{\"Int\":1}"
        );
        assert_eq!(
            serde_json::to_string(&Value::str("x")).unwrap(),
            "{\"Str\":\"x\"}"
        );
    }
}
