//! Values: constants shared across the network plus labeled nulls.
//!
//! The paper (Definition 1) assumes all peers share a set of constants `C`
//! acting as URIs: equal constants denote equal objects network-wide. On top
//! of those, existential variables in rule heads are materialised as
//! **labeled nulls** — globally unique placeholder values minted by the node
//! performing the insertion (algorithm A6: "insert with new values for
//! existential"). A labeled null is equal only to itself, so nulls behave as
//! the marked nulls of naive tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a labeled null, globally unique across the network.
///
/// The high 24 bits carry the minting node, the low 40 bits a per-node
/// counter; this lets any peer invent fresh nulls with no coordination, the
/// same way the paper relies on node-local invention during `UpdateLocalData`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NullId(pub u64);

impl NullId {
    /// Number of bits reserved for the per-node counter.
    pub const COUNTER_BITS: u32 = 40;

    /// Builds a null id from a minting node and a local counter.
    pub fn new(node: u32, counter: u64) -> Self {
        debug_assert!(counter < (1u64 << Self::COUNTER_BITS));
        NullId(((node as u64) << Self::COUNTER_BITS) | counter)
    }

    /// The node that minted this null.
    pub fn node(self) -> u32 {
        (self.0 >> Self::COUNTER_BITS) as u32
    }

    /// The minting node's local counter value.
    pub fn counter(self) -> u64 {
        self.0 & ((1u64 << Self::COUNTER_BITS) - 1)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}_{}", self.node(), self.counter())
    }
}

/// A database value: an integer constant, a string constant, or a labeled
/// null.
///
/// `Ord` is total (Int < Str < Null, then by content) so values can key
/// ordered collections; deterministic ordering is what makes the whole
/// simulation reproducible.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer constant.
    Int(i64),
    /// Interned string constant. `Arc` keeps tuple cloning cheap: answers are
    /// copied into messages constantly during update propagation.
    Str(Arc<str>),
    /// Labeled null invented for an existential head variable.
    Null(NullId),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// A short type tag used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Null(_) => "null",
        }
    }

    /// Approximate serialized size in bytes, used by the network layer to
    /// account for data volume on pipes (the paper's statistics module
    /// tracks "volumes of data transferred onto pipes").
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => 4 + s.len(),
            Value::Null(_) => 8,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

/// Mints fresh labeled nulls on behalf of one node.
///
/// Each peer owns one factory; the node id baked into every [`NullId`]
/// guarantees global uniqueness without coordination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NullFactory {
    node: u32,
    next: u64,
}

impl NullFactory {
    /// Creates a factory for the given minting node.
    pub fn new(node: u32) -> Self {
        NullFactory { node, next: 0 }
    }

    /// Resumes a factory at a given counter — used by crash recovery so a
    /// restarted peer never re-mints a null id that already circulates in
    /// the network.
    pub fn resume(node: u32, next: u64) -> Self {
        NullFactory { node, next }
    }

    /// Returns a fresh, never-before-seen null value.
    pub fn fresh(&mut self) -> Value {
        let id = NullId::new(self.node, self.next);
        self.next += 1;
        Value::Null(id)
    }

    /// Number of nulls minted so far (used by the statistics module).
    pub fn minted(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_id_roundtrip() {
        let id = NullId::new(7, 123_456);
        assert_eq!(id.node(), 7);
        assert_eq!(id.counter(), 123_456);
    }

    #[test]
    fn null_ids_from_distinct_nodes_differ() {
        assert_ne!(NullId::new(1, 0), NullId::new(2, 0));
        assert_ne!(NullId::new(1, 0), NullId::new(1, 1));
    }

    #[test]
    fn factory_mints_distinct_nulls() {
        let mut f = NullFactory::new(3);
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert!(a.is_null() && b.is_null());
        assert_eq!(f.minted(), 2);
    }

    #[test]
    fn value_ordering_is_total_and_by_kind() {
        let vals = vec![
            Value::Null(NullId::new(0, 0)),
            Value::str("a"),
            Value::Int(5),
            Value::Int(-1),
            Value::str("b"),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![
                Value::Int(-1),
                Value::Int(5),
                Value::str("a"),
                Value::str("b"),
                Value::Null(NullId::new(0, 0)),
            ]
        );
    }

    #[test]
    fn nulls_equal_only_themselves() {
        let n1 = Value::Null(NullId::new(0, 0));
        let n2 = Value::Null(NullId::new(0, 1));
        assert_eq!(n1, n1.clone());
        assert_ne!(n1, n2);
        assert_ne!(n1, Value::Int(0));
    }

    #[test]
    fn wire_size_accounts_for_string_length() {
        assert_eq!(Value::Int(1).wire_size(), 8);
        assert_eq!(Value::str("abcd").wire_size(), 8);
        assert_eq!(Value::Null(NullId::new(0, 0)).wire_size(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Null(NullId::new(2, 9)).to_string(), "_:n2_9");
    }
}
