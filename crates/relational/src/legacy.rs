//! The pre-interning reference data plane, preserved verbatim in spirit:
//! rows are `Vec<Value>` with `Arc<str>` string constants, relations keep a
//! duplicate `HashSet` membership copy, and the evaluator clones whole
//! `Vec<Value>` rows through every join stage.
//!
//! Two jobs keep this module alive after the columnar/interned rewrite:
//!
//! 1. **Equivalence oracle** — the proptest suite evaluates random queries
//!    on both paths and demands identical answers (modulo nothing: null ids
//!    are shared, and resolving [`crate::Val`] symbols must reproduce the
//!    strings byte-for-byte).
//! 2. **Benchmark baseline** — `bench_interning` and experiment `e16`
//!    measure the new path's speedup against this one on identical inputs.
//!
//! It is deliberately *not* wired into any production code path.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::query::ast::{Atom, ConjunctiveQuery, Constraint, Term};
use crate::value::{Val, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A relation in the legacy layout: insertion-ordered rows **plus** the old
/// duplicate membership set (kept so the baseline's memory behaviour is the
/// honest pre-refactor one).
#[derive(Debug, Clone, Default)]
pub struct LegacyRelation {
    /// Rows in insertion order.
    pub rows: Vec<Vec<Value>>,
    /// Duplicate membership copy (the old `present` set).
    pub present: HashSet<Vec<Value>>,
}

impl LegacyRelation {
    /// Inserts a row; returns `true` iff new.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        if !self.present.insert(row.clone()) {
            return false;
        }
        self.rows.push(row);
        true
    }
}

/// A database in the legacy layout.
#[derive(Debug, Clone, Default)]
pub struct LegacyDatabase {
    /// Relations by name.
    pub relations: BTreeMap<Arc<str>, LegacyRelation>,
}

impl LegacyDatabase {
    /// Converts a columnar database by resolving every interned symbol back
    /// to its string (done once, outside any measured loop).
    pub fn from_database(db: &Database) -> Self {
        let mut out = LegacyDatabase::default();
        for (name, rel) in db.relations() {
            let lrel = out.relations.entry(name.clone()).or_default();
            for row in rel.iter() {
                lrel.insert(row.iter().map(|v| v.to_value()).collect());
            }
        }
        out
    }

    fn relation(&self, name: &str) -> Result<&LegacyRelation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }
}

/// Legacy term: constants carried as boundary [`Value`]s.
#[derive(Debug, Clone)]
enum LTerm {
    Var(Arc<str>),
    Const(Value),
}

fn lower_term(t: &Term) -> LTerm {
    match t {
        Term::Var(v) => LTerm::Var(v.clone()),
        Term::Const(c) => LTerm::Const(c.to_value()),
    }
}

fn cmp_values(op: crate::query::ast::CmpOp, lhs: &Value, rhs: &Value) -> bool {
    use crate::query::ast::CmpOp;
    use Value::Null;
    match (lhs, rhs) {
        (Null(a), Null(b)) => match op {
            CmpOp::Eq | CmpOp::Le | CmpOp::Ge => a == b,
            _ => false,
        },
        (Null(_), _) | (_, Null(_)) => false,
        _ => match op {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        },
    }
}

/// Evaluates a conjunctive query on the legacy path, returning deduplicated
/// head rows in first-derivation order. This is the old evaluator: hash
/// joins keyed on `Vec<Value>` with a full row clone per extension.
pub fn evaluate_legacy(q: &ConjunctiveQuery, db: &LegacyDatabase) -> Result<Vec<Vec<Value>>> {
    let bindings = legacy_bindings(&q.atoms, &q.constraints, db)?;
    // Project.
    let mut slots: Vec<std::result::Result<usize, Value>> = Vec::with_capacity(q.head.len());
    for t in &q.head {
        match t {
            Term::Var(v) => {
                let s = bindings
                    .vars
                    .iter()
                    .position(|x| x == v)
                    .ok_or_else(|| Error::UnboundVariable(v.to_string()))?;
                slots.push(Ok(s));
            }
            Term::Const(c) => slots.push(Err(c.to_value())),
        }
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for row in &bindings.rows {
        let tuple: Vec<Value> = slots
            .iter()
            .map(|s| match s {
                Ok(idx) => row[*idx].clone(),
                Err(c) => c.clone(),
            })
            .collect();
        if seen.insert(tuple.clone()) {
            out.push(tuple);
        }
    }
    Ok(out)
}

struct LegacyBindings {
    vars: Vec<Arc<str>>,
    rows: Vec<Vec<Value>>,
}

fn legacy_bindings(
    atoms: &[Atom],
    constraints: &[Constraint],
    db: &LegacyDatabase,
) -> Result<LegacyBindings> {
    for a in atoms {
        if a.qualifier.is_some() {
            return Err(Error::QualifiedAtom(a.to_string()));
        }
    }

    // Variable slots.
    let mut vars: Vec<Arc<str>> = Vec::new();
    let mut slot_of: HashMap<Arc<str>, usize> = HashMap::new();
    for a in atoms {
        for t in &a.terms {
            if let Term::Var(v) = t {
                if !slot_of.contains_key(v) {
                    slot_of.insert(v.clone(), vars.len());
                    vars.push(v.clone());
                }
            }
        }
    }
    for c in constraints {
        for v in c.variables() {
            if !slot_of.contains_key(&v) {
                return Err(Error::UnboundVariable(v.to_string()));
            }
        }
    }

    // Greedy atom order (identical criterion to the new evaluator, so both
    // paths explore the same plans).
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order: Vec<usize> = Vec::new();
    let mut statically_bound: HashSet<usize> = HashSet::new();
    while !remaining.is_empty() {
        let mut best = 0usize;
        let mut best_score = (usize::MIN, usize::MAX, usize::MAX);
        for (k, &ai) in remaining.iter().enumerate() {
            let atom = &atoms[ai];
            let bound_positions = atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => statically_bound.contains(&slot_of[v]),
                })
                .count();
            let size = db
                .relation(&atom.relation)
                .map(|r| r.rows.len())
                .unwrap_or(0);
            let score = (bound_positions, size, ai);
            let better = score.0 > best_score.0
                || (score.0 == best_score.0
                    && (score.1 < best_score.1
                        || (score.1 == best_score.1 && score.2 < best_score.2)));
            if k == 0 || better {
                best = k;
                best_score = score;
            }
        }
        let ai = remaining.swap_remove(best);
        for t in &atoms[ai].terms {
            if let Term::Var(v) = t {
                statically_bound.insert(slot_of[v]);
            }
        }
        order.push(ai);
    }

    // Join with per-row Vec<Value> clones — the legacy hot path.
    let nvars = vars.len();
    let mut rows: Vec<Vec<Option<Value>>> = vec![vec![None; nvars]];
    let mut bound: HashSet<usize> = HashSet::new();
    let mut applied: Vec<bool> = vec![false; constraints.len()];
    legacy_constraints(constraints, &mut applied, &bound, &slot_of, &mut rows);

    for &ai in &order {
        let atom = &atoms[ai];
        let lterms: Vec<LTerm> = atom.terms.iter().map(lower_term).collect();
        let relation = db.relation(&atom.relation)?;
        let mut key_positions: Vec<usize> = Vec::new();
        for (pos, t) in lterms.iter().enumerate() {
            let det = match t {
                LTerm::Const(_) => true,
                LTerm::Var(v) => bound.contains(&slot_of[v]),
            };
            if det {
                key_positions.push(pos);
            }
        }
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (ri, row) in relation.rows.iter().enumerate() {
            if row.len() != atom.terms.len() {
                return Err(Error::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: row.len(),
                    got: atom.terms.len(),
                });
            }
            let key: Vec<Value> = key_positions.iter().map(|&p| row[p].clone()).collect();
            index.entry(key).or_default().push(ri);
        }
        let mut next: Vec<Vec<Option<Value>>> = Vec::new();
        for binding in &rows {
            let key: Vec<Value> = key_positions
                .iter()
                .map(|&p| match &lterms[p] {
                    LTerm::Const(c) => c.clone(),
                    LTerm::Var(v) => binding[slot_of[v]].clone().expect("key var bound"),
                })
                .collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            'rows: for &ri in matches {
                let tuple = &relation.rows[ri];
                let mut extended = binding.clone();
                for (pos, t) in lterms.iter().enumerate() {
                    if let LTerm::Var(v) = t {
                        let slot = slot_of[v];
                        match &extended[slot] {
                            Some(existing) => {
                                if *existing != tuple[pos] {
                                    continue 'rows;
                                }
                            }
                            None => extended[slot] = Some(tuple[pos].clone()),
                        }
                    }
                }
                next.push(extended);
            }
        }
        rows = next;
        for t in &atom.terms {
            if let Term::Var(v) = t {
                bound.insert(slot_of[v]);
            }
        }
        legacy_constraints(constraints, &mut applied, &bound, &slot_of, &mut rows);
        if rows.is_empty() {
            break;
        }
    }
    legacy_constraints(constraints, &mut applied, &bound, &slot_of, &mut rows);

    let mut seen = HashSet::new();
    let mut out_rows = Vec::with_capacity(rows.len());
    for r in rows {
        let full: Vec<Value> = r
            .into_iter()
            .map(|v| v.expect("all variables bound after full join"))
            .collect();
        if seen.insert(full.clone()) {
            out_rows.push(full);
        }
    }
    Ok(LegacyBindings {
        vars,
        rows: out_rows,
    })
}

fn legacy_constraints(
    constraints: &[Constraint],
    applied: &mut [bool],
    bound: &HashSet<usize>,
    slot_of: &HashMap<Arc<str>, usize>,
    rows: &mut Vec<Vec<Option<Value>>>,
) {
    for (ci, c) in constraints.iter().enumerate() {
        if applied[ci] {
            continue;
        }
        if !c.variables().iter().all(|v| bound.contains(&slot_of[v])) {
            continue;
        }
        applied[ci] = true;
        let lhs_t = lower_term(&c.lhs);
        let rhs_t = lower_term(&c.rhs);
        rows.retain(|row| {
            let get = |t: &LTerm| -> Value {
                match t {
                    LTerm::Const(v) => v.clone(),
                    LTerm::Var(v) => row[slot_of[v]].clone().expect("constraint vars bound"),
                }
            };
            cmp_values(c.op, &get(&lhs_t), &get(&rhs_t))
        });
    }
}

/// Converts new-path answer tuples to legacy rows for comparison.
pub fn resolve_tuples(tuples: &[crate::Tuple]) -> Vec<Vec<Value>> {
    tuples
        .iter()
        .map(|t| t.0.iter().map(|v: &Val| v.to_value()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parser::parse_query;
    use crate::schema::DatabaseSchema;

    #[test]
    fn legacy_matches_new_on_a_mixed_join() {
        let mut db = Database::new(
            DatabaseSchema::parse("p(id: int, name: str). w(name: str, year: int).").unwrap(),
        );
        db.insert_values("p", vec![Val::Int(1), Val::str("ana")])
            .unwrap();
        db.insert_values("p", vec![Val::Int(2), Val::str("bob")])
            .unwrap();
        db.insert_values("w", vec![Val::str("ana"), Val::Int(2001)])
            .unwrap();
        db.insert_values("w", vec![Val::str("ana"), Val::Int(2002)])
            .unwrap();
        let q = parse_query("q(I, Y) :- p(I, N), w(N, Y), Y > 2001").unwrap();
        let new = resolve_tuples(&crate::query::evaluate(&q, &db).unwrap());
        let legacy = evaluate_legacy(&q, &LegacyDatabase::from_database(&db)).unwrap();
        let a: HashSet<_> = new.into_iter().collect();
        let b: HashSet<_> = legacy.into_iter().collect();
        assert_eq!(a, b);
    }
}
