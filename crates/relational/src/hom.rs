//! Homomorphism checks between fact sets containing labeled nulls.
//!
//! Two distinct jobs share this machinery:
//!
//! 1. **The restricted-chase guard** (algorithm A6): before instantiating a
//!    rule head, the updater asks whether some homomorphic image of the head
//!    — universal positions fixed by the binding, existential positions
//!    flexible — already exists in the database. If so, inserting would add
//!    no information and is skipped; this is what bounds null invention.
//! 2. **Comparing databases modulo null renaming**: two runs of the
//!    distributed algorithm (or a run vs. the global fix-point oracle) mint
//!    differently-labeled nulls for the same existential facts. Database
//!    equivalence is therefore homomorphic equivalence, not equality.

use crate::database::Database;
use crate::tuple::Tuple;
use crate::value::{NullId, Val};
use std::collections::HashMap;
use std::sync::Arc;

/// A term of a fact pattern: either a fixed value that must match exactly, or
/// a flexible variable to be mapped consistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatTerm {
    /// Must match this exact value (constants, and nulls that already exist).
    Fixed(Val),
    /// A variable; all occurrences of the same id must map to one value.
    Flex(usize),
}

/// A fact with pattern terms, to be matched against a relation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactPattern {
    /// Target relation name.
    pub relation: Arc<str>,
    /// Pattern terms, one per column.
    pub terms: Vec<PatTerm>,
}

/// True iff there is an assignment of the flexible variables such that every
/// pattern is a fact of `db`. Fixed values (including existing nulls) must
/// match exactly.
///
/// Backtracking search; patterns are matched in order, most-constrained
/// first would be an optimization but head conjunctions are tiny (1–3 atoms)
/// so plain order suffices.
pub fn satisfiable(patterns: &[FactPattern], db: &Database) -> bool {
    let mut assignment: HashMap<usize, Val> = HashMap::new();
    backtrack(patterns, 0, db, &mut assignment)
}

fn backtrack(
    patterns: &[FactPattern],
    idx: usize,
    db: &Database,
    assignment: &mut HashMap<usize, Val>,
) -> bool {
    let Some(pat) = patterns.get(idx) else {
        return true;
    };
    let Ok(relation) = db.relation(&pat.relation) else {
        return false;
    };
    'tuples: for row in relation.iter() {
        if row.len() != pat.terms.len() {
            continue;
        }
        let mut newly_bound: Vec<usize> = Vec::new();
        for (pos, term) in pat.terms.iter().enumerate() {
            match term {
                PatTerm::Fixed(v) => {
                    if row[pos] != *v {
                        undo(assignment, &newly_bound);
                        continue 'tuples;
                    }
                }
                PatTerm::Flex(var) => match assignment.get(var) {
                    Some(bound) => {
                        if *bound != row[pos] {
                            undo(assignment, &newly_bound);
                            continue 'tuples;
                        }
                    }
                    None => {
                        assignment.insert(*var, row[pos]);
                        newly_bound.push(*var);
                    }
                },
            }
        }
        if backtrack(patterns, idx + 1, db, assignment) {
            return true;
        }
        undo(assignment, &newly_bound);
    }
    false
}

fn undo(assignment: &mut HashMap<usize, Val>, vars: &[usize]) {
    for v in vars {
        assignment.remove(v);
    }
}

/// True iff there is a homomorphism from the facts of `a` into the facts of
/// `b`: constants map to themselves, each labeled null of `a` maps to *some*
/// value of `b` (consistently across occurrences).
///
/// Null-free facts short-circuit to membership tests; facts sharing nulls are
/// grouped into connected components and each component is solved by
/// backtracking independently, which keeps the search tractable even on
/// databases with thousands of facts.
pub fn contained_modulo_nulls(a: &Database, b: &Database) -> bool {
    let mut null_components: UnionFind<NullId> = UnionFind::default();
    let mut null_facts: Vec<(Arc<str>, Tuple)> = Vec::new();

    for (rel_name, tuple) in a.all_facts() {
        let nulls: Vec<NullId> = tuple
            .values()
            .filter_map(|v| match v {
                Val::Null(id) => Some(*id),
                _ => None,
            })
            .collect();
        if nulls.is_empty() {
            // Fast path: must exist verbatim in b.
            match b.relation(&rel_name) {
                Ok(rel) if rel.contains(&tuple.0) => {}
                _ => return false,
            }
        } else {
            for pair in nulls.windows(2) {
                null_components.union(pair[0], pair[1]);
            }
            null_components.ensure(nulls[0]);
            null_facts.push((rel_name, tuple));
        }
    }

    // Group null-bearing facts by the component of (any of) their nulls.
    let mut groups: HashMap<NullId, Vec<FactPattern>> = HashMap::new();
    let mut flex_ids: HashMap<NullId, usize> = HashMap::new();
    let mut next_flex = 0usize;
    for (rel_name, tuple) in null_facts {
        let mut rep = None;
        let terms = tuple
            .values()
            .map(|v| match v {
                Val::Null(id) => {
                    let r = null_components.find(*id);
                    rep = Some(r);
                    let flex = *flex_ids.entry(*id).or_insert_with(|| {
                        let f = next_flex;
                        next_flex += 1;
                        f
                    });
                    PatTerm::Flex(flex)
                }
                other => PatTerm::Fixed(*other),
            })
            .collect();
        let rep = rep.expect("null-bearing fact has a component representative");
        groups.entry(rep).or_default().push(FactPattern {
            relation: rel_name,
            terms,
        });
    }

    groups.values().all(|patterns| satisfiable(patterns, b))
}

/// Homomorphic equivalence: containment in both directions. This is the
/// notion under which the distributed update result "equals" the global
/// fix-point regardless of which peer minted which null.
pub fn equivalent_modulo_nulls(a: &Database, b: &Database) -> bool {
    contained_modulo_nulls(a, b) && contained_modulo_nulls(b, a)
}

// ---------------------------------------------------------------------------
// Small union-find over null ids
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct UnionFind<T: Copy + Eq + std::hash::Hash> {
    parent: HashMap<T, T>,
}

impl<T: Copy + Eq + std::hash::Hash> Default for UnionFind<T> {
    fn default() -> Self {
        UnionFind {
            parent: HashMap::new(),
        }
    }
}

impl<T: Copy + Eq + std::hash::Hash> UnionFind<T> {
    fn ensure(&mut self, x: T) {
        self.parent.entry(x).or_insert(x);
    }

    fn find(&mut self, x: T) -> T {
        self.ensure(x);
        let p = self.parent[&x];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: T, b: T) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DatabaseSchema;
    use crate::value::NullFactory;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::parse("r(x: int, y: int). s(x: int).").unwrap()
    }

    fn int_tuple(vals: &[i64]) -> Vec<Val> {
        vals.iter().map(|&v| Val::Int(v)).collect()
    }

    #[test]
    fn ground_containment_is_membership() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        a.insert_values("r", int_tuple(&[1, 2])).unwrap();
        b.insert_values("r", int_tuple(&[1, 2])).unwrap();
        b.insert_values("r", int_tuple(&[3, 4])).unwrap();
        assert!(contained_modulo_nulls(&a, &b));
        assert!(!contained_modulo_nulls(&b, &a));
        assert!(!equivalent_modulo_nulls(&a, &b));
    }

    #[test]
    fn null_maps_to_constant() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        let mut nf = NullFactory::new(1);
        let n = nf.fresh();
        a.insert_values("r", vec![Val::Int(1), n]).unwrap();
        b.insert_values("r", int_tuple(&[1, 7])).unwrap();
        assert!(contained_modulo_nulls(&a, &b));
        assert!(!contained_modulo_nulls(&b, &a)); // 7 cannot map to a null? It can: constants map to themselves only.
    }

    #[test]
    fn shared_null_must_map_consistently() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        let mut nf = NullFactory::new(1);
        let n = nf.fresh();
        // a: r(1, N), s(N) — N shared.
        a.insert_values("r", vec![Val::Int(1), n]).unwrap();
        a.insert_values("s", vec![n]).unwrap();
        // b: r(1, 7), s(8) — no consistent image.
        b.insert_values("r", int_tuple(&[1, 7])).unwrap();
        b.insert_values("s", int_tuple(&[8])).unwrap();
        assert!(!contained_modulo_nulls(&a, &b));
        // Adding s(7) fixes it.
        b.insert_values("s", int_tuple(&[7])).unwrap();
        assert!(contained_modulo_nulls(&a, &b));
    }

    #[test]
    fn differently_labeled_nulls_are_equivalent() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        let mut nfa = NullFactory::new(1);
        let mut nfb = NullFactory::new(2);
        a.insert_values("r", vec![Val::Int(1), nfa.fresh()])
            .unwrap();
        b.insert_values("r", vec![Val::Int(1), nfb.fresh()])
            .unwrap();
        assert!(equivalent_modulo_nulls(&a, &b));
    }

    #[test]
    fn null_to_null_mapping_allowed() {
        let mut a = Database::new(schema());
        let mut b = Database::new(schema());
        let mut nf = NullFactory::new(1);
        let n1 = nf.fresh();
        let n2 = nf.fresh();
        // a has two facts with distinct nulls; b has one null used twice.
        a.insert_values("r", vec![Val::Int(1), n1]).unwrap();
        a.insert_values("r", vec![Val::Int(2), n2]).unwrap();
        let m = nf.fresh();
        b.insert_values("r", vec![Val::Int(1), m]).unwrap();
        b.insert_values("r", vec![Val::Int(2), m]).unwrap();
        // a -> b: n1 -> m, n2 -> m. Fine.
        assert!(contained_modulo_nulls(&a, &b));
        // b -> a: m must map to both n1 and n2 — impossible.
        assert!(!contained_modulo_nulls(&b, &a));
    }

    #[test]
    fn satisfiable_head_pattern() {
        let mut db = Database::new(schema());
        db.insert_values("r", int_tuple(&[1, 9])).unwrap();
        // Pattern r(1, Z) with Z flexible: satisfied by r(1,9).
        let pat = FactPattern {
            relation: Arc::from("r"),
            terms: vec![PatTerm::Fixed(Val::Int(1)), PatTerm::Flex(0)],
        };
        assert!(satisfiable(std::slice::from_ref(&pat), &db));
        // Pattern r(2, Z): not satisfied.
        let pat2 = FactPattern {
            relation: Arc::from("r"),
            terms: vec![PatTerm::Fixed(Val::Int(2)), PatTerm::Flex(0)],
        };
        assert!(!satisfiable(&[pat2], &db));
        // Joint pattern r(1, Z), s(Z): needs s(9).
        let pat3 = FactPattern {
            relation: Arc::from("s"),
            terms: vec![PatTerm::Flex(0)],
        };
        assert!(!satisfiable(&[pat.clone(), pat3.clone()], &db));
        db.insert_values("s", int_tuple(&[9])).unwrap();
        assert!(satisfiable(&[pat, pat3], &db));
    }

    #[test]
    fn empty_pattern_set_is_satisfiable() {
        let db = Database::new(schema());
        assert!(satisfiable(&[], &db));
    }

    #[test]
    fn unknown_relation_in_pattern_is_unsatisfiable() {
        let db = Database::new(schema());
        let pat = FactPattern {
            relation: Arc::from("zzz"),
            terms: vec![PatTerm::Flex(0)],
        };
        assert!(!satisfiable(&[pat], &db));
    }
}
