//! Relation and database schemas (the paper's `DBS` module).
//!
//! Every peer exports a database schema describing the part of its local
//! database shared with the network. Schemas are parsed from a compact text
//! form used throughout examples and tests:
//!
//! ```text
//! pub(id: int, title: str, year: int).
//! author(pid: int, name: str).
//! ```

use crate::error::{Error, Result};
use crate::value::Val;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Type of a column: integers or strings. Labeled nulls are admitted in any
/// column (they stand for an unknown constant of that column's type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integers.
    Int,
    /// Strings.
    Str,
}

impl ColumnType {
    /// Whether `value` inhabits this column type. Nulls inhabit every type.
    pub fn admits(self, value: &Val) -> bool {
        matches!(
            (self, value),
            (ColumnType::Int, Val::Int(_)) | (ColumnType::Str, Val::Sym(_)) | (_, Val::Null(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "int"),
            ColumnType::Str => write!(f, "str"),
        }
    }
}

/// A named column with a type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within its relation).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// Signature of a single relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name (unique within its database schema).
    pub name: Arc<str>,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl RelationSchema {
    /// Builds a relation schema from `(name, type)` column pairs.
    pub fn new(name: impl AsRef<str>, columns: Vec<(&str, ColumnType)>) -> Self {
        RelationSchema {
            name: Arc::from(name.as_ref()),
            columns: columns
                .into_iter()
                .map(|(n, ty)| ColumnDef {
                    name: n.to_string(),
                    ty,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validates a row against this signature (arity and column types).
    pub fn check(&self, values: &[Val]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(Error::ArityMismatch {
                relation: self.name.to_string(),
                expected: self.arity(),
                got: values.len(),
            });
        }
        for (i, (v, col)) in values.iter().zip(&self.columns).enumerate() {
            if !col.ty.admits(v) {
                return Err(Error::TypeMismatch {
                    relation: self.name.to_string(),
                    column: i,
                    detail: format!("expected {}, got {} ({v})", col.ty, v.type_name()),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A full database schema: a set of relation signatures.
///
/// Stored as a `BTreeMap` so that iteration order (and therefore everything
/// derived from it: message contents, statistics, traces) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatabaseSchema {
    relations: BTreeMap<Arc<str>, RelationSchema>,
}

impl DatabaseSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from relation signatures, rejecting duplicates.
    pub fn from_relations(relations: Vec<RelationSchema>) -> Result<Self> {
        let mut s = DatabaseSchema::new();
        for r in relations {
            s.add_relation(r)?;
        }
        Ok(s)
    }

    /// Adds one relation signature, rejecting duplicates.
    pub fn add_relation(&mut self, rel: RelationSchema) -> Result<()> {
        if self.relations.contains_key(&rel.name) {
            return Err(Error::DuplicateRelation(rel.name.to_string()));
        }
        self.relations.insert(rel.name.clone(), rel);
        Ok(())
    }

    /// Looks up a relation signature by name.
    pub fn relation(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name)
    }

    /// Looks up a relation signature or errors.
    pub fn relation_or_err(&self, name: &str) -> Result<&RelationSchema> {
        self.relation(name)
            .ok_or_else(|| Error::UnknownRelation(name.to_string()))
    }

    /// Iterates relation signatures in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the schema declares no relation.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Parses the textual schema form:
    /// `rel(col: type, ...). other(...).` — whitespace and newlines are
    /// insignificant; a trailing period ends each declaration.
    pub fn parse(input: &str) -> Result<Self> {
        parse_schema(input)
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            writeln!(f, "{r}.")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Schema text parser
// ---------------------------------------------------------------------------

struct SchemaParser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> SchemaParser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else if b == b'#' {
                // Comment to end of line.
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn expect(&mut self, ch: u8) -> Result<()> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", ch as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(&self.input[start..self.pos])
    }
}

fn parse_schema(input: &str) -> Result<DatabaseSchema> {
    let mut p = SchemaParser { input, pos: 0 };
    let mut schema = DatabaseSchema::new();
    loop {
        p.skip_ws();
        if p.peek().is_none() {
            break;
        }
        let name = p.ident()?.to_string();
        p.skip_ws();
        p.expect(b'(')?;
        let mut columns = Vec::new();
        loop {
            p.skip_ws();
            if p.peek() == Some(b')') {
                p.pos += 1;
                break;
            }
            let col = p.ident()?.to_string();
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let ty = match p.ident()? {
                "int" => ColumnType::Int,
                "str" => ColumnType::Str,
                other => {
                    return Err(Error::Parse {
                        offset: p.pos,
                        message: format!("unknown column type `{other}` (expected int/str)"),
                    })
                }
            };
            columns.push(ColumnDef { name: col, ty });
            p.skip_ws();
            if p.peek() == Some(b',') {
                p.pos += 1;
            }
        }
        p.skip_ws();
        p.expect(b'.')?;
        schema.add_relation(RelationSchema {
            name: Arc::from(name.as_str()),
            columns,
        })?;
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_relations() {
        let s = DatabaseSchema::parse(
            "pub(id: int, title: str, year: int).\nauthor(pid: int, name: str).",
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        let p = s.relation("pub").unwrap();
        assert_eq!(p.arity(), 3);
        assert_eq!(p.columns[1].ty, ColumnType::Str);
        assert_eq!(p.column_index("year"), Some(2));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        let e = DatabaseSchema::parse("r(x: float).").unwrap_err();
        assert!(matches!(e, Error::Parse { .. }));
    }

    #[test]
    fn parse_rejects_duplicate_relation() {
        let e = DatabaseSchema::parse("r(x: int). r(y: int).").unwrap_err();
        assert_eq!(e, Error::DuplicateRelation("r".to_string()));
    }

    #[test]
    fn parse_allows_comments_and_whitespace() {
        let s = DatabaseSchema::parse("# schema for node A\n  a ( x : int , y : str ) .").unwrap();
        assert_eq!(s.relation("a").unwrap().arity(), 2);
    }

    #[test]
    fn parse_empty_input_gives_empty_schema() {
        let s = DatabaseSchema::parse("  # nothing\n").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = DatabaseSchema::parse("r(x: int, y: str).").unwrap();
        let r = s.relation("r").unwrap();
        assert!(r.check(&[Val::Int(1), Val::str("a")]).is_ok());
        assert!(matches!(
            r.check(&[Val::Int(1)]),
            Err(Error::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.check(&[Val::str("a"), Val::str("b")]),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nulls_admitted_in_any_column() {
        use crate::value::NullId;
        let s = DatabaseSchema::parse("r(x: int, y: str).").unwrap();
        let r = s.relation("r").unwrap();
        let n = Val::Null(NullId::new(0, 0));
        assert!(r.check(&[n, n]).is_ok());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let s = DatabaseSchema::parse("b(x: int, y: int). a(u: str).").unwrap();
        let printed = s.to_string();
        let reparsed = DatabaseSchema::parse(&printed).unwrap();
        assert_eq!(s, reparsed);
    }
}
