//! Restricted-chase application of rule heads (the paper's algorithm A6,
//! `UpdateLocalData`).
//!
//! Given a binding of the rule body's variables, the head conjunction is
//! instantiated: universal variables take their bound values, existential
//! variables get **fresh labeled nulls** — *unless* the database already
//! satisfies the instantiated head up to a homomorphism of the existential
//! positions, in which case nothing is inserted. This is the paper's
//!
//! > `if π_R(t) ¬∈ R insert (π_R(t)) into R with new values for existential`
//!
//! strengthened to the standard *restricted chase*, which is what actually
//! bounds null invention. A configurable null-derivation-depth limit guards
//! against rule sets that are not weakly acyclic (on which any chase may
//! diverge; see `p2p-core`'s weak-acyclicity checker).

use crate::database::Database;
use crate::error::{Error, Result};
use crate::hom::{satisfiable, FactPattern, PatTerm};
use crate::query::ast::{Atom, Constraint, Term};
use crate::query::eval::evaluate_bindings;
use crate::tuple::Tuple;
use crate::value::{NullFactory, NullId, Val};
use std::collections::HashMap;
use std::sync::Arc;

/// Chase configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Maximum null-derivation depth: a null invented from a binding whose
    /// deepest null has depth `d` gets depth `d + 1`; exceeding the limit is
    /// an error rather than a hang. Depth 0 = invented from a null-free
    /// binding.
    pub max_null_depth: u32,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        // Generous: weakly-acyclic rule sets never get anywhere near this,
        // while a diverging chase hits it quickly.
        ChaseConfig { max_null_depth: 64 }
    }
}

/// Tracks null derivation depths across chase steps; owned by whoever owns
/// the [`NullFactory`] (one per peer).
#[derive(Debug, Clone, Default)]
pub struct ChaseState {
    depths: HashMap<NullId, u32>,
}

impl ChaseState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the depth of a null received from elsewhere (e.g. carried by
    /// an answer message). Unknown nulls default to depth 0, so recording is
    /// only needed when the sender communicates depth — our peers do.
    pub fn record(&mut self, id: NullId, depth: u32) {
        let entry = self.depths.entry(id).or_insert(depth);
        if depth > *entry {
            *entry = depth;
        }
    }

    /// Depth of a value: nulls as recorded (unknown ⇒ 0), constants 0.
    pub fn depth_of(&self, v: &Val) -> u32 {
        match v {
            Val::Null(id) => self.depths.get(id).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// Exports every recorded `(null, depth)` pair in deterministic order —
    /// the persistence layer snapshots this alongside the database so a
    /// recovered peer keeps the global depth safety valve intact.
    pub fn export(&self) -> Vec<(NullId, u32)> {
        let mut out: Vec<(NullId, u32)> = self.depths.iter().map(|(id, d)| (*id, *d)).collect();
        out.sort_unstable();
        out
    }

    /// Exports known depths for the given tuple's nulls (for shipping along
    /// with answers).
    pub fn depths_for(&self, tuple: &Tuple) -> Vec<(NullId, u32)> {
        tuple
            .values()
            .filter_map(|v| match v {
                Val::Null(id) => Some((*id, self.depth_of(v))),
                _ => None,
            })
            .collect()
    }
}

/// Outcome of one head application.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaseOutcome {
    /// Facts actually inserted, as `(relation, tuple)` pairs.
    pub inserted: Vec<(Arc<str>, Tuple)>,
    /// Number of fresh nulls minted.
    pub nulls_minted: usize,
}

impl ChaseOutcome {
    /// True iff nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
    }
}

/// Applies an instantiated head conjunction to `db` under one binding.
///
/// * `head` — unqualified head atoms; variables present in `binding` are
///   universal, the rest are existential.
/// * `binding` — values for the universal variables.
///
/// Returns the facts inserted (empty when the guard found the head already
/// satisfied).
pub fn apply_head(
    db: &mut Database,
    head: &[Atom],
    binding: &HashMap<Arc<str>, Val>,
    nulls: &mut NullFactory,
    state: &mut ChaseState,
    config: &ChaseConfig,
) -> Result<ChaseOutcome> {
    // Build the satisfaction pattern: universal positions fixed, existential
    // positions flexible (shared across atoms by variable name).
    let mut flex_of: HashMap<Arc<str>, usize> = HashMap::new();
    let mut patterns = Vec::with_capacity(head.len());
    for atom in head {
        if atom.qualifier.is_some() {
            return Err(Error::QualifiedAtom(atom.to_string()));
        }
        let schema = db.schema().relation_or_err(&atom.relation)?;
        if schema.arity() != atom.terms.len() {
            return Err(Error::ArityMismatch {
                relation: atom.relation.to_string(),
                expected: schema.arity(),
                got: atom.terms.len(),
            });
        }
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => PatTerm::Fixed(*c),
                Term::Var(v) => match binding.get(v) {
                    Some(val) => PatTerm::Fixed(*val),
                    None => {
                        let next = flex_of.len();
                        PatTerm::Flex(*flex_of.entry(v.clone()).or_insert(next))
                    }
                },
            })
            .collect();
        patterns.push(FactPattern {
            relation: atom.relation.clone(),
            terms,
        });
    }

    if satisfiable(&patterns, db) {
        return Ok(ChaseOutcome::default());
    }

    // Depth guard: the new nulls derive from the binding's deepest null.
    let parent_depth = binding
        .values()
        .map(|v| state.depth_of(v))
        .max()
        .unwrap_or(0);
    let new_depth = parent_depth + 1;
    if !flex_of.is_empty() && new_depth > config.max_null_depth {
        return Err(Error::ChaseDepthExceeded {
            limit: config.max_null_depth,
        });
    }

    // Mint one fresh null per distinct existential variable.
    let mut fresh: HashMap<Arc<str>, Val> = HashMap::new();
    for (var, _) in flex_of.iter() {
        let n = nulls.fresh();
        if let Val::Null(id) = n {
            state.record(id, new_depth);
        }
        fresh.insert(var.clone(), n);
    }

    let mut outcome = ChaseOutcome {
        inserted: Vec::new(),
        nulls_minted: fresh.len(),
    };
    for atom in head {
        let values: Vec<Val> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => binding.get(v).copied().unwrap_or_else(|| fresh[v]),
            })
            .collect();
        let tuple = Tuple::new(values);
        if db.insert(&atom.relation, tuple.clone())? {
            outcome.inserted.push((atom.relation.clone(), tuple));
        }
    }
    Ok(outcome)
}

/// Evaluates a rule entirely locally (body and head over the same database)
/// and chases every binding. Used by the global fix-point oracle and by
/// tests; the distributed layer instead evaluates bodies remotely and calls
/// [`apply_head`] with shipped bindings.
pub fn apply_rule_local(
    db: &mut Database,
    body: &[Atom],
    constraints: &[Constraint],
    head: &[Atom],
    nulls: &mut NullFactory,
    state: &mut ChaseState,
    config: &ChaseConfig,
) -> Result<ChaseOutcome> {
    let bindings = evaluate_bindings(body, constraints, db)?;
    let mut total = ChaseOutcome::default();
    for i in 0..bindings.len() {
        let row = bindings.row(i);
        let map: HashMap<Arc<str>, Val> = bindings
            .vars
            .iter()
            .cloned()
            .zip(row.iter().copied())
            .collect();
        let outcome = apply_head(db, head, &map, nulls, state, config)?;
        total.nulls_minted += outcome.nulls_minted;
        total.inserted.extend(outcome.inserted);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parser::{parse_atom, parse_query};
    use crate::schema::DatabaseSchema;

    fn db() -> Database {
        Database::new(
            DatabaseSchema::parse("b(x: int, y: int). c(x: int, y: int). s(x: int).").unwrap(),
        )
    }

    fn setup() -> (Database, NullFactory, ChaseState, ChaseConfig) {
        (
            db(),
            NullFactory::new(9),
            ChaseState::new(),
            ChaseConfig::default(),
        )
    }

    fn bind(pairs: &[(&str, Val)]) -> HashMap<Arc<str>, Val> {
        pairs.iter().map(|(k, v)| (Arc::from(*k), *v)).collect()
    }

    #[test]
    fn ground_head_inserts_once() {
        let (mut d, mut nf, mut st, cfg) = setup();
        let head = vec![parse_atom("c(X, Y)").unwrap()];
        let b = bind(&[("X", Val::Int(1)), ("Y", Val::Int(2))]);
        let o1 = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert_eq!(o1.inserted.len(), 1);
        assert_eq!(o1.nulls_minted, 0);
        // Second application: guard fires, nothing inserted.
        let o2 = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert!(o2.is_empty());
    }

    #[test]
    fn existential_head_invents_null_once() {
        let (mut d, mut nf, mut st, cfg) = setup();
        // c(X, Z) with Z existential — the shape of paper rule r2.
        let head = vec![parse_atom("c(X, Z)").unwrap()];
        let b = bind(&[("X", Val::Int(1))]);
        let o1 = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert_eq!(o1.inserted.len(), 1);
        assert_eq!(o1.nulls_minted, 1);
        assert!(o1.inserted[0].1 .0[1].is_null());
        // Guard: c(1, _) already homomorphically satisfied.
        let o2 = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert!(o2.is_empty());
        assert_eq!(d.relation("c").unwrap().len(), 1);
    }

    #[test]
    fn existing_constant_satisfies_existential_head() {
        let (mut d, mut nf, mut st, cfg) = setup();
        d.insert_values("c", vec![Val::Int(1), Val::Int(42)])
            .unwrap();
        let head = vec![parse_atom("c(X, Z)").unwrap()];
        let b = bind(&[("X", Val::Int(1))]);
        // c(1, 42) already witnesses c(1, ∃Z): no insertion.
        let o = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert!(o.is_empty());
    }

    #[test]
    fn shared_existential_across_head_atoms_uses_one_null() {
        let (mut d, mut nf, mut st, cfg) = setup();
        let head = vec![parse_atom("c(X, Z)").unwrap(), parse_atom("s(Z)").unwrap()];
        let b = bind(&[("X", Val::Int(3))]);
        let o = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert_eq!(o.inserted.len(), 2);
        assert_eq!(o.nulls_minted, 1);
        let z1 = &o.inserted[0].1 .0[1];
        let z2 = &o.inserted[1].1 .0[0];
        assert_eq!(z1, z2);
    }

    #[test]
    fn joint_satisfaction_required_for_multi_atom_head() {
        let (mut d, mut nf, mut st, cfg) = setup();
        // c(3, 42) exists but s(42) does not: the conjunction c(3,Z) ∧ s(Z)
        // is NOT satisfied, so the chase must fire.
        d.insert_values("c", vec![Val::Int(3), Val::Int(42)])
            .unwrap();
        let head = vec![parse_atom("c(X, Z)").unwrap(), parse_atom("s(Z)").unwrap()];
        let b = bind(&[("X", Val::Int(3))]);
        let o = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert_eq!(o.nulls_minted, 1);
        assert_eq!(d.relation("c").unwrap().len(), 2);
        assert_eq!(d.relation("s").unwrap().len(), 1);
    }

    #[test]
    fn apply_rule_local_computes_all_bindings() {
        let (mut d, mut nf, mut st, cfg) = setup();
        d.insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        d.insert_values("b", vec![Val::Int(2), Val::Int(3)])
            .unwrap();
        // c(X, Y) :- b(X, Y) — plain copy rule.
        let q = parse_query("q(X, Y) :- b(X, Y)").unwrap();
        let head = vec![parse_atom("c(X, Y)").unwrap()];
        let o = apply_rule_local(
            &mut d,
            &q.atoms,
            &q.constraints,
            &head,
            &mut nf,
            &mut st,
            &cfg,
        )
        .unwrap();
        assert_eq!(o.inserted.len(), 2);
        // Idempotent.
        let o2 = apply_rule_local(
            &mut d,
            &q.atoms,
            &q.constraints,
            &head,
            &mut nf,
            &mut st,
            &cfg,
        )
        .unwrap();
        assert!(o2.is_empty());
    }

    #[test]
    fn depth_guard_stops_diverging_chase() {
        // Diverging pair: b(X,Y) => c(Y,Z) and c(X,Y) => b(Y,Z) — each round
        // inserts a fact whose key is last round's fresh null. Not weakly
        // acyclic; the depth limit must stop it.
        let (mut d, mut nf, mut st, _) = setup();
        let cfg = ChaseConfig { max_null_depth: 5 };
        d.insert_values("b", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        let r1_body = parse_query("q(X, Y) :- b(X, Y)").unwrap();
        let r1_head = vec![parse_atom("c(Y, Z)").unwrap()];
        let r2_body = parse_query("q(X, Y) :- c(X, Y)").unwrap();
        let r2_head = vec![parse_atom("b(Y, Z)").unwrap()];
        let mut hit_limit = false;
        for _ in 0..100 {
            let a = apply_rule_local(
                &mut d,
                &r1_body.atoms,
                &[],
                &r1_head,
                &mut nf,
                &mut st,
                &cfg,
            );
            let b = apply_rule_local(
                &mut d,
                &r2_body.atoms,
                &[],
                &r2_head,
                &mut nf,
                &mut st,
                &cfg,
            );
            match (a, b) {
                (Err(Error::ChaseDepthExceeded { .. }), _)
                | (_, Err(Error::ChaseDepthExceeded { .. })) => {
                    hit_limit = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(hit_limit, "depth guard should have fired");
    }

    #[test]
    fn head_with_constant_terms() {
        let (mut d, mut nf, mut st, cfg) = setup();
        let head = vec![parse_atom("c(X, 99)").unwrap()];
        let b = bind(&[("X", Val::Int(1))]);
        let o = apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg).unwrap();
        assert_eq!(o.inserted[0].1, Tuple::new(vec![Val::Int(1), Val::Int(99)]));
    }

    #[test]
    fn qualified_head_atom_rejected() {
        let (mut d, mut nf, mut st, cfg) = setup();
        let head = vec![parse_atom("A:c(X, Y)").unwrap()];
        let b = bind(&[("X", Val::Int(1)), ("Y", Val::Int(1))]);
        assert!(matches!(
            apply_head(&mut d, &head, &b, &mut nf, &mut st, &cfg),
            Err(Error::QualifiedAtom(_))
        ));
    }
}
