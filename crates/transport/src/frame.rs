//! Length-prefixed framing: `[u32 LE payload length][payload]`.
//!
//! The reader is written against the raw `Read` contract — `read` may
//! return any prefix of what was asked for, so frames arrive split across
//! arbitrary TCP segment boundaries. Three terminal outcomes are kept
//! distinct:
//!
//! * `Ok(None)` — EOF **exactly at** a frame boundary: the peer closed
//!   cleanly (normal shutdown).
//! * [`TransportError::UnexpectedEof`] — EOF inside a header or payload:
//!   the peer died mid-message.
//! * [`TransportError::FrameTooLarge`] — the header announces more than
//!   the configured cap, which in practice means garbage bytes or a
//!   foreign protocol on the port.
//!
//! No outcome panics; a peer dropping mid-frame is a value.

use crate::error::{TransportError, TransportResult};
use std::io::{ErrorKind, Read, Write};

/// Bytes of the frame header.
pub const LEN_PREFIX: usize = 4;

/// Default cap on a single frame's payload (64 MiB). Far above any real
/// protocol message, far below an `u32::MAX` allocation bomb.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// Writes one frame. The header and payload go through the writer as-is;
/// callers that care about syscall counts wrap the stream in a
/// `BufWriter` and flush per frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidInput, "frame exceeds u32 bytes"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Fills `buf` as far as the stream allows. Returns the number of bytes
/// actually read: `buf.len()` normally, less if EOF arrived first.
/// `Interrupted` is retried; any other error is surfaced as
/// [`TransportError::Io`].
fn read_full(r: &mut impl Read, buf: &mut [u8], op: &str) -> TransportResult<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::io(op, &e)),
        }
    }
    Ok(filled)
}

/// Reads one frame. `Ok(None)` means the stream ended cleanly at a frame
/// boundary; every torn read is a typed error (see module docs).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> TransportResult<Option<Vec<u8>>> {
    let mut header = [0u8; LEN_PREFIX];
    let got = read_full(r, &mut header, "read frame header")?;
    if got == 0 {
        return Ok(None);
    }
    if got < LEN_PREFIX {
        return Err(TransportError::UnexpectedEof {
            got,
            needed: LEN_PREFIX,
        });
    }
    let len = u32::from_le_bytes(header);
    if len > max_frame {
        return Err(TransportError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload, "read frame payload")?;
    if got < payload.len() {
        return Err(TransportError::UnexpectedEof {
            got,
            needed: payload.len(),
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that hands out its bytes in a fixed dribble of chunk sizes
    /// (cycled), exercising every split-read path.
    pub struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunks: Vec<usize>,
        next: usize,
    }

    impl<'a> Dribble<'a> {
        pub fn new(data: &'a [u8], chunks: Vec<usize>) -> Self {
            Dribble {
                data,
                pos: 0,
                chunks,
                next: 0,
            }
        }
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let chunk = self.chunks[self.next % self.chunks.len()].max(1);
            self.next += 1;
            let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p).unwrap();
        }
        out
    }

    #[test]
    fn round_trips_through_single_byte_reads() {
        let stream = framed(&[b"hello", b"", b"world!"]);
        let mut r = Dribble::new(&stream, vec![1]);
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"world!");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn clean_eof_at_boundary_is_none() {
        let mut r = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_is_typed() {
        let mut r = Cursor::new(vec![5, 0]);
        match read_frame(&mut r, 1024) {
            Err(TransportError::UnexpectedEof { got: 2, needed: 4 }) => {}
            other => panic!("expected UnexpectedEof in header, got {other:?}"),
        }
    }

    #[test]
    fn eof_inside_payload_is_typed() {
        let mut stream = framed(&[b"hello"]);
        stream.truncate(stream.len() - 2);
        let mut r = Dribble::new(&stream, vec![3, 1]);
        match read_frame(&mut r, 1024) {
            Err(TransportError::UnexpectedEof { got: 3, needed: 5 }) => {}
            other => panic!("expected UnexpectedEof in payload, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocating() {
        let mut r = Cursor::new(u32::MAX.to_le_bytes().to_vec());
        match read_frame(&mut r, 1024) {
            Err(TransportError::FrameTooLarge { len, max: 1024 }) => {
                assert_eq!(len, u32::MAX);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}
