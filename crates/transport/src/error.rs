//! Typed transport failures.
//!
//! Every way a socket can betray a peer gets its own variant, so the layers
//! above can react structurally (e.g. `p2p_core` maps a broken pipe to its
//! `PeerDisconnected` error the same way PR 6 mapped worker panics) instead
//! of string-matching `io::Error` text. A peer dropping mid-message is a
//! *value*, never a panic.

use p2p_net::Codec;
use p2p_topology::NodeId;
use std::fmt;

/// Result alias for transport operations.
pub type TransportResult<T> = std::result::Result<T, TransportError>;

/// Why an acceptor refused a handshake. Carried as a status byte in the
/// reply frame, so the *connecting* side gets the typed reason too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Protocol version differs.
    Version,
    /// The two endpoints are configured with different wire codecs.
    Codec,
    /// The hello names a node the acceptor does not serve pipes for.
    UnknownNode,
    /// The hello frame did not parse (bad magic, truncated, bad enum byte).
    Malformed,
}

impl RejectReason {
    /// Wire encoding (status byte of the handshake reply; `0` is "accepted").
    pub fn as_u8(self) -> u8 {
        match self {
            RejectReason::Version => 1,
            RejectReason::Codec => 2,
            RejectReason::UnknownNode => 3,
            RejectReason::Malformed => 4,
        }
    }

    /// Decodes a status byte (`0` maps to `None`: accepted).
    pub fn from_u8(b: u8) -> Option<Option<Self>> {
        match b {
            0 => Some(None),
            1 => Some(Some(RejectReason::Version)),
            2 => Some(Some(RejectReason::Codec)),
            3 => Some(Some(RejectReason::UnknownNode)),
            4 => Some(Some(RejectReason::Malformed)),
            _ => None,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Version => write!(f, "protocol version mismatch"),
            RejectReason::Codec => write!(f, "codec mismatch"),
            RejectReason::UnknownNode => write!(f, "unknown node"),
            RejectReason::Malformed => write!(f, "malformed hello"),
        }
    }
}

/// Errors raised by the TCP transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// OS-level socket failure, annotated with the failing operation.
    Io {
        /// What the transport was doing (e.g. `bind 127.0.0.1:7000`).
        op: String,
        /// The `io::Error` text.
        detail: String,
    },
    /// A handshake frame did not start with the protocol magic.
    BadMagic {
        /// The four bytes actually received.
        got: [u8; 4],
    },
    /// The remote speaks a different protocol version.
    VersionMismatch {
        /// Version in the received hello.
        got: u16,
        /// Version this endpoint speaks.
        want: u16,
    },
    /// The remote is configured with a different wire codec.
    CodecMismatch {
        /// Codec in the received hello.
        got: Codec,
        /// Codec this endpoint runs.
        want: Codec,
    },
    /// A hello named a node this acceptor does not know.
    UnknownPeer {
        /// The claimed node id.
        node: NodeId,
    },
    /// A handshake frame failed to parse.
    MalformedHello {
        /// What was wrong.
        detail: String,
    },
    /// The remote acceptor rejected our hello (client-side view of one of
    /// the above, relayed through the reply frame's status byte).
    Rejected {
        /// Typed reason from the status byte.
        reason: RejectReason,
        /// Human-readable detail the acceptor attached.
        detail: String,
    },
    /// The stream ended in the middle of a frame (header or payload): the
    /// remote process died or closed mid-message.
    UnexpectedEof {
        /// Bytes of the current unit actually read.
        got: usize,
        /// Bytes the frame header promised.
        needed: usize,
    },
    /// A frame header announced a length above the configured cap —
    /// almost certainly garbage or a codec mismatch that slipped through.
    FrameTooLarge {
        /// Announced payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// A received payload failed to decode under the configured codec.
    Decode {
        /// The pipe it arrived on.
        from: NodeId,
        /// Decoder error text.
        detail: String,
    },
    /// An established pipe died and reconnection attempts were exhausted,
    /// or an inbound pipe broke mid-frame.
    PeerDisconnected {
        /// The unreachable peer.
        node: NodeId,
        /// Last failure observed.
        detail: String,
    },
    /// An outgoing pipe could never be established.
    ConnectFailed {
        /// The peer we tried to reach.
        node: NodeId,
        /// Its configured address.
        addr: String,
        /// Last failure observed.
        detail: String,
    },
    /// A message was queued for a node the runtime has no address for.
    NoRoute {
        /// The addressless destination.
        node: NodeId,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { op, detail } => write!(f, "{op}: {detail}"),
            TransportError::BadMagic { got } => {
                write!(f, "handshake does not start with `P2PD` (got {got:?})")
            }
            TransportError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this node v{want}"
                )
            }
            TransportError::CodecMismatch { got, want } => write!(
                f,
                "codec mismatch: peer is configured with `{}`, this node runs `{}`",
                got.name(),
                want.name()
            ),
            TransportError::UnknownPeer { node } => {
                write!(
                    f,
                    "handshake names node {node}, which this acceptor does not serve"
                )
            }
            TransportError::MalformedHello { detail } => {
                write!(f, "malformed handshake: {detail}")
            }
            TransportError::Rejected { reason, detail } => {
                write!(f, "handshake rejected ({reason}): {detail}")
            }
            TransportError::UnexpectedEof { got, needed } => write!(
                f,
                "connection closed mid-frame ({got} of {needed} bytes received)"
            ),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            TransportError::Decode { from, detail } => {
                write!(f, "undecodable frame from node {from}: {detail}")
            }
            TransportError::PeerDisconnected { node, detail } => {
                write!(f, "pipe to node {node} broke: {detail}")
            }
            TransportError::ConnectFailed { node, addr, detail } => {
                write!(f, "cannot reach node {node} at {addr}: {detail}")
            }
            TransportError::NoRoute { node } => {
                write!(f, "no address configured for node {node}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Wraps an `io::Error` with the operation that hit it.
    pub fn io(op: impl Into<String>, err: &std::io::Error) -> Self {
        TransportError::Io {
            op: op.into(),
            detail: err.to_string(),
        }
    }
}
