//! The socket-backed runtime: one acceptor thread, one reader thread per
//! inbound connection, one writer thread per outgoing pipe, and a
//! single-threaded main loop that owns the peer.
//!
//! The delivery contract is the same one the simulator and the threaded
//! runtime honour: handlers run to completion one at a time, communicate
//! only through [`Context`], and each FIFO pipe preserves send order (a
//! pipe is one TCP connection, so ordering comes for free). Fan-out
//! payloads queued via `Context::send_to_many` share one `Arc`, and the
//! runtime encodes each unique message exactly once per drain — the
//! per-`Arc` memo the simulator grew in PR 7, applied to real bytes.
//!
//! Threads communicate over `std::sync::mpsc`; every failure travels as a
//! typed [`TransportError`] event into the main loop, never as a panic.

use crate::error::{TransportError, TransportResult};
use crate::frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use crate::handshake::{client_handshake, server_handshake, Hello, HelloKind};
use crate::stats::{StatCells, TransportStats};
use p2p_net::{Codec, Context, Peer, SimTime};
use p2p_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a message type crosses the wire. The runtime is generic over this,
/// so the transport crate stays protocol-agnostic; `p2p_core` implements
/// it for `ProtocolMsg` under both codecs.
pub trait FrameCodec<M>: Send + Sync + 'static {
    /// Which codec this encoder implements (checked in the handshake).
    fn codec(&self) -> Codec;
    /// Encodes one message into a frame payload.
    fn encode(&self, msg: &M) -> Vec<u8>;
    /// Decodes one frame payload.
    fn decode(&self, bytes: &[u8]) -> Result<M, String>;
}

/// Static configuration of one socket-backed node.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// This node's id (sent in pipe handshakes).
    pub node: NodeId,
    /// Address to listen on.
    pub listen: SocketAddr,
    /// Peer id → address map (who this node can *dial*).
    pub peers: BTreeMap<NodeId, SocketAddr>,
    /// Node ids accepted on inbound pipes. Empty means "whoever is in
    /// `peers`" — but a node may legitimately accept a declared peer whose
    /// address it never learned, so callers with a roster set this wider.
    pub accept_from: BTreeSet<NodeId>,
    /// Per-frame payload cap.
    pub max_frame: u32,
    /// Connection attempts before an outgoing pipe is declared dead.
    pub connect_attempts: u32,
    /// Pause between connection attempts.
    pub connect_backoff: Duration,
}

impl SocketConfig {
    /// A config with the default frame cap and a ~5 s connect budget
    /// (100 × 50 ms) — generous enough for a whole cluster cold-starting.
    pub fn new(node: NodeId, listen: SocketAddr) -> Self {
        SocketConfig {
            node,
            listen,
            peers: BTreeMap::new(),
            accept_from: BTreeSet::new(),
            max_frame: DEFAULT_MAX_FRAME,
            connect_attempts: 100,
            connect_backoff: Duration::from_millis(50),
        }
    }
}

/// What the control hook tells the runtime to do with a control request.
pub enum ControlAction {
    /// Send this reply frame and keep serving.
    Reply(Vec<u8>),
    /// Send this reply frame, wait for it to flush, then shut down.
    ReplyThenShutdown(Vec<u8>),
}

/// Reply travelling from the main loop back to a control reader thread.
struct ControlReply {
    bytes: Vec<u8>,
    /// When present, the control thread signals here after flushing —
    /// so a shutdown reply reaches the launcher before the process exits.
    flushed: Option<mpsc::Sender<()>>,
}

enum Event<M> {
    /// A protocol message arrived on an inbound pipe.
    Deliver { from: NodeId, msg: M },
    /// A control request arrived; the reply goes back through `reply`.
    Control {
        body: Vec<u8>,
        reply: mpsc::Sender<ControlReply>,
    },
    /// An inbound pipe reached clean EOF (peer shut down normally).
    PipeClosed,
    /// A thread hit an unrecoverable, typed failure.
    Fatal(TransportError),
}

struct WriterSeat {
    tx: mpsc::Sender<Arc<Vec<u8>>>,
    handle: JoinHandle<()>,
}

/// A bound, accepting socket node. [`SocketRuntime::run`] consumes it and
/// drives the peer until a control shutdown or a fatal transport error.
pub struct SocketRuntime<M, C> {
    config: SocketConfig,
    codec: Arc<C>,
    local_addr: SocketAddr,
    stats: Arc<StatCells>,
    shutdown: Arc<AtomicBool>,
    event_tx: mpsc::Sender<Event<M>>,
    event_rx: mpsc::Receiver<Event<M>>,
    writers: BTreeMap<NodeId, WriterSeat>,
    acceptor: Option<JoinHandle<()>>,
}

impl<M, C> SocketRuntime<M, C>
where
    M: Clone + Send + 'static,
    C: FrameCodec<M>,
{
    /// Binds the listener and starts accepting. Handshakes and reads
    /// happen on background threads from here on; nothing is delivered
    /// until [`SocketRuntime::run`].
    pub fn bind(config: SocketConfig, codec: C) -> TransportResult<Self> {
        let listener = TcpListener::bind(config.listen)
            .map_err(|e| TransportError::io(format!("bind {}", config.listen), &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| TransportError::io("local_addr", &e))?;
        let (event_tx, event_rx) = mpsc::channel();
        let stats = Arc::new(StatCells::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let codec = Arc::new(codec);

        let acceptor = {
            let event_tx = event_tx.clone();
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let codec = Arc::clone(&codec);
            let my_node = config.node;
            let known: Arc<BTreeSet<NodeId>> = Arc::new(if config.accept_from.is_empty() {
                config.peers.keys().copied().collect()
            } else {
                config.accept_from.clone()
            });
            let max_frame = config.max_frame;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let event_tx = event_tx.clone();
                    let stats = Arc::clone(&stats);
                    let codec = Arc::clone(&codec);
                    let known = Arc::clone(&known);
                    std::thread::spawn(move || {
                        serve_connection(stream, my_node, codec, known, max_frame, stats, event_tx)
                    });
                }
            })
        };

        Ok(SocketRuntime {
            config,
            codec,
            local_addr,
            stats,
            shutdown,
            event_tx,
            event_rx,
            writers: BTreeMap::new(),
            acceptor: Some(acceptor),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current transport counters.
    pub fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    /// Drives the peer until a control shutdown or a fatal error.
    ///
    /// * `start` runs once before any delivery — a durable node sends its
    ///   resync requests from here.
    /// * `on_control` handles each control request; its context's outgoing
    ///   messages are shipped like a handler's (this is how the launcher
    ///   injects the session-starting message).
    pub fn run<P, S, F>(
        mut self,
        mut peer: P,
        start: S,
        mut on_control: F,
    ) -> TransportResult<(P, TransportStats)>
    where
        P: Peer<M>,
        S: FnOnce(&mut P, &mut Context<M>),
        F: FnMut(&mut P, Vec<u8>, &mut Context<M>, TransportStats) -> ControlAction,
    {
        let started = Instant::now();
        let node = self.config.node;
        let mut next_id: u64 = 1;
        let mut pending: VecDeque<(NodeId, M)> = VecDeque::new();

        let mut ctx = Context::new(wall(started), node);
        start(&mut peer, &mut ctx);
        if let Err(e) = self.ship(ctx.take_outgoing(), &mut pending) {
            self.teardown();
            return Err(e);
        }

        loop {
            while let Some((from, msg)) = pending.pop_front() {
                let mut ctx = Context::new(wall(started), node);
                peer.on_envelope(from, next_id, msg, &mut ctx);
                next_id += 1;
                if let Err(e) = self.ship(ctx.take_outgoing(), &mut pending) {
                    self.teardown();
                    return Err(e);
                }
            }
            match self.event_rx.recv() {
                Ok(Event::Deliver { from, msg }) => pending.push_back((from, msg)),
                Ok(Event::Control { body, reply }) => {
                    let mut ctx = Context::new(wall(started), node);
                    let action = on_control(&mut peer, body, &mut ctx, self.stats.snapshot());
                    if let Err(e) = self.ship(ctx.take_outgoing(), &mut pending) {
                        self.teardown();
                        return Err(e);
                    }
                    match action {
                        ControlAction::Reply(bytes) => {
                            let _ = reply.send(ControlReply {
                                bytes,
                                flushed: None,
                            });
                        }
                        ControlAction::ReplyThenShutdown(bytes) => {
                            let (ftx, frx) = mpsc::channel();
                            let _ = reply.send(ControlReply {
                                bytes,
                                flushed: Some(ftx),
                            });
                            // Give the reply two seconds to reach the wire;
                            // a vanished controller should not wedge us.
                            let _ = frx.recv_timeout(Duration::from_secs(2));
                            let stats = self.stats.snapshot();
                            self.teardown();
                            return Ok((peer, stats));
                        }
                    }
                }
                Ok(Event::PipeClosed) => {}
                Ok(Event::Fatal(e)) => {
                    self.teardown();
                    return Err(e);
                }
                Err(_) => {
                    self.teardown();
                    return Err(TransportError::Io {
                        op: "event loop".into(),
                        detail: "all transport threads exited".into(),
                    });
                }
            }
        }
    }

    /// Encodes and enqueues a drained batch of outgoing messages. Each
    /// unique `Arc` payload is encoded once; self-sends loop back locally.
    fn ship(
        &mut self,
        outgoing: Vec<p2p_net::sim::Outgoing<M>>,
        loopback: &mut VecDeque<(NodeId, M)>,
    ) -> TransportResult<()> {
        let mut memo: Vec<(*const M, Arc<Vec<u8>>)> = Vec::new();
        for out in outgoing {
            if out.to == self.config.node {
                let msg = Arc::try_unwrap(out.msg).unwrap_or_else(|s| (*s).clone());
                loopback.push_back((self.config.node, msg));
                continue;
            }
            let ptr = Arc::as_ptr(&out.msg);
            let bytes = match memo.iter().find(|(p, _)| *p == ptr) {
                Some((_, b)) => Arc::clone(b),
                None => {
                    let b = Arc::new(self.codec.encode(&out.msg));
                    memo.push((ptr, Arc::clone(&b)));
                    b
                }
            };
            StatCells::bump(&self.stats.frames_sent);
            StatCells::add(&self.stats.bytes_sent, bytes.len() as u64);
            let to = out.to;
            let seat = self.writer_for(to)?;
            if seat.tx.send(bytes).is_err() {
                return Err(TransportError::PeerDisconnected {
                    node: to,
                    detail: "writer thread gave up".into(),
                });
            }
        }
        Ok(())
    }

    /// The writer seat for `to`, spawning its thread on first use.
    fn writer_for(&mut self, to: NodeId) -> TransportResult<&WriterSeat> {
        if !self.writers.contains_key(&to) {
            let addr = *self
                .config
                .peers
                .get(&to)
                .ok_or(TransportError::NoRoute { node: to })?;
            let (tx, rx) = mpsc::channel::<Arc<Vec<u8>>>();
            let hello = Hello::pipe(self.config.node, self.codec.codec());
            let stats = Arc::clone(&self.stats);
            let event_tx = self.event_tx.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let attempts = self.config.connect_attempts;
            let backoff = self.config.connect_backoff;
            let max_frame = self.config.max_frame;
            let handle = std::thread::spawn(move || {
                writer_loop(
                    to, addr, hello, rx, stats, event_tx, shutdown, attempts, backoff, max_frame,
                )
            });
            self.writers.insert(to, WriterSeat { tx, handle });
        }
        Ok(self.writers.get(&to).expect("just inserted"))
    }

    /// Stops the acceptor and joins the writer threads. Reader threads
    /// exit on their own when the remote ends close.
    fn teardown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()`.
        let _ = TcpStream::connect(self.local_addr);
        for (_, seat) in std::mem::take(&mut self.writers) {
            drop(seat.tx);
            let _ = seat.handle.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Wall-clock time since the runtime started, as the `SimTime` handlers see.
fn wall(started: Instant) -> SimTime {
    SimTime::from_micros(started.elapsed().as_micros() as u64)
}

/// Inbound connection: handshake, then pipe-read or control loop.
fn serve_connection<M, C>(
    mut stream: TcpStream,
    my_node: NodeId,
    codec: Arc<C>,
    known: Arc<BTreeSet<NodeId>>,
    max_frame: u32,
    stats: Arc<StatCells>,
    event_tx: mpsc::Sender<Event<M>>,
) where
    M: Send + 'static,
    C: FrameCodec<M>,
{
    let _ = stream.set_nodelay(true);
    let hello = match server_handshake(
        &mut stream,
        my_node,
        codec.codec(),
        |n| known.contains(&n),
        max_frame,
    ) {
        Ok(h) => h,
        Err(TransportError::UnexpectedEof { got: 0, .. }) => return, // probe/wake-up
        Err(_) => {
            StatCells::bump(&stats.rejects);
            return;
        }
    };
    StatCells::bump(&stats.accepts);
    match hello.kind {
        HelloKind::Pipe => pipe_read_loop(stream, hello.node, codec, max_frame, stats, event_tx),
        HelloKind::Control => control_loop(stream, max_frame, event_tx),
    }
}

/// Reads protocol frames off one inbound pipe until EOF or error.
fn pipe_read_loop<M, C>(
    mut stream: TcpStream,
    from: NodeId,
    codec: Arc<C>,
    max_frame: u32,
    stats: Arc<StatCells>,
    event_tx: mpsc::Sender<Event<M>>,
) where
    C: FrameCodec<M>,
{
    loop {
        match read_frame(&mut stream, max_frame) {
            Ok(Some(payload)) => {
                StatCells::bump(&stats.frames_received);
                StatCells::add(&stats.bytes_received, payload.len() as u64);
                match codec.decode(&payload) {
                    Ok(msg) => {
                        if event_tx.send(Event::Deliver { from, msg }).is_err() {
                            return;
                        }
                    }
                    Err(detail) => {
                        let _ =
                            event_tx.send(Event::Fatal(TransportError::Decode { from, detail }));
                        return;
                    }
                }
            }
            Ok(None) => {
                StatCells::bump(&stats.pipes_closed);
                let _ = event_tx.send(Event::PipeClosed);
                return;
            }
            Err(e) => {
                // A torn frame or socket error on an established pipe is a
                // peer death, reported as such (not a panic, not garbage).
                let err = match e {
                    TransportError::UnexpectedEof { .. } | TransportError::Io { .. } => {
                        TransportError::PeerDisconnected {
                            node: from,
                            detail: e.to_string(),
                        }
                    }
                    other => other,
                };
                let _ = event_tx.send(Event::Fatal(err));
                return;
            }
        }
    }
}

/// Serves one control connection: request frame in, reply frame out.
fn control_loop<M>(mut stream: TcpStream, max_frame: u32, event_tx: mpsc::Sender<Event<M>>) {
    loop {
        match read_frame(&mut stream, max_frame) {
            Ok(Some(body)) => {
                let (rtx, rrx) = mpsc::channel();
                if event_tx.send(Event::Control { body, reply: rtx }).is_err() {
                    return;
                }
                let Ok(reply) = rrx.recv() else { return };
                let wrote = write_frame(&mut stream, &reply.bytes)
                    .and_then(|_| stream.flush())
                    .is_ok();
                if let Some(flushed) = reply.flushed {
                    let _ = flushed.send(());
                }
                if !wrote {
                    return;
                }
            }
            // A controller going away is not a node failure.
            Ok(None) | Err(_) => return,
        }
    }
}

/// Owns one outgoing pipe: connects lazily, writes frames in order, and
/// reconnects (with a bounded budget) when the connection breaks.
#[allow(clippy::too_many_arguments)]
fn writer_loop<M>(
    to: NodeId,
    addr: SocketAddr,
    hello: Hello,
    rx: mpsc::Receiver<Arc<Vec<u8>>>,
    stats: Arc<StatCells>,
    event_tx: mpsc::Sender<Event<M>>,
    shutdown: Arc<AtomicBool>,
    attempts: u32,
    backoff: Duration,
    max_frame: u32,
) {
    let mut conn: Option<BufWriter<TcpStream>> = None;
    let mut ever_connected = false;
    while let Ok(frame) = rx.recv() {
        let mut retried = false;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if conn.is_none() {
                match connect_pipe(addr, &hello, attempts, backoff, max_frame, &shutdown) {
                    Ok(stream) => {
                        StatCells::bump(&stats.connects);
                        if ever_connected {
                            StatCells::bump(&stats.reconnects);
                        }
                        ever_connected = true;
                        conn = Some(BufWriter::new(stream));
                    }
                    Err(e) => {
                        let err = if ever_connected {
                            TransportError::PeerDisconnected {
                                node: to,
                                detail: e.to_string(),
                            }
                        } else {
                            TransportError::ConnectFailed {
                                node: to,
                                addr: addr.to_string(),
                                detail: e.to_string(),
                            }
                        };
                        let _ = event_tx.send(Event::Fatal(err));
                        return;
                    }
                }
            }
            let w = conn.as_mut().expect("connected above");
            match write_frame(w, &frame).and_then(|_| w.flush()) {
                Ok(()) => break,
                Err(e) => {
                    conn = None;
                    if retried {
                        let _ = event_tx.send(Event::Fatal(TransportError::PeerDisconnected {
                            node: to,
                            detail: format!("write failed twice: {e}"),
                        }));
                        return;
                    }
                    retried = true;
                }
            }
        }
    }
}

/// Dials `addr` with a retry budget, performing the pipe handshake. A
/// typed rejection is terminal (retrying a codec mismatch cannot help);
/// connection refusals and handshake I/O errors are retried — the remote
/// process may simply not have bound its listener yet.
fn connect_pipe(
    addr: SocketAddr,
    hello: &Hello,
    attempts: u32,
    backoff: Duration,
    max_frame: u32,
    shutdown: &AtomicBool,
) -> TransportResult<TcpStream> {
    let mut last = TransportError::Io {
        op: format!("connect {addr}"),
        detail: "no attempts made".into(),
    };
    for attempt in 0..attempts.max(1) {
        if shutdown.load(Ordering::SeqCst) {
            return Err(last);
        }
        if attempt > 0 {
            std::thread::sleep(backoff);
        }
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                let _ = stream.set_nodelay(true);
                match client_handshake(&mut stream, hello, max_frame) {
                    Ok(_) => return Ok(stream),
                    Err(e @ TransportError::Rejected { .. }) => return Err(e),
                    Err(e) => last = e,
                }
            }
            Err(e) => last = TransportError::io(format!("connect {addr}"), &e),
        }
    }
    Err(last)
}
