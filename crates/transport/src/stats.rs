//! Transport counters: the socket-level equivalent of `p2p_net::NetStats`.
//!
//! The live cells are atomics shared across the acceptor, reader, writer
//! and main threads; [`StatCells::snapshot`] materialises them into the
//! serializable [`TransportStats`] the control plane ships to the cluster
//! launcher.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of one node's transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Protocol frames written to pipes (excludes handshakes and control).
    pub frames_sent: u64,
    /// Payload bytes written to pipes (excludes the 4-byte headers).
    pub bytes_sent: u64,
    /// Protocol frames received on pipes.
    pub frames_received: u64,
    /// Payload bytes received on pipes.
    pub bytes_received: u64,
    /// Outgoing pipe connections successfully established (first + re-).
    pub connects: u64,
    /// Subset of `connects` that replaced a previously working pipe.
    pub reconnects: u64,
    /// Inbound connections that passed the handshake.
    pub accepts: u64,
    /// Inbound connections refused by the handshake.
    pub rejects: u64,
    /// Inbound pipes that reached clean EOF.
    pub pipes_closed: u64,
}

impl TransportStats {
    /// Accumulates another node's counters (cluster-wide totals).
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.bytes_sent += other.bytes_sent;
        self.frames_received += other.frames_received;
        self.bytes_received += other.bytes_received;
        self.connects += other.connects;
        self.reconnects += other.reconnects;
        self.accepts += other.accepts;
        self.rejects += other.rejects;
        self.pipes_closed += other.pipes_closed;
    }
}

/// Shared live counters.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub frames_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub frames_received: AtomicU64,
    pub bytes_received: AtomicU64,
    pub connects: AtomicU64,
    pub reconnects: AtomicU64,
    pub accepts: AtomicU64,
    pub rejects: AtomicU64,
    pub pipes_closed: AtomicU64,
}

impl StatCells {
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            pipes_closed: self.pipes_closed.load(Ordering::Relaxed),
        }
    }

    pub fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }
}
