//! `p2p_transport` — a TCP transport for P2P database networks.
//!
//! Everything before this crate ran in one OS process: the discrete-event
//! simulator and the threaded runtime both deliver messages through
//! in-memory queues. This crate implements the same `Wire`-pipe delivery
//! contract over `std::net` TCP sockets, which is what lets `p2pdb serve`
//! run one peer per *process* and a launcher drive a whole network of
//! them to fix-point on loopback (or, addresses permitting, across
//! machines).
//!
//! Layout:
//!
//! * [`frame`] — `u32`-length-prefixed framing with a reader that treats
//!   short reads, split frames and mid-frame EOF as typed values.
//! * [`handshake`] — the 12-byte `(magic, version, kind, node, codec)`
//!   hello plus accept/reject reply, so misconfigured peers are refused
//!   with a reason instead of exchanging garbage.
//! * [`runtime`] — [`SocketRuntime`]: acceptor thread, per-connection
//!   reader threads, per-pipe writer threads with bounded reconnects,
//!   and a main loop that owns the `Peer` and preserves the simulator's
//!   handler semantics (atomic handlers, FIFO pipes, `Arc`-shared
//!   fan-out encoded once per unique message).
//! * [`error`] / [`stats`] — typed failures and the counters the control
//!   plane exports (frames, bytes, connects, reconnects).

pub mod error;
pub mod frame;
pub mod handshake;
pub mod runtime;
pub mod stats;

pub use error::{RejectReason, TransportError, TransportResult};
pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME};
pub use handshake::{client_handshake, server_handshake, Hello, HelloKind, MAGIC, VERSION};
pub use runtime::{ControlAction, FrameCodec, SocketConfig, SocketRuntime};
pub use stats::TransportStats;
