//! Connection handshake.
//!
//! The first frame on every connection is a fixed 12-byte hello:
//!
//! ```text
//! magic "P2PD" (4) | version u16 LE | kind u8 | node u32 LE | codec u8
//! ```
//!
//! `kind` distinguishes protocol pipes (`0`) from control connections
//! (`1`, used by the cluster launcher). The acceptor validates version,
//! codec (pipes only — control connections always speak JSON) and the
//! claimed node id, then replies with a status frame:
//!
//! ```text
//! status u8 | node u32 LE | detail (UTF-8, rest of frame)
//! ```
//!
//! Status `0` is "accepted" and carries the acceptor's own node id; any
//! other value is a [`RejectReason`] plus human-readable detail, so a
//! misconfigured peer learns *why* it was refused instead of reading
//! garbage frames until something fails to decode.

use crate::error::{RejectReason, TransportError, TransportResult};
use crate::frame::{read_frame, write_frame};
use p2p_net::Codec;
use p2p_topology::NodeId;
use std::io::{Read, Write};

/// Protocol magic: the first four bytes of every connection.
pub const MAGIC: [u8; 4] = *b"P2PD";

/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;

/// Node id claimed by control connections (they are not peers).
pub const CONTROL_NODE: u32 = u32::MAX;

/// What a connection is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloKind {
    /// A protocol pipe between two peers.
    Pipe,
    /// A control connection (launcher / operator tooling).
    Control,
}

impl HelloKind {
    fn as_u8(self) -> u8 {
        match self {
            HelloKind::Pipe => 0,
            HelloKind::Control => 1,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(HelloKind::Pipe),
            1 => Some(HelloKind::Control),
            _ => None,
        }
    }
}

fn codec_byte(c: Codec) -> u8 {
    match c {
        Codec::Json => 0,
        Codec::Binary => 1,
    }
}

fn byte_codec(b: u8) -> Option<Codec> {
    match b {
        0 => Some(Codec::Json),
        1 => Some(Codec::Binary),
        _ => None,
    }
}

/// The opening frame of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Pipe or control.
    pub kind: HelloKind,
    /// The connecting side's node id ([`CONTROL_NODE`] for control).
    pub node: NodeId,
    /// The wire codec the connecting side is configured with.
    pub codec: Codec,
    /// Protocol version (always [`VERSION`] when constructed locally).
    pub version: u16,
}

impl Hello {
    /// A pipe hello for this node/codec at the current [`VERSION`].
    pub fn pipe(node: NodeId, codec: Codec) -> Self {
        Hello {
            kind: HelloKind::Pipe,
            node,
            codec,
            version: VERSION,
        }
    }

    /// A control hello (codec is irrelevant; control traffic is JSON).
    pub fn control() -> Self {
        Hello {
            kind: HelloKind::Control,
            node: NodeId(CONTROL_NODE),
            codec: Codec::Json,
            version: VERSION,
        }
    }

    /// Encodes the fixed 12-byte hello payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.push(self.kind.as_u8());
        out.extend_from_slice(&self.node.0.to_le_bytes());
        out.push(codec_byte(self.codec));
        out
    }

    /// Decodes a hello payload. Distinguishes bad magic (a foreign client)
    /// from a version skew (a stale peer) from structural garbage.
    pub fn decode(buf: &[u8]) -> TransportResult<Self> {
        if buf.len() < 4 {
            return Err(TransportError::MalformedHello {
                detail: format!("hello frame of {} bytes (want 12)", buf.len()),
            });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&buf[..4]);
        if magic != MAGIC {
            return Err(TransportError::BadMagic { got: magic });
        }
        if buf.len() != 12 {
            return Err(TransportError::MalformedHello {
                detail: format!("hello frame of {} bytes (want 12)", buf.len()),
            });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        let kind = HelloKind::from_u8(buf[6]).ok_or(TransportError::MalformedHello {
            detail: format!("unknown connection kind byte {}", buf[6]),
        })?;
        let node = NodeId(u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]));
        let codec = byte_codec(buf[11]).ok_or(TransportError::MalformedHello {
            detail: format!("unknown codec byte {}", buf[11]),
        })?;
        Ok(Hello {
            kind,
            node,
            codec,
            version,
        })
    }
}

/// The acceptor's answer to a hello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloReply {
    /// `None` = accepted, `Some(reason)` = refused.
    pub reject: Option<RejectReason>,
    /// The acceptor's node id.
    pub node: NodeId,
    /// Human-readable detail (empty on accept).
    pub detail: String,
}

impl HelloReply {
    fn encode(&self) -> Vec<u8> {
        let status = self.reject.map(RejectReason::as_u8).unwrap_or(0);
        let mut out = Vec::with_capacity(5 + self.detail.len());
        out.push(status);
        out.extend_from_slice(&self.node.0.to_le_bytes());
        out.extend_from_slice(self.detail.as_bytes());
        out
    }

    fn decode(buf: &[u8]) -> TransportResult<Self> {
        if buf.len() < 5 {
            return Err(TransportError::MalformedHello {
                detail: format!("handshake reply of {} bytes (want >= 5)", buf.len()),
            });
        }
        let reject = RejectReason::from_u8(buf[0]).ok_or(TransportError::MalformedHello {
            detail: format!("unknown handshake status byte {}", buf[0]),
        })?;
        let node = NodeId(u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]));
        let detail = String::from_utf8_lossy(&buf[5..]).into_owned();
        Ok(HelloReply {
            reject,
            node,
            detail,
        })
    }
}

/// Client side: sends `hello`, awaits the reply, and maps a rejection to
/// the matching typed error. Returns the acceptor's node id.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    hello: &Hello,
    max_frame: u32,
) -> TransportResult<NodeId> {
    write_frame(stream, &hello.encode()).map_err(|e| TransportError::io("send hello", &e))?;
    stream
        .flush()
        .map_err(|e| TransportError::io("send hello", &e))?;
    let reply = match read_frame(stream, max_frame)? {
        Some(bytes) => HelloReply::decode(&bytes)?,
        None => {
            return Err(TransportError::UnexpectedEof { got: 0, needed: 5 });
        }
    };
    match reply.reject {
        None => Ok(reply.node),
        Some(reason) => Err(TransportError::Rejected {
            reason,
            detail: reply.detail,
        }),
    }
}

/// Server side: reads and validates the hello, writes the accept/reject
/// reply, and returns the validated hello (or the typed error it was
/// rejected with, *after* telling the client).
pub fn server_handshake<S: Read + Write>(
    stream: &mut S,
    my_node: NodeId,
    my_codec: Codec,
    knows_peer: impl Fn(NodeId) -> bool,
    max_frame: u32,
) -> TransportResult<Hello> {
    let hello = match read_frame(stream, max_frame)? {
        Some(bytes) => Hello::decode(&bytes),
        None => return Err(TransportError::UnexpectedEof { got: 0, needed: 12 }),
    };
    let verdict: Result<Hello, (RejectReason, TransportError)> = match hello {
        Err(e @ TransportError::BadMagic { .. }) => Err((RejectReason::Malformed, e)),
        Err(e) => Err((RejectReason::Malformed, e)),
        Ok(h) if h.version != VERSION => Err((
            RejectReason::Version,
            TransportError::VersionMismatch {
                got: h.version,
                want: VERSION,
            },
        )),
        Ok(h) if h.kind == HelloKind::Pipe && h.codec != my_codec => Err((
            RejectReason::Codec,
            TransportError::CodecMismatch {
                got: h.codec,
                want: my_codec,
            },
        )),
        Ok(h) if h.kind == HelloKind::Pipe && !knows_peer(h.node) => Err((
            RejectReason::UnknownNode,
            TransportError::UnknownPeer { node: h.node },
        )),
        Ok(h) => Ok(h),
    };
    let reply = match &verdict {
        Ok(_) => HelloReply {
            reject: None,
            node: my_node,
            detail: String::new(),
        },
        Err((reason, err)) => HelloReply {
            reject: Some(*reason),
            node: my_node,
            detail: err.to_string(),
        },
    };
    write_frame(stream, &reply.encode())
        .map_err(|e| TransportError::io("send handshake reply", &e))?;
    stream
        .flush()
        .map_err(|e| TransportError::io("send handshake reply", &e))?;
    verdict.map_err(|(_, err)| err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// In-memory duplex: reads from one buffer, writes to another.
    struct Duplex {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn hello_round_trips() {
        let h = Hello::pipe(NodeId(7), Codec::Binary);
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
        let c = Hello::control();
        assert_eq!(Hello::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn acceptor_accepts_matching_pipe() {
        let hello = Hello::pipe(NodeId(3), Codec::Json);
        let mut s = Duplex {
            input: Cursor::new(framed(&hello.encode())),
            output: Vec::new(),
        };
        let got = server_handshake(&mut s, NodeId(1), Codec::Json, |n| n == NodeId(3), 1024)
            .expect("accepted");
        assert_eq!(got.node, NodeId(3));
        let reply = HelloReply::decode(&s.output[4..]).unwrap();
        assert_eq!(reply.reject, None);
        assert_eq!(reply.node, NodeId(1));
    }

    #[test]
    fn acceptor_rejects_codec_mismatch_with_detail() {
        let hello = Hello::pipe(NodeId(3), Codec::Binary);
        let mut s = Duplex {
            input: Cursor::new(framed(&hello.encode())),
            output: Vec::new(),
        };
        let err =
            server_handshake(&mut s, NodeId(1), Codec::Json, |_| true, 1024).expect_err("rejected");
        assert_eq!(
            err,
            TransportError::CodecMismatch {
                got: Codec::Binary,
                want: Codec::Json,
            }
        );
        let reply = HelloReply::decode(&s.output[4..]).unwrap();
        assert_eq!(reply.reject, Some(RejectReason::Codec));
        assert!(reply.detail.contains("binary"), "detail: {}", reply.detail);
    }

    #[test]
    fn acceptor_rejects_version_skew_and_bad_magic() {
        let mut stale = Hello::pipe(NodeId(2), Codec::Json);
        stale.version = 99;
        let mut s = Duplex {
            input: Cursor::new(framed(&stale.encode())),
            output: Vec::new(),
        };
        let err = server_handshake(&mut s, NodeId(0), Codec::Json, |_| true, 1024).unwrap_err();
        assert_eq!(
            err,
            TransportError::VersionMismatch {
                got: 99,
                want: VERSION
            }
        );

        let mut s = Duplex {
            input: Cursor::new(framed(b"GET / HTTP/1.1\r\n")),
            output: Vec::new(),
        };
        let err = server_handshake(&mut s, NodeId(0), Codec::Json, |_| true, 1024).unwrap_err();
        assert_eq!(err, TransportError::BadMagic { got: *b"GET " });
        let reply = HelloReply::decode(&s.output[4..]).unwrap();
        assert_eq!(reply.reject, Some(RejectReason::Malformed));
    }

    #[test]
    fn control_hello_skips_codec_and_roster_checks() {
        let mut s = Duplex {
            input: Cursor::new(framed(&Hello::control().encode())),
            output: Vec::new(),
        };
        // Acceptor runs binary and knows nobody; control still gets in.
        let got = server_handshake(&mut s, NodeId(0), Codec::Binary, |_| false, 1024)
            .expect("control accepted");
        assert_eq!(got.kind, HelloKind::Control);
    }

    #[test]
    fn client_maps_rejection_to_typed_error() {
        let reply = HelloReply {
            reject: Some(RejectReason::Codec),
            node: NodeId(1),
            detail: "codec mismatch: peer is configured with `binary`".into(),
        };
        let mut s = Duplex {
            input: Cursor::new(framed(&reply.encode())),
            output: Vec::new(),
        };
        let err =
            client_handshake(&mut s, &Hello::pipe(NodeId(2), Codec::Binary), 1024).unwrap_err();
        match err {
            TransportError::Rejected { reason, detail } => {
                assert_eq!(reason, RejectReason::Codec);
                assert!(detail.contains("binary"));
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }
}
