//! Property tests for maximal-dependency-path enumeration (Definitions 6–7)
//! and separation analysis (Definition 10) on random digraphs.

use p2p_topology::paths::is_dependency_path;
use p2p_topology::{is_separated, maximal_dependency_paths, DependencyGraph, GraphChange, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn random_graph() -> impl Strategy<Value = DependencyGraph> {
    proptest::collection::vec((0u32..6, 0u32..6), 0..14).prop_map(|edges| {
        let mut g = DependencyGraph::new();
        for i in 0..6 {
            g.add_node(NodeId(i));
        }
        for (a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every enumerated path is a dependency path (Definition 6).
    #[test]
    fn enumerated_paths_satisfy_definition_6(g in random_graph(), start in 0u32..6) {
        let paths = maximal_dependency_paths(&g, NodeId(start), 50_000).unwrap();
        for p in &paths {
            prop_assert!(is_dependency_path(&g, p), "{p:?}");
            prop_assert_eq!(p[0], NodeId(start));
        }
    }

    /// Every enumerated path is maximal (Definition 7): it ends at a sink or
    /// by revisiting an earlier node.
    #[test]
    fn enumerated_paths_are_maximal(g in random_graph(), start in 0u32..6) {
        let paths = maximal_dependency_paths(&g, NodeId(start), 50_000).unwrap();
        for p in &paths {
            let last = *p.last().unwrap();
            let closes = p[..p.len() - 1].contains(&last);
            let sink = g.out_degree(last) == 0;
            prop_assert!(closes || sink, "extensible path {p:?}");
        }
    }

    /// No two enumerated paths are equal, and a start node with successors
    /// has at least one path.
    #[test]
    fn enumeration_is_duplicate_free_and_nonempty(g in random_graph(), start in 0u32..6) {
        let paths = maximal_dependency_paths(&g, NodeId(start), 50_000).unwrap();
        let set: BTreeSet<_> = paths.iter().collect();
        prop_assert_eq!(set.len(), paths.len());
        if g.out_degree(NodeId(start)) > 0 {
            prop_assert!(!paths.is_empty());
        } else {
            prop_assert!(paths.is_empty());
        }
    }

    /// Separation (Definition 10.1) is equivalent to "no edge leaves A" and
    /// to "reachability from A stays inside A".
    #[test]
    fn separation_equals_reachability_closure(
        g in random_graph(),
        members in proptest::collection::btree_set(0u32..6, 0..6),
    ) {
        let a: BTreeSet<NodeId> = members.into_iter().map(NodeId).collect();
        let sep = is_separated(&g, &a);
        let by_reach = a.iter().all(|n| {
            g.reachable_from(*n).iter().all(|r| a.contains(r))
        });
        prop_assert_eq!(sep, by_reach);
    }

    /// Adding an internal edge never breaks separation; adding an escaping
    /// edge always does.
    #[test]
    fn separation_monotonicity(
        g in random_graph(),
        members in proptest::collection::btree_set(0u32..6, 1..5),
        inside in (0u32..6, 0u32..6),
    ) {
        let a: BTreeSet<NodeId> = members.into_iter().map(NodeId).collect();
        if !is_separated(&g, &a) {
            return Ok(());
        }
        let (x, y) = inside;
        let change = GraphChange::AddEdge { head: NodeId(x), body: NodeId(y) };
        let expected = !a.contains(&NodeId(x)) || a.contains(&NodeId(y));
        let still = p2p_topology::is_separated_under_change(&g, &a, &[change]);
        prop_assert_eq!(still, expected);
    }

    /// The condensation partitions the nodes.
    #[test]
    fn condensation_partitions_nodes(g in random_graph()) {
        let comps = p2p_topology::condensation(&g);
        let mut seen = BTreeSet::new();
        for c in &comps {
            for n in c {
                prop_assert!(seen.insert(*n), "node {n} in two components");
            }
        }
        prop_assert_eq!(seen.len(), g.node_count());
    }

    /// Topological order (when acyclic) lists dependencies before dependants.
    #[test]
    fn topological_order_respects_edges(g in random_graph()) {
        if let Some(order) = p2p_topology::topological_order(&g) {
            let pos = |n: NodeId| order.iter().position(|x| *x == n).unwrap();
            for (from, to) in g.edges() {
                prop_assert!(pos(to) < pos(from), "{from}->{to} out of order");
            }
        }
    }
}
