//! Property tests for the topology generators: connectivity, degree
//! invariants and deterministic regeneration across every family, including
//! the scaling families (expander, small world) added for E19.

use p2p_topology::{DependencyGraph, NodeId, Topology};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Direction-blind connectivity from node 0 (the invariant the update
/// protocol's pipe network needs: every peer reachable over some chain of
/// pipes).
fn connected_ignoring_direction(g: &DependencyGraph) -> bool {
    let mut seen = BTreeSet::new();
    let mut queue = vec![NodeId(0)];
    while let Some(n) = queue.pop() {
        if !seen.insert(n) {
            continue;
        }
        queue.extend(g.successors(n));
        queue.extend(g.predecessors(n));
    }
    seen.len() == g.node_count()
}

fn total_degree(g: &DependencyGraph, n: NodeId) -> usize {
    g.successors(n).count() + g.predecessors(n).count()
}

/// One valid spec from each family, parameterised by size and seed knobs.
fn any_topology() -> impl Strategy<Value = Topology> {
    (0u8..8, 3u32..24, 0u64..1_000, 0u8..=100).prop_map(|(family, n, seed, pct)| match family {
        0 => Topology::Tree {
            branching: 1 + n % 3,
            depth: n % 4,
        },
        1 => Topology::LayeredDag {
            layers: 1 + n % 4,
            width: 1 + n % 3,
            fanout: 1 + n % 2,
        },
        2 => Topology::Clique { n: 1 + n % 6 },
        3 => Topology::Ring { n: 2 + n },
        4 => Topology::Random {
            n,
            p_percent: pct.min(60),
            seed,
        },
        5 => {
            // Valid expander: 2 ≤ d < n with n·d even.
            let d = 2 + (n % 3) * 2; // 2, 4 or 6, always even
            let d = d.min(n - 1);
            let d = if d % 2 == 1 && n % 2 == 1 { d - 1 } else { d };
            Topology::Expander {
                n,
                degree: d.max(2),
                seed,
            }
        }
        6 => Topology::RandomDegree {
            n,
            degree: (1 + n % 4).min(n - 1),
            seed,
        },
        _ => {
            let k = (2 + (n % 4) * 2).min(if n % 2 == 0 { n - 2 } else { n - 1 });
            Topology::SmallWorld {
                n,
                k: k.max(2),
                rewire_percent: pct,
                seed,
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Same spec, same graph — bit-for-bit regeneration, the property every
    /// seeded experiment in the repo leans on.
    #[test]
    fn regeneration_is_deterministic(t in any_topology()) {
        let a = t.try_generate().unwrap();
        let b = t.try_generate().unwrap();
        prop_assert_eq!(a.graph, b.graph, "{} regenerated differently", t);
        prop_assert_eq!(a.node_count, b.node_count);
        prop_assert_eq!(a.depth, b.depth);
    }

    /// `node_count()` never lies about what `generate()` builds.
    #[test]
    fn node_count_is_exact(t in any_topology()) {
        prop_assert_eq!(t.try_generate().unwrap().node_count, t.node_count(), "{}", t);
    }

    /// Every family except Random guarantees a single connected component
    /// (Random's connectivity is whatever the dice gave, by design).
    #[test]
    fn generated_topologies_are_connected(t in any_topology()) {
        // Random's connectivity is whatever the dice gave. A layered DAG
        // only links its columns through fanout ≥ 2 (fanout 1 is parallel
        // independent chains; one layer has no edges at all) — both shapes
        // are disconnected by definition, not by generator defect.
        if matches!(t, Topology::Random { .. } | Topology::RandomDegree { .. })
            || matches!(
                t,
                Topology::LayeredDag { layers, width, fanout }
                    if width > 1 && (layers == 1 || fanout == 1)
            )
        {
            return Ok(());
        }
        let g = t.try_generate().unwrap();
        prop_assert!(connected_ignoring_direction(&g.graph), "{} disconnected", t);
    }

    /// Expanders are exactly `degree`-regular; small worlds keep the exact
    /// lattice edge count and at least `k/2` edges per node.
    #[test]
    fn scaling_families_keep_degree_invariants(t in any_topology()) {
        let g = match t {
            Topology::Expander { .. }
            | Topology::SmallWorld { .. }
            | Topology::RandomDegree { .. } => t.try_generate().unwrap(),
            _ => return Ok(()),
        };
        match t {
            Topology::Expander { n, degree, .. } => {
                prop_assert_eq!(g.graph.edge_count(), (n as usize * degree as usize) / 2);
                for node in g.graph.nodes() {
                    prop_assert_eq!(
                        total_degree(&g.graph, node),
                        degree as usize,
                        "{} node {}", t, node
                    );
                }
            }
            Topology::RandomDegree { n, degree, .. } => {
                // The expected-degree contract: exactly ⌊n·d/2⌋ distinct
                // edges, so the mean total degree is d independent of n.
                prop_assert_eq!(g.graph.edge_count(), (n as usize * degree as usize) / 2);
            }
            Topology::SmallWorld { n, k, .. } => {
                prop_assert_eq!(g.graph.edge_count(), (n as usize * k as usize) / 2);
                for node in g.graph.nodes() {
                    prop_assert!(
                        total_degree(&g.graph, node) >= k as usize / 2,
                        "{} node {} under-connected", t, node
                    );
                }
            }
            _ => unreachable!(),
        }
    }

    /// Different seeds give different graphs for the seeded families (on
    /// any size where the edge space is non-trivial).
    #[test]
    fn seeds_matter(n in 12u32..40, seed in 0u64..500) {
        let a = Topology::Expander { n, degree: 4, seed };
        let b = Topology::Expander { n, degree: 4, seed: seed + 1 };
        prop_assert_ne!(a.try_generate().unwrap().graph, b.try_generate().unwrap().graph);
        let a = Topology::RandomDegree { n, degree: 4, seed };
        let b = Topology::RandomDegree { n, degree: 4, seed: seed + 1 };
        prop_assert_ne!(a.try_generate().unwrap().graph, b.try_generate().unwrap().graph);
    }
}
