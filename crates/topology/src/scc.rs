//! Strongly connected components (iterative Tarjan), acyclicity, and
//! topological order.
//!
//! The acyclic baseline (Halevy et al. 2003 style) only works on DAG
//! dependency graphs and needs a topological order; the core crate uses the
//! condensation to reason about which parts of a network can close early.

use crate::graph::{DependencyGraph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Tarjan's algorithm, iterative to survive deep graphs. Returns components
/// in reverse topological order of the condensation (standard Tarjan output:
/// a component is emitted only after everything it depends on).
pub fn condensation(graph: &DependencyGraph) -> Vec<Vec<NodeId>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }

    let mut state: BTreeMap<NodeId, NodeState> =
        graph.nodes().map(|n| (n, NodeState::default())).collect();
    let mut next_index = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS stack: (node, successor iterator position).
    for root in graph.nodes().collect::<Vec<_>>() {
        if state[&root].index.is_some() {
            continue;
        }
        let mut call_stack: Vec<(NodeId, Vec<NodeId>, usize)> =
            vec![(root, graph.successors(root).collect(), 0)];
        {
            let s = state.get_mut(&root).expect("registered");
            s.index = Some(next_index);
            s.lowlink = next_index;
            s.on_stack = true;
        }
        stack.push(root);
        next_index += 1;

        while let Some((node, succs, mut pos)) = call_stack.pop() {
            let mut descended = false;
            while pos < succs.len() {
                let child = succs[pos];
                pos += 1;
                match state[&child].index {
                    None => {
                        // Descend.
                        call_stack.push((node, succs.clone(), pos));
                        {
                            let s = state.get_mut(&child).expect("registered");
                            s.index = Some(next_index);
                            s.lowlink = next_index;
                            s.on_stack = true;
                        }
                        stack.push(child);
                        next_index += 1;
                        call_stack.push((child, graph.successors(child).collect(), 0));
                        descended = true;
                        break;
                    }
                    Some(child_index) => {
                        if state[&child].on_stack {
                            let low = state[&node].lowlink.min(child_index);
                            state.get_mut(&node).expect("registered").lowlink = low;
                        }
                    }
                }
            }
            if descended {
                continue;
            }
            // Node finished: maybe emit a component, then propagate lowlink.
            if state[&node].lowlink == state[&node].index.expect("visited") {
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("stack non-empty");
                    state.get_mut(&w).expect("registered").on_stack = false;
                    component.push(w);
                    if w == node {
                        break;
                    }
                }
                component.sort();
                components.push(component);
            }
            if let Some((parent, _, _)) = call_stack.last() {
                let low = state[parent].lowlink.min(state[&node].lowlink);
                state.get_mut(parent).expect("registered").lowlink = low;
            }
        }
    }
    components
}

/// True iff the graph has no dependency cycle.
pub fn is_acyclic(graph: &DependencyGraph) -> bool {
    condensation(graph).iter().all(|c| c.len() == 1) && graph.nodes().all(|n| !graph.has_edge(n, n))
}

/// Topological order of an acyclic dependency graph: every node appears
/// *after* the nodes it depends on (its successors). This is exactly the
/// order in which the acyclic baseline can finalise nodes: leaves (data
/// sources) first, the super-peer last. Returns `None` on cyclic graphs.
pub fn topological_order(graph: &DependencyGraph) -> Option<Vec<NodeId>> {
    if !is_acyclic(graph) {
        return None;
    }
    // Tarjan emits components in reverse topological order of the
    // condensation, which for a DAG is: dependencies first.
    Some(condensation(graph).into_iter().flatten().collect())
}

/// Nodes lying on at least one dependency cycle (members of non-trivial
/// SCCs). These are the nodes for which the paper's fix-point iteration is
/// actually needed; everything else closes in one pass.
pub fn cyclic_nodes(graph: &DependencyGraph) -> BTreeSet<NodeId> {
    condensation(graph)
        .into_iter()
        .filter(|c| c.len() > 1)
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn chain_is_acyclic_and_ordered() {
        let g = DependencyGraph::from_edges([(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        assert!(is_acyclic(&g));
        let order = topological_order(&g).unwrap();
        // 2 (sink, pure source of data) must precede 1, which precedes 0.
        let pos = |n: u32| order.iter().position(|x| *x == NodeId(n)).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn paper_example_is_cyclic() {
        let g = paper_example_graph();
        assert!(!is_acyclic(&g));
        assert!(topological_order(&g).is_none());
        let cyc = cyclic_nodes(&g);
        // A, B, C, D are all on cycles (ABCA, BCB, ABCDA); E is not.
        assert!(cyc.contains(&NodeId(0)));
        assert!(cyc.contains(&NodeId(1)));
        assert!(cyc.contains(&NodeId(2)));
        assert!(cyc.contains(&NodeId(3)));
        assert!(!cyc.contains(&NodeId(4)));
    }

    #[test]
    fn condensation_groups_cycles() {
        let g = paper_example_graph();
        let comps = condensation(&g);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 4).unwrap();
        assert_eq!(big, &vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn two_cycle_detected() {
        let g = DependencyGraph::from_edges([(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
        assert!(!is_acyclic(&g));
        assert_eq!(cyclic_nodes(&g).len(), 2);
    }

    #[test]
    fn diamond_dag() {
        // 0→1, 0→2, 1→3, 2→3.
        let g = DependencyGraph::from_edges([
            (NodeId(0), NodeId(1)),
            (NodeId(0), NodeId(2)),
            (NodeId(1), NodeId(3)),
            (NodeId(2), NodeId(3)),
        ]);
        assert!(is_acyclic(&g));
        let order = topological_order(&g).unwrap();
        let pos = |n: u32| order.iter().position(|x| *x == NodeId(n)).unwrap();
        assert!(pos(3) < pos(1) && pos(3) < pos(2));
        assert!(pos(1) < pos(0) && pos(2) < pos(0));
    }

    #[test]
    fn isolated_nodes_form_singleton_components() {
        let mut g = DependencyGraph::new();
        g.add_node(NodeId(7));
        g.add_node(NodeId(8));
        let comps = condensation(&g);
        assert_eq!(comps.len(), 2);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let g = DependencyGraph::from_edges((0..50_000u32).map(|i| (NodeId(i), NodeId(i + 1))));
        assert!(is_acyclic(&g));
    }
}
