//! Topology generators for the paper's experiments (Section 5: "Three types
//! of topologies have been considered: trees, layered acyclic graphs, and
//! cliques") plus auxiliary families used by tests, ablations and the
//! scaling experiments (E19): bounded-degree random regular **expanders**
//! (the overlay family Augustine et al. build dynamic P2P storage on — the
//! degree stays constant while the diameter stays logarithmic) and
//! Watts–Strogatz **small worlds**.
//!
//! Conventions:
//! * Node 0 is the designated **super-peer** (the paper's discovery/update
//!   initiator and statistics collector).
//! * Edges are **dependency edges** `head → body`: the head imports data
//!   from the body, so data flows *against* the arrows toward node 0. With
//!   the super-peer at the root, update execution time grows with the depth
//!   of the structure — the quantity the paper reports as linear.
//! * Degenerate specs (a one-node ring, a zero-degree expander, …) are
//!   **rejected** with a [`TopologyError`], never silently clamped:
//!   [`Topology::try_generate`] returns the error, [`Topology::generate`]
//!   panics with it. An experiment that asks for an impossible network
//!   should fail loudly, not measure a different network.

use crate::graph::{DependencyGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A topology family with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Complete `branching`-ary tree of the given depth; the root (node 0)
    /// depends on its children, recursively. `Tree { branching: 2, depth: 3 }`
    /// has 15 nodes.
    Tree {
        /// Children per internal node (≥ 1).
        branching: u32,
        /// Edge-depth of the tree (0 = a single node).
        depth: u32,
    },
    /// Layered acyclic graph: `layers` layers of `width` nodes; every node
    /// of layer *l* depends on `fanout` nodes of layer *l+1* (chosen
    /// round-robin, deterministic). Node 0 sits in layer 0.
    LayeredDag {
        /// Number of layers (≥ 1); depth = layers − 1.
        layers: u32,
        /// Nodes per layer (≥ 1).
        width: u32,
        /// Dependencies per node into the next layer (≥ 1, clamped to width).
        fanout: u32,
    },
    /// Clique: every ordered pair of distinct nodes is a dependency edge
    /// (rules in both directions, maximal cyclicity).
    Clique {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Chain `0 → 1 → … → n−1` (a degenerate tree; depth = n − 1).
    Chain {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Ring: chain plus the closing edge `n−1 → 0`; the smallest fully
    /// cyclic family, exercising the fix-point iteration.
    Ring {
        /// Number of nodes (≥ 2).
        n: u32,
    },
    /// Star: node 0 depends on every other node (depth 1).
    Star {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Erdős–Rényi digraph over `n` nodes with edge probability `p_percent`
    /// (0–100), seeded for reproducibility; node 0's reachability is then
    /// whatever the dice gave.
    Random {
        /// Number of nodes (≥ 1).
        n: u32,
        /// Edge probability in percent (kept integral so the enum stays `Eq`).
        p_percent: u8,
        /// RNG seed.
        seed: u64,
    },
    /// Expected-degree random graph: exactly `⌊n·degree/2⌋` distinct
    /// undirected edges sampled uniformly (the `G(n, m)` model), each then
    /// directed from the lower to the higher node id. This is the
    /// scale-friendly parameterization of [`Topology::Random`], whose
    /// integral percent cannot express sparse graphs once `n` is large —
    /// at 10k nodes even `p = 1%` forces ~10⁶ edges, while
    /// `RandomDegree { degree: 8 }` keeps the mean total degree at 8
    /// regardless of `n`. Like [`Topology::Random`] (and unlike
    /// [`Topology::Expander`]) the result may be disconnected; node 0's
    /// reachability is whatever the dice gave.
    RandomDegree {
        /// Number of nodes (≥ 2).
        n: u32,
        /// Expected total (in + out) degree per node (≥ 1, < n).
        degree: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Random `degree`-regular graph (configuration-model pairing with
    /// deterministic self-loop/duplicate repair and a connectivity repair
    /// pass of degree-preserving double-edge swaps). With overwhelming
    /// probability such graphs are expanders: diameter `O(log n / log d)`,
    /// constant spectral gap — the shape that keeps a 100k-peer overlay's
    /// update latency flat while every node talks to `degree` pipes.
    /// Every node has total (in + out) degree exactly `degree`.
    Expander {
        /// Number of nodes (≥ 3).
        n: u32,
        /// Pipes per node (≥ 2, < n; `n · degree` must be even).
        degree: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Watts–Strogatz small world: a ring lattice where each node connects
    /// to its `k/2` nearest neighbours on each side, then each lattice edge
    /// is rewired to a uniform random endpoint with probability
    /// `rewire_percent` (the near endpoint stays fixed, so every node keeps
    /// at least `k/2` incident edges). A connectivity repair pass of
    /// degree-preserving swaps guarantees one component. Total edge count
    /// is exactly `n·k/2`.
    SmallWorld {
        /// Number of nodes (≥ 3, > k).
        n: u32,
        /// Lattice degree (even, ≥ 2, < n).
        k: u32,
        /// Rewiring probability in percent (0–100).
        rewire_percent: u8,
        /// RNG seed.
        seed: u64,
    },
}

/// Why a topology spec cannot be materialised. Produced by
/// [`Topology::try_generate`]; [`Topology::generate`] panics with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The family needs at least `min` nodes (a ring of one node is a
    /// self-loop the dependency graph rejects, a one-node "network" has no
    /// edges to measure, …).
    TooFewNodes {
        /// Requested node count.
        n: u32,
        /// Minimum for this family.
        min: u32,
    },
    /// A structural parameter (branching, layer width, fanout, lattice
    /// degree, …) is out of its valid range.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// Why it is invalid.
        why: String,
    },
    /// A probability given in percent exceeds 100.
    BadPercent {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: u8,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewNodes { n, min } => {
                write!(f, "needs at least {min} nodes, got {n}")
            }
            TopologyError::BadParameter { what, why } => write!(f, "invalid {what}: {why}"),
            TopologyError::BadPercent { what, value } => {
                write!(f, "{what} is a percentage, got {value} > 100")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Tree { branching, depth } => write!(f, "tree(b={branching},d={depth})"),
            Topology::LayeredDag {
                layers,
                width,
                fanout,
            } => write!(f, "layered(l={layers},w={width},f={fanout})"),
            Topology::Clique { n } => write!(f, "clique(n={n})"),
            Topology::Chain { n } => write!(f, "chain(n={n})"),
            Topology::Ring { n } => write!(f, "ring(n={n})"),
            Topology::Star { n } => write!(f, "star(n={n})"),
            Topology::Random { n, p_percent, seed } => {
                write!(f, "random(n={n},p={p_percent}%,seed={seed})")
            }
            Topology::RandomDegree { n, degree, seed } => {
                write!(f, "randomdeg(n={n},d={degree},seed={seed})")
            }
            Topology::Expander { n, degree, seed } => {
                write!(f, "expander(n={n},d={degree},seed={seed})")
            }
            Topology::SmallWorld {
                n,
                k,
                rewire_percent,
                seed,
            } => write!(f, "smallworld(n={n},k={k},p={rewire_percent}%,seed={seed})"),
        }
    }
}

/// A generated topology: the dependency graph plus bookkeeping the
/// experiments report on.
#[derive(Debug, Clone)]
pub struct GeneratedTopology {
    /// The dependency graph.
    pub graph: DependencyGraph,
    /// Number of nodes.
    pub node_count: usize,
    /// The designated super-peer (always node 0).
    pub super_peer: NodeId,
    /// Depth as seen from the super-peer (max BFS distance).
    pub depth: usize,
}

impl Topology {
    /// Checks the spec's parameters without materialising anything.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let need = |n: u32, min: u32| {
            if n < min {
                Err(TopologyError::TooFewNodes { n, min })
            } else {
                Ok(())
            }
        };
        let percent = |what: &'static str, value: u8| {
            if value > 100 {
                Err(TopologyError::BadPercent { what, value })
            } else {
                Ok(())
            }
        };
        match *self {
            Topology::Tree { branching, .. } => {
                if branching == 0 {
                    return Err(TopologyError::BadParameter {
                        what: "branching",
                        why: "must be ≥ 1".into(),
                    });
                }
                Ok(())
            }
            Topology::LayeredDag {
                layers,
                width,
                fanout,
            } => {
                for (what, v) in [("layers", layers), ("width", width), ("fanout", fanout)] {
                    if v == 0 {
                        return Err(TopologyError::BadParameter {
                            what,
                            why: "must be ≥ 1".into(),
                        });
                    }
                }
                Ok(())
            }
            Topology::Clique { n } | Topology::Chain { n } | Topology::Star { n } => need(n, 1),
            Topology::Ring { n } => need(n, 2),
            Topology::Random { n, p_percent, .. } => {
                need(n, 1)?;
                percent("p_percent", p_percent)
            }
            Topology::RandomDegree { n, degree, .. } => {
                need(n, 2)?;
                if degree == 0 || degree >= n {
                    return Err(TopologyError::BadParameter {
                        what: "degree",
                        why: format!("must satisfy 1 ≤ degree < n, got {degree} with n={n}"),
                    });
                }
                Ok(())
            }
            Topology::Expander { n, degree, .. } => {
                need(n, 3)?;
                if degree < 2 || degree >= n {
                    return Err(TopologyError::BadParameter {
                        what: "degree",
                        why: format!("must satisfy 2 ≤ degree < n, got {degree} with n={n}"),
                    });
                }
                if !(n as u64 * degree as u64).is_multiple_of(2) {
                    return Err(TopologyError::BadParameter {
                        what: "degree",
                        why: format!("n·degree must be even, got {n}·{degree}"),
                    });
                }
                Ok(())
            }
            Topology::SmallWorld {
                n,
                k,
                rewire_percent,
                ..
            } => {
                need(n, 3)?;
                if k < 2 || k % 2 != 0 || k >= n {
                    return Err(TopologyError::BadParameter {
                        what: "k",
                        why: format!("must be even and satisfy 2 ≤ k < n, got {k} with n={n}"),
                    });
                }
                percent("rewire_percent", rewire_percent)
            }
        }
    }

    /// Materialises the topology, or explains why the spec is degenerate.
    pub fn try_generate(&self) -> Result<GeneratedTopology, TopologyError> {
        self.validate()?;
        let graph = match *self {
            Topology::Tree { branching, depth } => tree(branching, depth),
            Topology::LayeredDag {
                layers,
                width,
                fanout,
            } => layered(layers, width, fanout),
            Topology::Clique { n } => clique(n),
            Topology::Chain { n } => chain(n),
            Topology::Ring { n } => ring(n),
            Topology::Star { n } => star(n),
            Topology::Random { n, p_percent, seed } => random(n, p_percent, seed),
            Topology::RandomDegree { n, degree, seed } => random_degree(n, degree, seed),
            Topology::Expander { n, degree, seed } => expander(n, degree, seed),
            Topology::SmallWorld {
                n,
                k,
                rewire_percent,
                seed,
            } => small_world(n, k, rewire_percent, seed),
        };
        let node_count = graph.node_count();
        let depth = graph.depth_from(NodeId(0));
        Ok(GeneratedTopology {
            graph,
            node_count,
            super_peer: NodeId(0),
            depth,
        })
    }

    /// Materialises the topology.
    ///
    /// # Panics
    /// On a degenerate spec (see [`Topology::try_generate`] for the
    /// non-panicking variant).
    pub fn generate(&self) -> GeneratedTopology {
        self.try_generate()
            .unwrap_or_else(|e| panic!("invalid topology spec {self}: {e}"))
    }

    /// Number of nodes the topology will have, without materialising it.
    /// Like [`Topology::generate`], meaningful only for valid specs.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Tree { branching, depth } => {
                let b = branching.max(1) as u64;
                if b == 1 {
                    depth as usize + 1
                } else {
                    (((b.pow(depth + 1) - 1) / (b - 1)) as usize).max(1)
                }
            }
            Topology::LayeredDag { layers, width, .. } => (layers * width) as usize,
            Topology::Clique { n }
            | Topology::Chain { n }
            | Topology::Star { n }
            | Topology::Random { n, .. }
            | Topology::RandomDegree { n, .. }
            | Topology::Ring { n }
            | Topology::Expander { n, .. }
            | Topology::SmallWorld { n, .. } => n as usize,
        }
    }
}

fn tree(branching: u32, depth: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    // Breadth-first ids: node k's children are fresh ids.
    let mut next = 1u32;
    let mut frontier = vec![(NodeId(0), 0u32)];
    while let Some((node, d)) = frontier.pop() {
        if d == depth {
            continue;
        }
        for _ in 0..branching {
            let child = NodeId(next);
            next += 1;
            g.add_edge(node, child);
            frontier.push((child, d + 1));
        }
    }
    g
}

fn layered(layers: u32, width: u32, fanout: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let id = |layer: u32, k: u32| NodeId(layer * width + k);
    for l in 0..layers {
        for k in 0..width {
            g.add_node(id(l, k));
        }
    }
    let fanout = fanout.min(width);
    for l in 0..layers.saturating_sub(1) {
        for k in 0..width {
            for f in 0..fanout {
                g.add_edge(id(l, k), id(l + 1, (k + f) % width));
            }
        }
    }
    g
}

fn clique(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

fn chain(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId(i), NodeId(i + 1));
    }
    g
}

fn ring(n: u32) -> DependencyGraph {
    let mut g = chain(n);
    g.add_edge(NodeId(n - 1), NodeId(0));
    g
}

fn star(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i));
    }
    g
}

fn random(n: u32, p_percent: u8, seed: u64) -> DependencyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DependencyGraph::new();
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_range(0..100u8) < p_percent {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

/// `G(n, m)` sampling for [`Topology::RandomDegree`]: exactly
/// `⌊n·degree/2⌋` distinct non-loop undirected edges, drawn by rejection
/// (validation guarantees `m ≤ C(n, 2)`, and the sparse regimes this
/// parameterization exists for make rejections rare).
fn random_degree(n: u32, degree: u32, seed: u64) -> DependencyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (n as u64 * degree as u64 / 2) as usize;
    let mut edges = EdgeSet::new();
    while edges.edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        edges.insert(a, b);
    }
    edges.into_graph(n)
}

/// Undirected edge set under construction for the expander / small-world
/// generators: normalized `(lo, hi)` pairs with a membership index, so
/// repair passes can test duplicates in O(1)-ish time.
struct EdgeSet {
    edges: Vec<(u32, u32)>,
    present: std::collections::BTreeSet<(u32, u32)>,
}

impl EdgeSet {
    fn new() -> Self {
        EdgeSet {
            edges: Vec::new(),
            present: std::collections::BTreeSet::new(),
        }
    }

    fn norm(a: u32, b: u32) -> (u32, u32) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn contains(&self, a: u32, b: u32) -> bool {
        self.present.contains(&Self::norm(a, b))
    }

    /// Adds `{a, b}` if it is a fresh non-loop edge.
    fn insert(&mut self, a: u32, b: u32) -> bool {
        if a == b || !self.present.insert(Self::norm(a, b)) {
            return false;
        }
        self.edges.push(Self::norm(a, b));
        true
    }

    /// Replaces edge `idx` with `{a, b}` (caller guarantees validity).
    fn replace(&mut self, idx: usize, a: u32, b: u32) {
        let old = self.edges[idx];
        self.present.remove(&old);
        let new = Self::norm(a, b);
        self.present.insert(new);
        self.edges[idx] = new;
    }

    /// Connected components over the undirected edges, as a node → component
    /// label map (labels are the component's minimum node id).
    fn components(&self, n: u32) -> Vec<u32> {
        // Union-find with path halving.
        let mut parent: Vec<u32> = (0..n).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(a, b) in &self.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                parent[hi as usize] = lo;
            }
        }
        (0..n).map(|i| find(&mut parent, i)).collect()
    }

    /// Bridge edges (edges whose removal disconnects their component), as a
    /// per-edge-index flag vector: one iterative DFS low-link pass.
    fn bridges(&self, n: u32) -> Vec<bool> {
        let mut adj: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n as usize];
        for (idx, &(a, b)) in self.edges.iter().enumerate() {
            adj[a as usize].push((b, idx));
            adj[b as usize].push((a, idx));
        }
        let mut disc = vec![0u32; n as usize]; // 0 = unvisited, else 1-based time
        let mut low = vec![0u32; n as usize];
        let mut is_bridge = vec![false; self.edges.len()];
        let mut time = 0u32;
        // DFS frames: (node, edge we arrived by, next-neighbour cursor).
        let mut stack: Vec<(u32, usize, usize)> = Vec::new();
        for start in 0..n {
            if disc[start as usize] != 0 {
                continue;
            }
            time += 1;
            disc[start as usize] = time;
            low[start as usize] = time;
            stack.push((start, usize::MAX, 0));
            while let Some(top) = stack.last_mut() {
                let (v, pe) = (top.0, top.1);
                if top.2 < adj[v as usize].len() {
                    let (w, e) = adj[v as usize][top.2];
                    top.2 += 1;
                    if e == pe {
                        continue; // don't walk back over the arrival edge
                    }
                    if disc[w as usize] == 0 {
                        time += 1;
                        disc[w as usize] = time;
                        low[w as usize] = time;
                        stack.push((w, e, 0));
                    } else {
                        low[v as usize] = low[v as usize].min(disc[w as usize]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(u, _, _)) = stack.last() {
                        low[u as usize] = low[u as usize].min(low[v as usize]);
                        if low[v as usize] > disc[u as usize] {
                            is_bridge[pe] = true;
                        }
                    }
                }
            }
        }
        is_bridge
    }

    /// Merges all components into one by degree-preserving double-edge
    /// swaps: a **non-bridge** edge `{a, b}` from one component is crossed
    /// with any edge `{c, d}` of another, yielding `{a, c}` + `{b, d}`.
    /// The crossing edges cannot pre-exist (their endpoints were in
    /// different components), so every swap is valid and keeps all degrees;
    /// because `{a, b}` sits on a cycle its removal leaves its component
    /// whole, so both halves of the other component (whole, or split if
    /// `{c, d}` was a bridge) reattach to it and the component count drops
    /// by exactly one per pass. Picking a bridge on *both* sides instead
    /// can split-and-recross into the same component count forever — the
    /// non-bridge side is what makes this terminate.
    ///
    /// A non-bridge edge always exists here: the expander keeps every
    /// degree ≥ 2 (every component owns a cycle), and the small world keeps
    /// `n·k/2 ≥ n` edges (some component has at least as many edges as
    /// nodes, hence a cycle).
    fn repair_connectivity(&mut self, n: u32) {
        loop {
            let comp = self.components(n);
            let base = comp[0];
            if comp.iter().all(|&c| c == base) {
                return;
            }
            let bridge = self.bridges(n);
            let i = (0..self.edges.len()).find(|&i| !bridge[i]);
            let Some(i) = i else {
                // All-bridge = every component is a tree, impossible for
                // both callers (see above); a degree-preserving repair
                // does not exist for such graphs.
                unreachable!("all-bridge multi-component graph in repair");
            };
            let pc = comp[self.edges[i].0 as usize];
            let j = (0..self.edges.len()).find(|&j| comp[self.edges[j].0 as usize] != pc);
            let Some(j) = j else {
                // Every other component is edgeless, i.e. isolated nodes —
                // impossible: both generators give every node positive
                // degree before repair.
                unreachable!("edgeless component in a positive-degree graph");
            };
            let (a, b) = self.edges[i];
            let (c, d) = self.edges[j];
            self.replace(i, a, c);
            self.replace(j, b, d);
        }
    }

    /// Builds the dependency graph, directing each undirected edge from the
    /// lower to the higher node id (data then flows from high ids toward the
    /// super-peer at node 0).
    fn into_graph(self, n: u32) -> DependencyGraph {
        let mut g = DependencyGraph::new();
        for i in 0..n {
            g.add_node(NodeId(i));
        }
        for (a, b) in self.edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }
}

/// Fisher–Yates shuffle (the vendored `rand` has no `SliceRandom`).
fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

/// Random `degree`-regular graph via the configuration model: each node
/// contributes `degree` stubs, the stub list is shuffled and paired off.
/// Self-loops and duplicate pairs are repaired by re-drawing swap partners;
/// if a pairing resists repair (likelier for small `n`), the whole pairing
/// is re-drawn — all deterministically from `seed`.
fn expander(n: u32, degree: u32, seed: u64) -> DependencyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..1_000 {
        let mut stubs: Vec<u32> = (0..n).flat_map(|i| (0..degree).map(move |_| i)).collect();
        shuffle(&mut stubs, &mut rng);
        let mut set = EdgeSet::new();
        let mut bad: Vec<(u32, u32)> = Vec::new();
        for pair in stubs.chunks_exact(2) {
            if !set.insert(pair[0], pair[1]) {
                bad.push((pair[0], pair[1]));
            }
        }
        // Repair each bad pair by a double swap with a random good edge:
        // {a,b} bad + {c,d} good → {a,c} + {b,d}.
        for (a, b) in bad {
            let mut placed = false;
            for _ in 0..200 {
                if set.edges.is_empty() {
                    break;
                }
                let j = rng.gen_range(0..set.edges.len());
                let (c, d) = set.edges[j];
                let (x, y) = ((a, c), (b, d));
                if x.0 != x.1 && y.0 != y.1 && !set.contains(x.0, x.1) && !set.contains(y.0, y.1) {
                    set.replace(j, x.0, x.1);
                    set.insert(y.0, y.1);
                    placed = true;
                    break;
                }
            }
            if !placed {
                continue 'attempt; // re-draw the whole pairing
            }
        }
        set.repair_connectivity(n);
        return set.into_graph(n);
    }
    unreachable!("expander pairing failed to converge for n={n}, degree={degree}");
}

/// Watts–Strogatz small world: ring lattice of degree `k`, then each
/// lattice edge's far endpoint is rewired with probability
/// `rewire_percent`, keeping the near endpoint fixed.
fn small_world(n: u32, k: u32, rewire_percent: u8, seed: u64) -> DependencyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = EdgeSet::new();
    // Lattice: i — (i + j) mod n for j in 1..=k/2. k < n keeps these
    // distinct, non-loop edges.
    for i in 0..n {
        for j in 1..=k / 2 {
            set.insert(i, (i + j) % n);
        }
    }
    // Rewire in deterministic lattice order. The edge index inside `set`
    // is found via the normalized pair; a failed re-draw keeps the edge.
    for i in 0..n {
        for j in 1..=k / 2 {
            if rng.gen_range(0..100u8) >= rewire_percent {
                continue;
            }
            let old = EdgeSet::norm(i, (i + j) % n);
            let Some(idx) = set.edges.iter().position(|&e| e == old) else {
                continue; // already rewired away by an earlier draw
            };
            for _ in 0..50 {
                let t = rng.gen_range(0..n);
                if t != i && !set.contains(i, t) {
                    set.replace(idx, i, t);
                    break;
                }
            }
        }
    }
    set.repair_connectivity(n);
    set.into_graph(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::is_acyclic;
    use std::collections::BTreeMap;

    #[test]
    fn tree_counts_and_depth() {
        let t = Topology::Tree {
            branching: 2,
            depth: 3,
        };
        let g = t.generate();
        assert_eq!(g.node_count, 15);
        assert_eq!(g.node_count, t.node_count());
        assert_eq!(g.depth, 3);
        assert!(is_acyclic(&g.graph));
        // Every non-root node has exactly one parent.
        for n in g.graph.nodes() {
            let preds = g.graph.predecessors(n).count();
            assert_eq!(preds, usize::from(n != NodeId(0)));
        }
    }

    #[test]
    fn unary_tree_is_chain() {
        let g = Topology::Tree {
            branching: 1,
            depth: 4,
        }
        .generate();
        assert_eq!(g.node_count, 5);
        assert_eq!(g.depth, 4);
    }

    #[test]
    fn layered_dag_shape() {
        let t = Topology::LayeredDag {
            layers: 4,
            width: 3,
            fanout: 2,
        };
        let g = t.generate();
        assert_eq!(g.node_count, 12);
        assert_eq!(g.depth, 3);
        assert!(is_acyclic(&g.graph));
        // Every non-last-layer node has `fanout` successors.
        for l in 0..3u32 {
            for k in 0..3u32 {
                assert_eq!(g.graph.out_degree(NodeId(l * 3 + k)), 2);
            }
        }
        for k in 0..3u32 {
            assert_eq!(g.graph.out_degree(NodeId(9 + k)), 0);
        }
    }

    #[test]
    fn clique_is_complete_and_cyclic() {
        let g = Topology::Clique { n: 4 }.generate();
        assert_eq!(g.graph.edge_count(), 12);
        assert!(!is_acyclic(&g.graph));
        assert_eq!(g.depth, 1);
    }

    #[test]
    fn ring_is_cyclic_chain_is_not() {
        assert!(!is_acyclic(&Topology::Ring { n: 5 }.generate().graph));
        assert!(is_acyclic(&Topology::Chain { n: 5 }.generate().graph));
        assert_eq!(Topology::Chain { n: 5 }.generate().depth, 4);
    }

    #[test]
    fn star_depth_one() {
        let g = Topology::Star { n: 9 }.generate();
        assert_eq!(g.depth, 1);
        assert_eq!(g.graph.out_degree(NodeId(0)), 8);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 7,
        }
        .generate();
        let b = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 7,
        }
        .generate();
        let c = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 8,
        }
        .generate();
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn connectivity_repair_terminates_on_bridge_first_components() {
        // Three lollipops (a bridge tail hanging off a triangle), laid out
        // so the *first* edge of every component is a bridge. The old
        // repair deterministically crossed the first in/out-of-component
        // edges; with bridges on both sides the double swap splits both
        // components and re-merges them crosswise — no progress, and the
        // deterministic pick could cycle forever. The non-bridge-aware
        // repair must terminate, connect everything and keep all degrees.
        let mut set = EdgeSet::new();
        for b in [0u32, 4, 8] {
            set.insert(b, b + 1); // tail: a bridge
            set.insert(b + 1, b + 2);
            set.insert(b + 2, b + 3);
            set.insert(b + 3, b + 1); // triangle
        }
        let before: Vec<usize> = {
            let mut deg = vec![0usize; 12];
            for &(a, b) in &set.edges {
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
            deg
        };
        set.repair_connectivity(12);
        let mut deg = vec![0usize; 12];
        for &(a, b) in &set.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        assert_eq!(deg, before, "repair must preserve every degree");
        let g = set.into_graph(12);
        assert!(connected_ignoring_direction(&g), "repair must connect");
    }

    #[test]
    fn random_degree_has_exact_edge_count_and_no_loops() {
        let t = Topology::RandomDegree {
            n: 200,
            degree: 8,
            seed: 3,
        };
        let g = t.generate();
        assert_eq!(g.node_count, 200);
        assert_eq!(g.graph.edge_count(), 200 * 8 / 2);
        for node in g.graph.nodes() {
            assert!(
                !g.graph.successors(node).any(|s| s == node),
                "self-loop at {node}"
            );
        }
    }

    #[test]
    fn random_degree_is_deterministic_per_seed() {
        let spec = |seed| Topology::RandomDegree {
            n: 64,
            degree: 6,
            seed,
        };
        assert_eq!(spec(9).generate().graph, spec(9).generate().graph);
        assert_ne!(spec(9).generate().graph, spec(10).generate().graph);
    }

    #[test]
    fn random_degree_stays_sparse_at_ten_thousand_nodes() {
        // The point of the parameterization: the integral-percent `Random`
        // cannot go below ~1% ≈ 10⁶ edges at this size, `RandomDegree`
        // pins the edge count to n·d/2 regardless of n.
        let g = Topology::RandomDegree {
            n: 10_000,
            degree: 8,
            seed: 42,
        }
        .generate();
        assert_eq!(g.graph.edge_count(), 40_000);
    }

    /// Total (in + out) degree per node, the undirected quantity the new
    /// families guarantee invariants over.
    fn total_degrees(g: &DependencyGraph) -> BTreeMap<NodeId, usize> {
        g.nodes()
            .map(|n| (n, g.successors(n).count() + g.predecessors(n).count()))
            .collect()
    }

    /// Undirected connectivity (direction-blind BFS from node 0).
    fn connected_ignoring_direction(g: &DependencyGraph) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = vec![NodeId(0)];
        while let Some(n) = queue.pop() {
            if !seen.insert(n) {
                continue;
            }
            queue.extend(g.successors(n));
            queue.extend(g.predecessors(n));
        }
        seen.len() == g.node_count()
    }

    #[test]
    fn expander_is_regular_and_connected() {
        for (n, d, seed) in [(10, 3, 1u64), (64, 4, 2), (101, 6, 3), (500, 8, 4)] {
            let t = Topology::Expander { n, degree: d, seed };
            let g = t.generate();
            assert_eq!(g.node_count, n as usize);
            assert_eq!(g.graph.edge_count(), (n as usize * d as usize) / 2, "{t}");
            for (node, deg) in total_degrees(&g.graph) {
                assert_eq!(deg, d as usize, "{t}: node {node} degree");
            }
            assert!(connected_ignoring_direction(&g.graph), "{t}: disconnected");
        }
    }

    #[test]
    fn expander_is_deterministic_per_seed() {
        let spec = |seed| Topology::Expander {
            n: 40,
            degree: 4,
            seed,
        };
        assert_eq!(spec(9).generate().graph, spec(9).generate().graph);
        assert_ne!(spec(9).generate().graph, spec(10).generate().graph);
    }

    #[test]
    fn small_world_keeps_edge_count_and_connectivity() {
        for (n, k, p, seed) in [(12, 4, 0u8, 1u64), (50, 6, 30, 2), (200, 8, 100, 3)] {
            let t = Topology::SmallWorld {
                n,
                k,
                rewire_percent: p,
                seed,
            };
            let g = t.generate();
            assert_eq!(g.graph.edge_count(), (n as usize * k as usize) / 2, "{t}");
            for (node, deg) in total_degrees(&g.graph) {
                assert!(deg >= k as usize / 2, "{t}: node {node} degree {deg}");
            }
            assert!(connected_ignoring_direction(&g.graph), "{t}: disconnected");
        }
    }

    #[test]
    fn small_world_without_rewiring_is_the_lattice() {
        let g = Topology::SmallWorld {
            n: 10,
            k: 4,
            rewire_percent: 0,
            seed: 5,
        }
        .generate();
        // Pure ring lattice: every node has total degree exactly k.
        for (_, deg) in total_degrees(&g.graph) {
            assert_eq!(deg, 4);
        }
    }

    #[test]
    fn minimal_valid_sizes_still_generate() {
        for t in [
            Topology::Tree {
                branching: 1,
                depth: 0,
            },
            Topology::Clique { n: 1 },
            Topology::Chain { n: 1 },
            Topology::Star { n: 1 },
            Topology::LayeredDag {
                layers: 1,
                width: 1,
                fanout: 1,
            },
        ] {
            let g = t.generate();
            assert_eq!(g.node_count, 1);
            assert_eq!(g.depth, 0);
        }
    }

    #[test]
    fn degenerate_specs_are_rejected_not_clamped() {
        let bad = [
            Topology::Tree {
                branching: 0,
                depth: 2,
            },
            Topology::LayeredDag {
                layers: 0,
                width: 1,
                fanout: 1,
            },
            Topology::LayeredDag {
                layers: 1,
                width: 0,
                fanout: 1,
            },
            Topology::Clique { n: 0 },
            Topology::Chain { n: 0 },
            Topology::Star { n: 0 },
            Topology::Ring { n: 1 }, // used to clamp to 2 while Random clamped to 1
            Topology::Random {
                n: 0,
                p_percent: 10,
                seed: 1,
            },
            Topology::Random {
                n: 5,
                p_percent: 101,
                seed: 1,
            },
            Topology::RandomDegree {
                n: 1,
                degree: 1,
                seed: 1,
            },
            Topology::RandomDegree {
                n: 10,
                degree: 0,
                seed: 1,
            },
            Topology::RandomDegree {
                n: 10,
                degree: 10, // degree must stay below n
                seed: 1,
            },
            Topology::Expander {
                n: 2,
                degree: 2,
                seed: 1,
            },
            Topology::Expander {
                n: 10,
                degree: 1,
                seed: 1,
            },
            Topology::Expander {
                n: 5,
                degree: 3, // n·degree odd
                seed: 1,
            },
            Topology::SmallWorld {
                n: 10,
                k: 3, // odd lattice degree
                rewire_percent: 10,
                seed: 1,
            },
            Topology::SmallWorld {
                n: 4,
                k: 4, // k must stay below n
                rewire_percent: 10,
                seed: 1,
            },
        ];
        for t in bad {
            assert!(t.try_generate().is_err(), "{t} should be rejected");
        }
        assert!(
            std::panic::catch_unwind(|| Topology::Ring { n: 1 }.generate()).is_err(),
            "generate() must panic, not clamp"
        );
    }

    #[test]
    fn node_count_matches_generation() {
        for t in [
            Topology::Tree {
                branching: 3,
                depth: 2,
            },
            Topology::LayeredDag {
                layers: 5,
                width: 4,
                fanout: 2,
            },
            Topology::Clique { n: 6 },
            Topology::Ring { n: 7 },
            Topology::Expander {
                n: 20,
                degree: 4,
                seed: 1,
            },
            Topology::SmallWorld {
                n: 20,
                k: 4,
                rewire_percent: 25,
                seed: 1,
            },
        ] {
            assert_eq!(t.generate().node_count, t.node_count(), "{t}");
        }
    }
}
