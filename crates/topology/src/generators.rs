//! Topology generators for the paper's experiments (Section 5: "Three types
//! of topologies have been considered: trees, layered acyclic graphs, and
//! cliques") plus auxiliary families used by tests and ablations.
//!
//! Conventions:
//! * Node 0 is the designated **super-peer** (the paper's discovery/update
//!   initiator and statistics collector).
//! * Edges are **dependency edges** `head → body`: the head imports data
//!   from the body, so data flows *against* the arrows toward node 0. With
//!   the super-peer at the root, update execution time grows with the depth
//!   of the structure — the quantity the paper reports as linear.

use crate::graph::{DependencyGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A topology family with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Complete `branching`-ary tree of the given depth; the root (node 0)
    /// depends on its children, recursively. `Tree { branching: 2, depth: 3 }`
    /// has 15 nodes.
    Tree {
        /// Children per internal node (≥ 1).
        branching: u32,
        /// Edge-depth of the tree (0 = a single node).
        depth: u32,
    },
    /// Layered acyclic graph: `layers` layers of `width` nodes; every node
    /// of layer *l* depends on `fanout` nodes of layer *l+1* (chosen
    /// round-robin, deterministic). Node 0 sits in layer 0.
    LayeredDag {
        /// Number of layers (≥ 1); depth = layers − 1.
        layers: u32,
        /// Nodes per layer (≥ 1).
        width: u32,
        /// Dependencies per node into the next layer (clamped to width).
        fanout: u32,
    },
    /// Clique: every ordered pair of distinct nodes is a dependency edge
    /// (rules in both directions, maximal cyclicity).
    Clique {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Chain `0 → 1 → … → n−1` (a degenerate tree; depth = n − 1).
    Chain {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Ring: chain plus the closing edge `n−1 → 0`; the smallest fully
    /// cyclic family, exercising the fix-point iteration.
    Ring {
        /// Number of nodes (≥ 2).
        n: u32,
    },
    /// Star: node 0 depends on every other node (depth 1).
    Star {
        /// Number of nodes (≥ 1).
        n: u32,
    },
    /// Erdős–Rényi digraph over `n` nodes with edge probability `p_percent`
    /// (0–100), seeded for reproducibility; node 0's reachability is then
    /// whatever the dice gave.
    Random {
        /// Number of nodes.
        n: u32,
        /// Edge probability in percent (kept integral so the enum stays `Eq`).
        p_percent: u8,
        /// RNG seed.
        seed: u64,
    },
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Tree { branching, depth } => write!(f, "tree(b={branching},d={depth})"),
            Topology::LayeredDag {
                layers,
                width,
                fanout,
            } => write!(f, "layered(l={layers},w={width},f={fanout})"),
            Topology::Clique { n } => write!(f, "clique(n={n})"),
            Topology::Chain { n } => write!(f, "chain(n={n})"),
            Topology::Ring { n } => write!(f, "ring(n={n})"),
            Topology::Star { n } => write!(f, "star(n={n})"),
            Topology::Random { n, p_percent, seed } => {
                write!(f, "random(n={n},p={p_percent}%,seed={seed})")
            }
        }
    }
}

/// A generated topology: the dependency graph plus bookkeeping the
/// experiments report on.
#[derive(Debug, Clone)]
pub struct GeneratedTopology {
    /// The dependency graph.
    pub graph: DependencyGraph,
    /// Number of nodes.
    pub node_count: usize,
    /// The designated super-peer (always node 0).
    pub super_peer: NodeId,
    /// Depth as seen from the super-peer (max BFS distance).
    pub depth: usize,
}

impl Topology {
    /// Materialises the topology.
    pub fn generate(&self) -> GeneratedTopology {
        let graph = match *self {
            Topology::Tree { branching, depth } => tree(branching.max(1), depth),
            Topology::LayeredDag {
                layers,
                width,
                fanout,
            } => layered(layers.max(1), width.max(1), fanout.max(1)),
            Topology::Clique { n } => clique(n.max(1)),
            Topology::Chain { n } => chain(n.max(1)),
            Topology::Ring { n } => ring(n.max(2)),
            Topology::Star { n } => star(n.max(1)),
            Topology::Random { n, p_percent, seed } => random(n.max(1), p_percent, seed),
        };
        let node_count = graph.node_count();
        let depth = graph.depth_from(NodeId(0));
        GeneratedTopology {
            graph,
            node_count,
            super_peer: NodeId(0),
            depth,
        }
    }

    /// Number of nodes the topology will have, without materialising it.
    pub fn node_count(&self) -> usize {
        match *self {
            Topology::Tree { branching, depth } => {
                let b = branching.max(1) as u64;
                if b == 1 {
                    depth as usize + 1
                } else {
                    (((b.pow(depth + 1) - 1) / (b - 1)) as usize).max(1)
                }
            }
            Topology::LayeredDag { layers, width, .. } => (layers.max(1) * width.max(1)) as usize,
            Topology::Clique { n }
            | Topology::Chain { n }
            | Topology::Star { n }
            | Topology::Random { n, .. } => n.max(1) as usize,
            Topology::Ring { n } => n.max(2) as usize,
        }
    }
}

fn tree(branching: u32, depth: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    // Breadth-first ids: node k's children are fresh ids.
    let mut next = 1u32;
    let mut frontier = vec![(NodeId(0), 0u32)];
    while let Some((node, d)) = frontier.pop() {
        if d == depth {
            continue;
        }
        for _ in 0..branching {
            let child = NodeId(next);
            next += 1;
            g.add_edge(node, child);
            frontier.push((child, d + 1));
        }
    }
    g
}

fn layered(layers: u32, width: u32, fanout: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    let id = |layer: u32, k: u32| NodeId(layer * width + k);
    for l in 0..layers {
        for k in 0..width {
            g.add_node(id(l, k));
        }
    }
    let fanout = fanout.min(width);
    for l in 0..layers.saturating_sub(1) {
        for k in 0..width {
            for f in 0..fanout {
                g.add_edge(id(l, k), id(l + 1, (k + f) % width));
            }
        }
    }
    g
}

fn clique(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

fn chain(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId(i), NodeId(i + 1));
    }
    g
}

fn ring(n: u32) -> DependencyGraph {
    let mut g = chain(n);
    g.add_edge(NodeId(n - 1), NodeId(0));
    g
}

fn star(n: u32) -> DependencyGraph {
    let mut g = DependencyGraph::new();
    g.add_node(NodeId(0));
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i));
    }
    g
}

fn random(n: u32, p_percent: u8, seed: u64) -> DependencyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DependencyGraph::new();
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_range(0..100u8) < p_percent {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::is_acyclic;

    #[test]
    fn tree_counts_and_depth() {
        let t = Topology::Tree {
            branching: 2,
            depth: 3,
        };
        let g = t.generate();
        assert_eq!(g.node_count, 15);
        assert_eq!(g.node_count, t.node_count());
        assert_eq!(g.depth, 3);
        assert!(is_acyclic(&g.graph));
        // Every non-root node has exactly one parent.
        for n in g.graph.nodes() {
            let preds = g.graph.predecessors(n).count();
            assert_eq!(preds, usize::from(n != NodeId(0)));
        }
    }

    #[test]
    fn unary_tree_is_chain() {
        let g = Topology::Tree {
            branching: 1,
            depth: 4,
        }
        .generate();
        assert_eq!(g.node_count, 5);
        assert_eq!(g.depth, 4);
    }

    #[test]
    fn layered_dag_shape() {
        let t = Topology::LayeredDag {
            layers: 4,
            width: 3,
            fanout: 2,
        };
        let g = t.generate();
        assert_eq!(g.node_count, 12);
        assert_eq!(g.depth, 3);
        assert!(is_acyclic(&g.graph));
        // Every non-last-layer node has `fanout` successors.
        for l in 0..3u32 {
            for k in 0..3u32 {
                assert_eq!(g.graph.out_degree(NodeId(l * 3 + k)), 2);
            }
        }
        for k in 0..3u32 {
            assert_eq!(g.graph.out_degree(NodeId(9 + k)), 0);
        }
    }

    #[test]
    fn clique_is_complete_and_cyclic() {
        let g = Topology::Clique { n: 4 }.generate();
        assert_eq!(g.graph.edge_count(), 12);
        assert!(!is_acyclic(&g.graph));
        assert_eq!(g.depth, 1);
    }

    #[test]
    fn ring_is_cyclic_chain_is_not() {
        assert!(!is_acyclic(&Topology::Ring { n: 5 }.generate().graph));
        assert!(is_acyclic(&Topology::Chain { n: 5 }.generate().graph));
        assert_eq!(Topology::Chain { n: 5 }.generate().depth, 4);
    }

    #[test]
    fn star_depth_one() {
        let g = Topology::Star { n: 9 }.generate();
        assert_eq!(g.depth, 1);
        assert_eq!(g.graph.out_degree(NodeId(0)), 8);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 7,
        }
        .generate();
        let b = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 7,
        }
        .generate();
        let c = Topology::Random {
            n: 12,
            p_percent: 30,
            seed: 8,
        }
        .generate();
        assert_eq!(a.graph, b.graph);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        for t in [
            Topology::Tree {
                branching: 1,
                depth: 0,
            },
            Topology::Clique { n: 1 },
            Topology::Chain { n: 1 },
            Topology::Star { n: 1 },
            Topology::LayeredDag {
                layers: 1,
                width: 1,
                fanout: 1,
            },
        ] {
            let g = t.generate();
            assert_eq!(g.node_count, 1);
            assert_eq!(g.depth, 0);
        }
    }

    #[test]
    fn node_count_matches_generation() {
        for t in [
            Topology::Tree {
                branching: 3,
                depth: 2,
            },
            Topology::LayeredDag {
                layers: 5,
                width: 4,
                fanout: 2,
            },
            Topology::Clique { n: 6 },
            Topology::Ring { n: 7 },
        ] {
            assert_eq!(t.generate().node_count, t.node_count(), "{t}");
        }
    }
}
