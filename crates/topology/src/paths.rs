//! Dependency paths and maximal dependency paths (Definitions 6–7).
//!
//! A *dependency path* for node `i` is a sequence `⟨i₁, …, iₙ⟩` of
//! dependency edges with `i₁ = i` whose prefix `⟨i₁, …, iₙ₋₁⟩` is simple —
//! i.e. only the **last** node may revisit an earlier one (closing a loop).
//! A path is *maximal* when no node can be appended: either its last node
//! has no outgoing dependency edge (a sink), or the path already ends by
//! revisiting a node (any extension would break prefix-simplicity).
//!
//! The number of maximal paths is factorial in clique size — the very reason
//! the paper's path-flag closure bookkeeping is exponential and our default
//! update mode uses Dijkstra–Scholten termination instead (see DESIGN.md).
//! Enumeration therefore takes an explicit budget and fails loudly rather
//! than hanging.

use crate::graph::{DependencyGraph, NodeId};
use std::fmt;

/// Error raised when enumeration exceeds its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathEnumError {
    /// The budget that was exceeded (maximum number of paths).
    pub limit: usize,
    /// The start node whose enumeration blew up.
    pub start: NodeId,
}

impl fmt::Display for PathEnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "more than {} maximal dependency paths from node {}",
            self.limit, self.start
        )
    }
}

impl std::error::Error for PathEnumError {}

/// Default enumeration budget; cliques of 8 nodes stay under it, larger
/// cliques fail fast.
pub const DEFAULT_PATH_LIMIT: usize = 100_000;

/// Enumerates all **maximal dependency paths** starting at `start`
/// (Definition 7). Paths include the start node; a node with no outgoing
/// dependency edges has no paths (matching `Discover`'s `Paths = ∅` for
/// rule-less nodes).
///
/// Paths are produced in depth-first order following ascending successor
/// ids, which is deterministic.
pub fn maximal_dependency_paths(
    graph: &DependencyGraph,
    start: NodeId,
    limit: usize,
) -> Result<Vec<Vec<NodeId>>, PathEnumError> {
    let mut out = Vec::new();
    if graph.out_degree(start) == 0 {
        return Ok(out);
    }
    let mut path = vec![start];
    dfs(graph, &mut path, &mut out, limit, start)?;
    Ok(out)
}

fn dfs(
    graph: &DependencyGraph,
    path: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    limit: usize,
    start: NodeId,
) -> Result<(), PathEnumError> {
    let last = *path.last().expect("path never empty");
    let mut extended = false;
    for next in graph.successors(last) {
        extended = true;
        if path.contains(&next) {
            // Cycle-closing extension: maximal by prefix-simplicity.
            let mut p = path.clone();
            p.push(next);
            push_limited(out, p, limit, start)?;
        } else {
            path.push(next);
            dfs(graph, path, out, limit, start)?;
            path.pop();
        }
    }
    if !extended {
        // Sink: the simple path itself is maximal.
        push_limited(out, path.clone(), limit, start)?;
    }
    Ok(())
}

fn push_limited(
    out: &mut Vec<Vec<NodeId>>,
    p: Vec<NodeId>,
    limit: usize,
    start: NodeId,
) -> Result<(), PathEnumError> {
    if out.len() >= limit {
        return Err(PathEnumError { limit, start });
    }
    out.push(p);
    Ok(())
}

/// Renders a path in the paper's compact letter form (`ABCA`).
pub fn format_path(path: &[NodeId]) -> String {
    path.iter().map(|n| n.letter()).collect()
}

/// Checks the Definition 6 invariant: the prefix (all but the last node) is
/// simple and consecutive nodes are joined by dependency edges. Used by
/// property tests.
pub fn is_dependency_path(graph: &DependencyGraph, path: &[NodeId]) -> bool {
    if path.len() < 2 {
        return false;
    }
    for w in path.windows(2) {
        if !graph.has_edge(w[0], w[1]) {
            return false;
        }
    }
    let prefix = &path[..path.len() - 1];
    let mut seen = std::collections::BTreeSet::new();
    prefix.iter().all(|n| seen.insert(*n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    fn paths_of(start: u32) -> Vec<String> {
        let g = paper_example_graph();
        let mut p: Vec<String> = maximal_dependency_paths(&g, NodeId(start), 10_000)
            .unwrap()
            .iter()
            .map(|p| format_path(p))
            .collect();
        p.sort();
        p
    }

    /// The §2 table, corrected for the PDF's typographical slips (see
    /// EXPERIMENTS.md E1): enumeration follows Definitions 6–7 exactly.
    #[test]
    fn paper_example_paths_node_a() {
        assert_eq!(paths_of(0), vec!["ABCA", "ABCB", "ABCDA", "ABE"]);
    }

    #[test]
    fn paper_example_paths_node_b() {
        assert_eq!(paths_of(1), vec!["BCAB", "BCB", "BCDAB", "BE"]);
    }

    #[test]
    fn paper_example_paths_node_c() {
        assert_eq!(
            paths_of(2),
            vec!["CABC", "CABE", "CBC", "CBE", "CDABC", "CDABE"]
        );
    }

    #[test]
    fn paper_example_paths_node_d() {
        assert_eq!(paths_of(3), vec!["DABCA", "DABCB", "DABCD", "DABE"]);
    }

    #[test]
    fn paper_example_paths_node_e_empty() {
        // E has no coordination rules: Paths = ∅ (algorithm A1).
        assert!(paths_of(4).is_empty());
    }

    #[test]
    fn all_emitted_paths_satisfy_definition_6() {
        let g = paper_example_graph();
        for start in 0..5 {
            for p in maximal_dependency_paths(&g, NodeId(start), 10_000).unwrap() {
                assert!(is_dependency_path(&g, &p), "bad path {p:?}");
            }
        }
    }

    #[test]
    fn maximality_sinks_and_cycles() {
        let g = paper_example_graph();
        for p in maximal_dependency_paths(&g, NodeId(0), 10_000).unwrap() {
            let last = *p.last().unwrap();
            let closes_cycle = p[..p.len() - 1].contains(&last);
            let is_sink = g.out_degree(last) == 0;
            assert!(closes_cycle || is_sink, "non-maximal path {p:?}");
        }
    }

    #[test]
    fn clique_path_counts_grow_factorially() {
        // In a clique of n nodes, every permutation of the other nodes
        // prefixes a maximal path; counts: n=3 → each start has
        // paths = sum over permutations… verify growth empirically.
        let clique = |n: u32| {
            let mut g = DependencyGraph::new();
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        g.add_edge(NodeId(i), NodeId(j));
                    }
                }
            }
            g
        };
        let count = |n: u32| {
            maximal_dependency_paths(&clique(n), NodeId(0), 1_000_000)
                .unwrap()
                .len()
        };
        let (c3, c4, c5) = (count(3), count(4), count(5));
        assert!(c3 < c4 && c4 < c5, "{c3} {c4} {c5}");
        assert!(c5 >= 24, "clique-5 should already have many paths: {c5}");
    }

    #[test]
    fn enumeration_budget_fails_loudly() {
        let mut g = DependencyGraph::new();
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    g.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        let err = maximal_dependency_paths(&g, NodeId(0), 10).unwrap_err();
        assert_eq!(err.limit, 10);
        assert_eq!(err.start, NodeId(0));
    }

    #[test]
    fn chain_has_single_maximal_path() {
        let g = DependencyGraph::from_edges([(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let p = maximal_dependency_paths(&g, NodeId(0), 100).unwrap();
        assert_eq!(p, vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
    }

    #[test]
    fn two_cycle_paths() {
        // A ⇄ B: from A the only maximal path is ABA.
        let g = DependencyGraph::from_edges([(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))]);
        let p = maximal_dependency_paths(&g, NodeId(0), 100).unwrap();
        assert_eq!(p, vec![vec![NodeId(0), NodeId(1), NodeId(0)]]);
    }
}
