//! # p2p-topology
//!
//! Dependency-graph machinery for P2P database networks, implementing
//! Definitions 5–7 and 10 of Franconi et al. (EDBT P2P&DB'04):
//!
//! * [`NodeId`] — network-unique peer identifiers;
//! * [`DependencyGraph`] — the graph of **dependency edges**: there is an
//!   edge from node *i* to node *j* iff some coordination rule has its head
//!   at *i* and (part of) its body at *j*. Note the direction is the
//!   *opposite* of data flow (Definition 5);
//! * [`paths`] — enumeration of dependency paths and **maximal dependency
//!   paths** (Definitions 6–7), the structures each node learns during
//!   topology discovery;
//! * [`generators`] — the topology families of the paper's experiments
//!   (trees, layered acyclic graphs, cliques) plus chains, rings, stars and
//!   seeded random graphs;
//! * [`separation`] — Definition 10: a node set A is *separated* when no
//!   dependency path from A involves an outside node; with respect to a
//!   change sequence, separation must survive every prefix of the sequence
//!   (the premise of Theorem 3);
//! * [`scc`] — Tarjan strongly-connected components, acyclicity tests and
//!   topological order (needed by the acyclic baseline of Halevy et al.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod paths;
pub mod scc;
pub mod separation;

pub use generators::{GeneratedTopology, Topology, TopologyError};
pub use graph::{DependencyGraph, NodeId};
pub use paths::{maximal_dependency_paths, PathEnumError};
pub use scc::{condensation, is_acyclic, topological_order};
pub use separation::{is_separated, is_separated_under_change, GraphChange};
