//! Separation analysis (Definition 10) — the precondition of Theorem 3.
//!
//! A node set `A` is **separated** from the rest of the network when no
//! dependency path starting in `A` involves an outside node; since
//! dependency paths follow dependency edges, that is equivalent to "no
//! dependency edge leaves `A`". With respect to a change sequence `U`,
//! separation must hold in the network obtained by applying *any* subchange
//! of `U`; because separation is violated exactly by the presence of one
//! offending edge, and any single `addLink` op is itself a subchange, it
//! suffices that (a) the initial network is separated and (b) no operation
//! in `U` ever adds an edge from `A` to the outside. That check is exact,
//! not an approximation: removals never break separation, and an offending
//! addition alone already forms a violating subchange.

use crate::graph::{DependencyGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An atomic change to the dependency graph, mirroring the paper's
/// `addLink`/`deleteLink` at the topology level (rule ids live in
/// `p2p-core`; here only the induced edge matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphChange {
    /// A coordination rule with head `head` and body `body` appears:
    /// dependency edge `head → body`.
    AddEdge {
        /// Rule-head node (data importer).
        head: NodeId,
        /// Rule-body node (data source).
        body: NodeId,
    },
    /// The last rule between the pair disappears: edge removed.
    RemoveEdge {
        /// Rule-head node.
        head: NodeId,
        /// Rule-body node.
        body: NodeId,
    },
}

/// Definition 10(1): `a` is separated iff no dependency edge leads from a
/// node in `a` to a node outside it.
pub fn is_separated(graph: &DependencyGraph, a: &BTreeSet<NodeId>) -> bool {
    graph
        .edges()
        .all(|(from, to)| !a.contains(&from) || a.contains(&to))
}

/// Definition 10(2): `a` is separated *with respect to the change `u`* iff
/// it is separated in the initial network and under every subchange of `u`.
///
/// Exactness argument: an `AddEdge` from `a` to the outside is a one-element
/// subchange that already violates separation, and a network with no such
/// edge stays separated under any combination of the remaining operations.
pub fn is_separated_under_change(
    graph: &DependencyGraph,
    a: &BTreeSet<NodeId>,
    u: &[GraphChange],
) -> bool {
    if !is_separated(graph, a) {
        return false;
    }
    u.iter().all(|op| match op {
        GraphChange::AddEdge { head, body } => !a.contains(head) || a.contains(body),
        GraphChange::RemoveEdge { .. } => true,
    })
}

/// Applies a change sequence to a graph (for tests and the dynamic-network
/// oracles): `AddEdge`/`RemoveEdge` in order.
pub fn apply_changes(graph: &DependencyGraph, u: &[GraphChange]) -> DependencyGraph {
    let mut g = graph.clone();
    for op in u {
        match op {
            GraphChange::AddEdge { head, body } => g.add_edge(*head, *body),
            GraphChange::RemoveEdge { head, body } => {
                g.remove_edge(*head, *body);
            }
        }
    }
    g
}

/// The *restriction* `U_A` of a change to the node set `a` (Definition 8.4):
/// the operations touching a node of `a`, in original order.
pub fn restrict_change(u: &[GraphChange], a: &BTreeSet<NodeId>) -> Vec<GraphChange> {
    u.iter()
        .filter(|op| {
            let (h, b) = match op {
                GraphChange::AddEdge { head, body } | GraphChange::RemoveEdge { head, body } => {
                    (head, body)
                }
            };
            a.contains(h) || a.contains(b)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn full_network_is_separated_from_nothing() {
        let g = paper_example_graph();
        assert!(is_separated(&g, &set(&[0, 1, 2, 3, 4])));
    }

    #[test]
    fn abcde_subsets() {
        let g = paper_example_graph();
        // {A,B,C,D,E} minus E: A..D depend on E via B→E, so {A,B,C,D} is NOT
        // separated.
        assert!(!is_separated(&g, &set(&[0, 1, 2, 3])));
        // E alone has no outgoing edges: separated.
        assert!(is_separated(&g, &set(&[4])));
        // {B,C} has edges B→E, C→A, C→D leaving: not separated.
        assert!(!is_separated(&g, &set(&[1, 2])));
    }

    #[test]
    fn two_islands() {
        let mut g = DependencyGraph::from_edges([
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
            (NodeId(2), NodeId(3)),
        ]);
        g.add_node(NodeId(4));
        assert!(is_separated(&g, &set(&[0, 1])));
        assert!(is_separated(&g, &set(&[2, 3])));
        assert!(is_separated(&g, &set(&[4])));
        assert!(!is_separated(&g, &set(&[0, 2])));
    }

    #[test]
    fn change_breaking_separation_detected() {
        let g = DependencyGraph::from_edges([(NodeId(0), NodeId(1))]);
        let a = set(&[0, 1]);
        let benign = vec![
            GraphChange::AddEdge {
                head: NodeId(2),
                body: NodeId(0), // outsider depends on A: fine
            },
            GraphChange::RemoveEdge {
                head: NodeId(0),
                body: NodeId(1),
            },
        ];
        assert!(is_separated_under_change(&g, &a, &benign));
        let breaking = vec![GraphChange::AddEdge {
            head: NodeId(1),
            body: NodeId(2), // A member starts depending on outsider
        }];
        assert!(!is_separated_under_change(&g, &a, &breaking));
    }

    #[test]
    fn add_then_remove_still_counts_as_violation() {
        // Even if a violating edge is later removed, the intermediate
        // subchange violates Definition 10(2).
        let g = DependencyGraph::new();
        let a = set(&[0]);
        let u = vec![
            GraphChange::AddEdge {
                head: NodeId(0),
                body: NodeId(1),
            },
            GraphChange::RemoveEdge {
                head: NodeId(0),
                body: NodeId(1),
            },
        ];
        assert!(!is_separated_under_change(&g, &a, &u));
    }

    #[test]
    fn apply_changes_in_order() {
        let g = DependencyGraph::new();
        let u = vec![
            GraphChange::AddEdge {
                head: NodeId(0),
                body: NodeId(1),
            },
            GraphChange::AddEdge {
                head: NodeId(1),
                body: NodeId(2),
            },
            GraphChange::RemoveEdge {
                head: NodeId(0),
                body: NodeId(1),
            },
        ];
        let g2 = apply_changes(&g, &u);
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
        assert!(g2.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn restriction_keeps_relevant_ops_in_order() {
        let a = set(&[5]);
        let u = vec![
            GraphChange::AddEdge {
                head: NodeId(1),
                body: NodeId(2),
            },
            GraphChange::AddEdge {
                head: NodeId(5),
                body: NodeId(1),
            },
            GraphChange::RemoveEdge {
                head: NodeId(3),
                body: NodeId(5),
            },
        ];
        let r = restrict_change(&u, &a);
        assert_eq!(r.len(), 2);
        assert!(matches!(
            r[0],
            GraphChange::AddEdge {
                head: NodeId(5),
                ..
            }
        ));
        assert!(matches!(
            r[1],
            GraphChange::RemoveEdge {
                body: NodeId(5),
                ..
            }
        ));
    }
}
