//! Node identifiers and the dependency graph (Definition 5).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Identifier of a peer, unique across the network (the paper's `ID`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Renders a node as a letter for small networks (A, B, C, …), matching
    /// the paper's running example, falling back to `N<id>`.
    pub fn letter(&self) -> String {
        if self.0 < 26 {
            char::from(b'A' + self.0 as u8).to_string()
        } else {
            format!("N{}", self.0)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// The dependency graph of a P2P system.
///
/// There is a **dependency edge** from `i` to `j` iff a coordination rule has
/// head at `i` and body at `j` — the direction data is *requested*, opposite
/// to the direction data *flows* (Definition 5 and the remark after it).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    nodes: BTreeSet<NodeId>,
    succ: BTreeMap<NodeId, BTreeSet<NodeId>>,
    pred: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl DependencyGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from `(head, body)` dependency edges.
    pub fn from_edges(edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Self::new();
        for (from, to) in edges {
            g.add_edge(from, to);
        }
        g
    }

    /// Registers a node (idempotent). Nodes appear implicitly when an edge
    /// touches them, but isolated nodes must be added explicitly.
    pub fn add_node(&mut self, n: NodeId) {
        self.nodes.insert(n);
    }

    /// Adds the dependency edge `from → to` (idempotent; self-loops are
    /// ignored since a rule's head and body nodes are distinct by
    /// Definition 2).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if from == to {
            return;
        }
        self.nodes.insert(from);
        self.nodes.insert(to);
        self.succ.entry(from).or_default().insert(to);
        self.pred.entry(to).or_default().insert(from);
    }

    /// Removes a dependency edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let removed = self
            .succ
            .get_mut(&from)
            .map(|s| s.remove(&to))
            .unwrap_or(false);
        if removed {
            if let Some(p) = self.pred.get_mut(&to) {
                p.remove(&from);
            }
        }
        removed
    }

    /// Membership test for an edge.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succ
            .get(&from)
            .map(|s| s.contains(&to))
            .unwrap_or(false)
    }

    /// Successors of a node (the nodes it depends on), in id order.
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succ.get(&n).into_iter().flatten().copied()
    }

    /// Predecessors of a node (the nodes depending on it), in id order.
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.pred.get(&n).into_iter().flatten().copied()
    }

    /// Out-degree.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ.get(&n).map(BTreeSet::len).unwrap_or(0)
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All edges as `(from, to)` pairs, in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .flat_map(|(f, ts)| ts.iter().map(move |t| (*f, *t)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// Nodes reachable from `start` by following dependency edges,
    /// *excluding* `start` unless it lies on a cycle through itself.
    pub fn reachable_from(&self, start: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<NodeId> = self.successors(start).collect();
        while let Some(n) = queue.pop_front() {
            if seen.insert(n) {
                queue.extend(self.successors(n));
            }
        }
        seen
    }

    /// Breadth-first distances (in hops) from `start` along dependency
    /// edges; unreachable nodes are absent.
    pub fn distances_from(&self, start: NodeId) -> BTreeMap<NodeId, usize> {
        let mut dist = BTreeMap::new();
        dist.insert(start, 0usize);
        let mut queue = VecDeque::from([start]);
        while let Some(n) = queue.pop_front() {
            let d = dist[&n];
            for s in self.successors(n) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(s) {
                    e.insert(d + 1);
                    queue.push_back(s);
                }
            }
        }
        dist
    }

    /// Depth of the graph as seen from `start`: the maximum BFS distance of
    /// any reachable node. The paper's "execution time is linear with
    /// respect to the depth of the structure" refers to this quantity for
    /// trees and layered DAGs rooted at the super-peer.
    pub fn depth_from(&self, start: NodeId) -> usize {
        self.distances_from(start)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for DependencyGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (from, to) in self.edges() {
            writeln!(f, "{from} -> {to}")?;
        }
        Ok(())
    }
}

/// Builds the dependency graph of the paper's Section 2 running example
/// (nodes A–E, rules r1–r7). Exposed because multiple crates' tests and the
/// E1/E2 experiments use it.
pub fn paper_example_graph() -> DependencyGraph {
    let (a, b, c, d, e) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4));
    let mut g = DependencyGraph::new();
    // r1: E:e ⇒ B:b   — head B, body E  — edge B→E
    g.add_edge(b, e);
    // r2: B:b,b ⇒ C:c — edge C→B
    g.add_edge(c, b);
    // r3: C:c,c ⇒ B:b — edge B→C
    g.add_edge(b, c);
    // r4: B:b,b ⇒ A:a — edge A→B
    g.add_edge(a, b);
    // r5: A:a ⇒ C:f   — edge C→A
    g.add_edge(c, a);
    // r6: A:a ⇒ D:d   — edge D→A
    g.add_edge(d, a);
    // r7: D:d,d ⇒ C:c — edge C→D
    g.add_edge(c, d);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_render_like_the_paper() {
        assert_eq!(NodeId(0).to_string(), "A");
        assert_eq!(NodeId(4).to_string(), "E");
        assert_eq!(NodeId(30).to_string(), "N30");
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = DependencyGraph::new();
        g.add_edge(NodeId(0), NodeId(1));
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        // Nodes remain registered after edge removal.
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = DependencyGraph::new();
        g.add_edge(NodeId(3), NodeId(3));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn paper_example_has_expected_edges() {
        let g = paper_example_graph();
        let edges: Vec<_> = g.edges().map(|(f, t)| format!("{f}{t}")).collect();
        assert_eq!(edges, vec!["AB", "BC", "BE", "CA", "CB", "CD", "DA"]);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn reachability_in_paper_example() {
        let g = paper_example_graph();
        // From A everything except… A reaches B, C, D, E and back to A.
        let from_a = g.reachable_from(NodeId(0));
        assert!(from_a.contains(&NodeId(0))); // via the ABCA cycle
        assert_eq!(from_a.len(), 5);
        // E is a sink.
        assert!(g.reachable_from(NodeId(4)).is_empty());
    }

    #[test]
    fn distances_and_depth() {
        let g = paper_example_graph();
        let d = g.distances_from(NodeId(0));
        assert_eq!(d[&NodeId(0)], 0);
        assert_eq!(d[&NodeId(1)], 1); // A→B
        assert_eq!(d[&NodeId(2)], 2); // A→B→C
        assert_eq!(d[&NodeId(4)], 2); // A→B→E
        assert_eq!(d[&NodeId(3)], 3); // A→B→C→D
        assert_eq!(g.depth_from(NodeId(0)), 3);
    }

    #[test]
    fn chain_depth() {
        let g = DependencyGraph::from_edges((0..5).map(|i| (NodeId(i), NodeId(i + 1))));
        assert_eq!(g.depth_from(NodeId(0)), 5);
    }
}
