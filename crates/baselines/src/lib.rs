//! # p2p-baselines
//!
//! The two comparator algorithms from the paper's related-work discussion,
//! implemented over the same substrates so their costs are directly
//! comparable with the distributed update:
//!
//! * [`centralized`] — the *global* algorithm in the style of Calvanese et
//!   al. 2003 ("describes only a global algorithm, that assumes a central
//!   node where all computation is performed"): every node ships its whole
//!   database to the super-peer, the super-peer computes the fix-point
//!   centrally, then ships every node its result. Correct on any topology,
//!   but concentrates all bytes and all computation at one node.
//! * [`acyclic`] — a single-pass wave in the style of Halevy et al. 2003
//!   ("an algorithm for acyclic P2P systems … the acyclic case is
//!   relatively simple — a query is propagated through the network until it
//!   reaches the leaves"): process nodes in reverse dependency order,
//!   evaluating each rule exactly once. Only sound-and-complete on acyclic
//!   dependency graphs; it refuses cyclic ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod centralized;

pub use acyclic::{acyclic_update, AcyclicError, AcyclicReport};
pub use centralized::{centralized_update, CentralizedReport};
