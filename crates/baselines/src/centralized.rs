//! Centralized (global) baseline: ship everything to one node, compute
//! there, ship results back.

use p2p_core::oracle::{global_fixpoint, GlobalDb};
use p2p_core::rule::RuleSet;
use p2p_core::CoreResult;
use p2p_relational::Database;
use p2p_topology::NodeId;
use std::collections::BTreeMap;

/// Cost accounting of a centralized run, in the same units the distributed
/// algorithm reports (message count, bytes, bytes at the hottest node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentralizedReport {
    /// Upload messages (one per non-central node) + download messages.
    pub messages: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Bytes received by the central node — its load is the whole network's
    /// data, the scalability objection to the global algorithm.
    pub central_bytes_in: u64,
    /// Bytes shipped back out of the central node.
    pub central_bytes_out: u64,
}

/// Runs the centralized update: uploads every database to `central`,
/// computes the global fix-point there, downloads each node's new state.
/// Returns the resulting databases and the cost report.
pub fn centralized_update(
    databases: &BTreeMap<NodeId, Database>,
    rules: &RuleSet,
    central: NodeId,
    max_null_depth: u32,
) -> CoreResult<(GlobalDb, CentralizedReport)> {
    // Upload phase: every non-central node ships its full database (plus its
    // rules, whose size we fold into the constant envelope).
    let mut messages = 0u64;
    let mut bytes = 0u64;
    let mut central_in = 0u64;
    for (node, db) in databases {
        if *node == central {
            continue;
        }
        let size = p2p_net::encoded_wire_size(db) as u64 + 64;
        messages += 1;
        bytes += size;
        central_in += size;
    }

    // Central computation: the same fix-point engine the oracle uses.
    let result = global_fixpoint(databases, rules, max_null_depth)?;

    // Download phase: ship each node its materialised database back.
    let mut central_out = 0u64;
    for (node, db) in &result.0 {
        if *node == central {
            continue;
        }
        let size = p2p_net::encoded_wire_size(db) as u64 + 64;
        messages += 1;
        bytes += size;
        central_out += size;
    }

    Ok((
        result,
        CentralizedReport {
            messages,
            bytes,
            central_bytes_in: central_in,
            central_bytes_out: central_out,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::rule::CoordinationRule;
    use p2p_relational::{DatabaseSchema, Val};

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            _ => None,
        }
    }

    fn setup() -> (BTreeMap<NodeId, Database>, RuleSet) {
        let mut dbs = BTreeMap::new();
        dbs.insert(
            NodeId(0),
            Database::new(DatabaseSchema::parse("a(x: int, y: int).").unwrap()),
        );
        let mut b = Database::new(DatabaseSchema::parse("b(x: int, y: int).").unwrap());
        for i in 0..10 {
            b.insert_values("b", vec![Val::Int(i), Val::Int(i + 1)])
                .unwrap();
        }
        dbs.insert(NodeId(1), b);
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap())
            .unwrap();
        (dbs, rules)
    }

    #[test]
    fn computes_the_fixpoint_and_counts_costs() {
        let (dbs, rules) = setup();
        let (result, report) = centralized_update(&dbs, &rules, NodeId(0), 64).unwrap();
        assert_eq!(
            result.node(NodeId(0)).unwrap().relation("a").unwrap().len(),
            10
        );
        // One upload (B) + one download (B).
        assert_eq!(report.messages, 2);
        assert!(report.central_bytes_in > 0);
        assert!(report.central_bytes_out >= report.central_bytes_in);
        assert!(report.bytes >= report.central_bytes_in + report.central_bytes_out);
    }

    #[test]
    fn matches_the_oracle_by_construction() {
        let (dbs, rules) = setup();
        let (result, _) = centralized_update(&dbs, &rules, NodeId(0), 64).unwrap();
        let oracle = global_fixpoint(&dbs, &rules, 64).unwrap();
        assert!(result.equivalent(&oracle));
    }
}
