//! Acyclic single-pass baseline (Halevy et al. 2003 style).
//!
//! On a DAG dependency graph the fix-point needs no iteration: process
//! nodes in reverse dependency order (data sources first), evaluating each
//! node's rules exactly once against already-final sources. One query + one
//! answer per rule fragment — the message-count floor the distributed
//! algorithm approaches on trees and layered DAGs.

use p2p_core::joins::{apply_rule_head, eval_part, join_parts, VarRows};
use p2p_core::rule::RuleSet;
use p2p_relational::chase::{ChaseConfig, ChaseState};
use p2p_relational::{Database, NullFactory};
use p2p_topology::{topological_order, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Why the acyclic baseline refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcyclicError {
    /// The dependency graph has a cycle — the algorithm's published
    /// precondition ("the acyclic case is relatively simple") is violated.
    CyclicDependencies,
    /// A relational error during evaluation.
    Relational(String),
}

impl fmt::Display for AcyclicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcyclicError::CyclicDependencies => {
                write!(f, "dependency graph is cyclic; acyclic baseline refuses")
            }
            AcyclicError::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for AcyclicError {}

/// Cost accounting of an acyclic run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcyclicReport {
    /// Messages exchanged (one query + one answer per rule fragment).
    pub messages: u64,
    /// Bytes moved (answers dominate).
    pub bytes: u64,
}

/// Runs the single-pass wave. Returns the final databases and the report,
/// or refuses on cyclic graphs.
pub fn acyclic_update(
    databases: &BTreeMap<NodeId, Database>,
    rules: &RuleSet,
    max_null_depth: u32,
) -> Result<(BTreeMap<NodeId, Database>, AcyclicReport), AcyclicError> {
    let graph = rules.dependency_graph();
    let Some(order) = topological_order(&graph) else {
        return Err(AcyclicError::CyclicDependencies);
    };

    let mut dbs = databases.clone();
    let mut nulls = NullFactory::new(u32::MAX - 2);
    let mut chase = ChaseState::new();
    let cfg = ChaseConfig { max_null_depth };
    let mut messages = 0u64;
    let mut bytes = 0u64;

    // `order` lists dependencies first: by the time a node is processed,
    // everything it imports from is final.
    for node in order {
        for rule in rules.iter().filter(|r| r.head_node == node) {
            let mut parts = Vec::with_capacity(rule.parts.len());
            let mut ok = true;
            for part in &rule.parts {
                let Some(src) = dbs.get(&part.node) else {
                    ok = false;
                    break;
                };
                let rows =
                    eval_part(part, src).map_err(|e| AcyclicError::Relational(e.to_string()))?;
                // One query out, one answer back per fragment.
                messages += 2;
                bytes += 64
                    + rows
                        .iter()
                        .map(|t| p2p_net::encoded_wire_size(t) as u64)
                        .sum::<u64>();
                parts.push(VarRows {
                    vars: part.vars.clone(),
                    rows,
                });
            }
            if !ok {
                continue;
            }
            let bindings = join_parts(&parts, &rule.join_constraints);
            let Some(head_db) = dbs.get_mut(&rule.head_node) else {
                continue;
            };
            apply_rule_head(rule, &bindings, head_db, &mut nulls, &mut chase, &cfg)
                .map_err(|e| AcyclicError::Relational(e.to_string()))?;
        }
    }
    Ok((dbs, AcyclicReport { messages, bytes }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_core::oracle::global_fixpoint;
    use p2p_core::rule::CoordinationRule;
    use p2p_relational::hom::equivalent_modulo_nulls;
    use p2p_relational::{DatabaseSchema, Val};

    fn resolve(s: &str) -> Option<NodeId> {
        match s {
            "A" => Some(NodeId(0)),
            "B" => Some(NodeId(1)),
            "C" => Some(NodeId(2)),
            _ => None,
        }
    }

    fn chain_setup() -> (BTreeMap<NodeId, Database>, RuleSet) {
        // A ← B ← C with copy rules; data at C.
        let mut dbs = BTreeMap::new();
        for i in 0..3 {
            let rel = ["a", "b", "c"][i as usize];
            dbs.insert(
                NodeId(i),
                Database::new(DatabaseSchema::parse(&format!("{rel}(x: int, y: int).")).unwrap()),
            );
        }
        let c = dbs.get_mut(&NodeId(2)).unwrap();
        c.insert_values("c", vec![Val::Int(1), Val::Int(2)])
            .unwrap();
        c.insert_values("c", vec![Val::Int(3), Val::Int(4)])
            .unwrap();
        let mut rules = RuleSet::new();
        rules
            .add(CoordinationRule::parse("r1", "C:c(X,Y) => B:b(X,Y)", None, &resolve).unwrap())
            .unwrap();
        rules
            .add(CoordinationRule::parse("r2", "B:b(X,Y) => A:a(X,Y)", None, &resolve).unwrap())
            .unwrap();
        (dbs, rules)
    }

    #[test]
    fn single_pass_matches_oracle_on_chain() {
        let (dbs, rules) = chain_setup();
        let (result, report) = acyclic_update(&dbs, &rules, 64).unwrap();
        let oracle = global_fixpoint(&dbs, &rules, 64).unwrap();
        for (node, db) in &result {
            assert!(equivalent_modulo_nulls(db, oracle.node(*node).unwrap()));
        }
        // Exactly 2 fragments → 4 messages.
        assert_eq!(report.messages, 4);
        assert!(report.bytes > 0);
    }

    #[test]
    fn transitive_data_reaches_the_top() {
        let (dbs, rules) = chain_setup();
        let (result, _) = acyclic_update(&dbs, &rules, 64).unwrap();
        assert_eq!(
            result[&NodeId(0)].relation("a").unwrap().len(),
            2,
            "C's data must traverse B into A in one pass"
        );
    }

    #[test]
    fn refuses_cycles() {
        let (dbs, mut rules) = chain_setup();
        rules
            .add(CoordinationRule::parse("r3", "A:a(X,Y) => C:c(X,Y)", None, &resolve).unwrap())
            .unwrap();
        assert_eq!(
            acyclic_update(&dbs, &rules, 64).unwrap_err(),
            AcyclicError::CyclicDependencies
        );
    }
}
