//! Message-sequence traces, rendered like the paper's Figure 1 ("A sample
//! execution of the discovery and update algorithm"): one column per node,
//! one row per message, arrows between columns.

use crate::message::SimTime;
use crate::session::SessionId;
use p2p_topology::NodeId;
use std::fmt::Write as _;

/// One traced message delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Message kind (e.g. `requestNodes`, `Query`, `Answer`).
    pub kind: &'static str,
    /// The update session the message belonged to (`None` for session-less
    /// control traffic) — the attribution multi-session drivers report from.
    pub session: Option<SessionId>,
    /// Free-form detail (rule id, tuple count, …).
    pub detail: String,
}

/// A bounded in-memory trace. Disabled (capacity 0) by default in the
/// runtimes; experiments that need a Figure-1 diagram enable it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    overflowed: bool,
}

impl Trace {
    /// A trace retaining at most `capacity` entries; later entries are
    /// counted but discarded.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            entries: Vec::new(),
            capacity,
            overflowed: false,
        }
    }

    /// True iff tracing is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an entry (no-op when disabled or full).
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled() {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.overflowed = true;
        }
    }

    /// Recorded entries, in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Whether entries were discarded.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Renders a Figure-1 style sequence diagram over the given columns.
    /// Nodes not listed are skipped (their messages are omitted).
    pub fn render_sequence_diagram(&self, columns: &[NodeId]) -> String {
        const COL_WIDTH: usize = 16;
        let mut out = String::new();
        // Header: `:A              :B              :C …`
        for n in columns {
            let label = format!(":{}", n.letter());
            let _ = write!(out, "{label:<COL_WIDTH$}");
        }
        out.push('\n');
        for _ in columns {
            let _ = write!(out, "{:<COL_WIDTH$}", "|");
        }
        out.push('\n');

        let pos = |n: NodeId| columns.iter().position(|c| *c == n);
        for e in &self.entries {
            let (Some(a), Some(b)) = (pos(e.from), pos(e.to)) else {
                continue;
            };
            let (lo, hi) = (a.min(b), a.max(b));
            let right = b >= a;
            // Build one text row: pipes in every column, an arrow spanning
            // lo..hi labelled with the kind.
            let mut row = vec![b' '; COL_WIDTH * columns.len()];
            for (i, _) in columns.iter().enumerate() {
                row[i * COL_WIDTH] = b'|';
            }
            let start = lo * COL_WIDTH;
            let end = hi * COL_WIDTH;
            if start == end {
                // Self-message: mark with `o`.
                row[start] = b'o';
            } else {
                for cell in row.iter_mut().take(end).skip(start + 1) {
                    *cell = b'-';
                }
                if right {
                    row[end] = b'>';
                    row[start] = b'|';
                } else {
                    row[start] = b'<';
                    row[end] = b'|';
                }
            }
            let mut line = String::from_utf8(row).expect("ascii");
            // Splice the label into the middle of the arrow.
            let label = if e.detail.is_empty() {
                e.kind.to_string()
            } else {
                format!("{} {}", e.kind, e.detail)
            };
            let span = end.saturating_sub(start);
            if span > label.len() + 2 {
                let at = start + 1 + (span - label.len()) / 2;
                line.replace_range(at..at + label.len(), &label);
            } else {
                let _ = write!(line, "  {label}");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        if self.overflowed {
            let _ = writeln!(out, "... (trace truncated)");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(from: u32, to: u32, kind: &'static str) -> TraceEntry {
        TraceEntry {
            at: SimTime(0),
            from: NodeId(from),
            to: NodeId(to),
            kind,
            session: None,
            detail: String::new(),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        assert!(!t.enabled());
        t.record(entry(0, 1, "Query"));
        assert!(t.entries().is_empty());
    }

    #[test]
    fn capacity_limits_and_flags_overflow() {
        let mut t = Trace::with_capacity(2);
        t.record(entry(0, 1, "a"));
        t.record(entry(1, 0, "b"));
        t.record(entry(0, 1, "c"));
        assert_eq!(t.entries().len(), 2);
        assert!(t.overflowed());
    }

    #[test]
    fn diagram_has_header_and_arrows() {
        let mut t = Trace::with_capacity(16);
        t.record(entry(0, 1, "requestNodes"));
        t.record(entry(1, 0, "Answer"));
        let d = t.render_sequence_diagram(&[NodeId(0), NodeId(1)]);
        assert!(d.starts_with(":A"));
        assert!(d.contains(":B"));
        assert!(d.contains("requestNodes"));
        assert!(d.contains("Answer"));
        assert!(d.contains('>'));
        assert!(d.contains('<'));
    }

    #[test]
    fn messages_to_unlisted_nodes_are_skipped() {
        let mut t = Trace::with_capacity(16);
        t.record(entry(0, 9, "x"));
        let d = t.render_sequence_diagram(&[NodeId(0), NodeId(1)]);
        assert!(!d.contains('x'));
    }

    #[test]
    fn long_span_centers_label() {
        let mut t = Trace::with_capacity(4);
        t.record(entry(0, 3, "Query"));
        let d = t.render_sequence_diagram(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!(d.contains("Query"));
        assert!(d.contains("--"));
    }
}
