//! Wire codec selection.
//!
//! Both runtimes carry protocol messages under one of two codecs: the
//! original JSON text encoding (the default — human-readable, and what
//! netfiles and the CLI keep speaking) or the compact binary encoding
//! built on the vendored `binpack` crate (varints, length-prefixed
//! strings, delta-packed columnar row blocks). The codec is a property of
//! the *transport*: [`crate::Simulator::set_codec`] /
//! [`crate::ThreadedNetwork::set_codec`] pick it, and every
//! [`crate::Wire::wire_size_with`] measurement and byte counter follows.
//!
//! This module also hosts the **encode-pass counter**, a thread-local
//! tally of full-message serialization walks. The runtimes measure each
//! message exactly once, at send, and carry the size on the envelope;
//! regression tests diff this counter around a run to prove the hot path
//! never re-serializes a message just to weigh it.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt;
use std::str::FromStr;

/// Which encoding protocol messages (and durable frames) travel in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Codec {
    /// JSON text — the default; byte-compatible with every artifact the
    /// repo produced before the binary codec existed.
    #[default]
    Json,
    /// Compact binary: varint/zigzag integers, length-prefixed strings,
    /// interned map keys, columnar delta row blocks.
    Binary,
}

impl Codec {
    /// Stable lowercase name, matching the CLI flag values.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Codec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(Codec::Json),
            "binary" => Ok(Codec::Binary),
            other => Err(format!("unknown codec `{other}` (expected json|binary)")),
        }
    }
}

thread_local! {
    /// Count of full-message encode walks on this thread. Thread-local
    /// because the simulator runs a whole network on one thread; tests
    /// running in parallel never see each other's counts.
    static ENCODE_PASSES: Cell<u64> = const { Cell::new(0) };
}

/// Registers one full serialization walk of a message. Called by every
/// codec-true size or encode routine on the message path.
pub fn note_encode_pass() {
    ENCODE_PASSES.with(|c| c.set(c.get() + 1));
}

/// Total encode passes on this thread so far. Diff around a run to count
/// serializations per message sent.
pub fn encode_passes() -> u64 {
    ENCODE_PASSES.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_round_trip() {
        for codec in [Codec::Json, Codec::Binary] {
            assert_eq!(codec.name().parse::<Codec>().unwrap(), codec);
            assert_eq!(codec.to_string(), codec.name());
        }
        assert!("protobuf".parse::<Codec>().is_err());
    }

    #[test]
    fn default_is_json() {
        assert_eq!(Codec::default(), Codec::Json);
    }

    #[test]
    fn serde_round_trip() {
        for codec in [Codec::Json, Codec::Binary] {
            let text = serde_json::to_string(&codec).unwrap();
            assert_eq!(serde_json::from_str::<Codec>(&text).unwrap(), codec);
        }
    }

    #[test]
    fn encode_pass_counter_counts() {
        let before = encode_passes();
        note_encode_pass();
        note_encode_pass();
        assert_eq!(encode_passes() - before, 2);
    }
}
