//! Fault injection for robustness testing.
//!
//! JXTA pipes — and both of our runtimes by default — deliver reliably. The
//! fault plan lets tests and the robustness experiments *break* that
//! assumption deliberately: random drops, random duplication, and scheduled
//! link outages. The protocol-level claims under test are:
//!
//! * duplication must not change results (handler idempotence);
//! * drops may prevent closure (liveness) but must never produce unsound
//!   data or a false `closed` state (safety).

use crate::message::SimTime;
use p2p_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled outage of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// Link source.
    pub from: NodeId,
    /// Link target.
    pub to: NodeId,
    /// Outage start (inclusive).
    pub start: SimTime,
    /// Outage end (exclusive).
    pub end: SimTime,
}

/// What the fault layer decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver exactly once.
    Deliver,
    /// Deliver twice (duplicate).
    Duplicate,
    /// Silently drop.
    Drop,
}

/// Deterministic (seeded) fault plan.
#[derive(Debug)]
pub struct FaultPlan {
    drop_percent: u8,
    duplicate_percent: u8,
    outages: Vec<LinkOutage>,
    rng: StdRng,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults at all (the default: reliable JXTA-like pipes).
    pub fn none() -> Self {
        FaultPlan {
            drop_percent: 0,
            duplicate_percent: 0,
            outages: Vec::new(),
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Random faults with the given percentages and seed.
    pub fn random(drop_percent: u8, duplicate_percent: u8, seed: u64) -> Self {
        FaultPlan {
            drop_percent: drop_percent.min(100),
            duplicate_percent: duplicate_percent.min(100),
            outages: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Adds a scheduled link outage.
    pub fn with_outage(mut self, outage: LinkOutage) -> Self {
        self.outages.push(outage);
        self
    }

    /// True iff the plan can never drop or duplicate anything.
    pub fn is_reliable(&self) -> bool {
        self.drop_percent == 0 && self.duplicate_percent == 0 && self.outages.is_empty()
    }

    /// Decides the fate of one message sent at `now` on `from → to`.
    pub fn decide(&mut self, from: NodeId, to: NodeId, now: SimTime) -> FaultDecision {
        for o in &self.outages {
            if o.from == from && o.to == to && now >= o.start && now < o.end {
                return FaultDecision::Drop;
            }
        }
        if self.drop_percent > 0 && self.rng.gen_range(0..100u8) < self.drop_percent {
            return FaultDecision::Drop;
        }
        if self.duplicate_percent > 0 && self.rng.gen_range(0..100u8) < self.duplicate_percent {
            return FaultDecision::Duplicate;
        }
        FaultDecision::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_always_delivers() {
        let mut p = FaultPlan::none();
        assert!(p.is_reliable());
        for _ in 0..100 {
            assert_eq!(
                p.decide(NodeId(0), NodeId(1), SimTime(0)),
                FaultDecision::Deliver
            );
        }
    }

    #[test]
    fn full_drop_plan_drops_everything() {
        let mut p = FaultPlan::random(100, 0, 7);
        for _ in 0..50 {
            assert_eq!(
                p.decide(NodeId(0), NodeId(1), SimTime(0)),
                FaultDecision::Drop
            );
        }
    }

    #[test]
    fn duplication_occurs_with_seeded_probability() {
        let mut p = FaultPlan::random(0, 50, 11);
        let mut dups = 0;
        for _ in 0..1_000 {
            if p.decide(NodeId(0), NodeId(1), SimTime(0)) == FaultDecision::Duplicate {
                dups += 1;
            }
        }
        assert!((350..650).contains(&dups), "dups={dups}");
    }

    #[test]
    fn outage_window_drops_only_inside() {
        let mut p = FaultPlan::none().with_outage(LinkOutage {
            from: NodeId(0),
            to: NodeId(1),
            start: SimTime(100),
            end: SimTime(200),
        });
        assert!(!p.is_reliable());
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), SimTime(50)),
            FaultDecision::Deliver
        );
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), SimTime(100)),
            FaultDecision::Drop
        );
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), SimTime(199)),
            FaultDecision::Drop
        );
        assert_eq!(
            p.decide(NodeId(0), NodeId(1), SimTime(200)),
            FaultDecision::Deliver
        );
        // Other direction unaffected.
        assert_eq!(
            p.decide(NodeId(1), NodeId(0), SimTime(150)),
            FaultDecision::Deliver
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mut a = FaultPlan::random(30, 30, 99);
        let mut b = FaultPlan::random(30, 30, 99);
        for _ in 0..200 {
            assert_eq!(
                a.decide(NodeId(0), NodeId(1), SimTime(0)),
                b.decide(NodeId(0), NodeId(1), SimTime(0))
            );
        }
    }
}
