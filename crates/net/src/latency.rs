//! Pluggable link-latency models for the discrete-event simulator.

use crate::message::SimTime;
use p2p_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Computes the delivery delay of a message. Implementations may be
/// stateful (seeded RNGs) but must be deterministic given their seed and the
/// call sequence.
pub trait LatencyModel: Send {
    /// Delay for a `size`-byte message on the link `from → to`.
    fn latency(&mut self, from: NodeId, to: NodeId, size: usize) -> SimTime;
}

/// Fixed delay on every link — the simplest model, used by most tests.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub SimTime);

impl LatencyModel for ConstantLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, _size: usize) -> SimTime {
        self.0
    }
}

/// Uniformly random delay in `[min, max]`, seeded — models jittery WAN links
/// while keeping runs reproducible.
#[derive(Debug)]
pub struct UniformLatency {
    min: SimTime,
    max: SimTime,
    rng: StdRng,
}

impl UniformLatency {
    /// Creates the model; `min ≤ max` is enforced by swapping.
    pub fn new(min: SimTime, max: SimTime, seed: u64) -> Self {
        let (min, max) = if min <= max { (min, max) } else { (max, min) };
        UniformLatency {
            min,
            max,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, _size: usize) -> SimTime {
        SimTime(self.rng.gen_range(self.min.0..=self.max.0))
    }
}

/// Base propagation delay plus a per-byte transmission cost — makes large
/// answers slower than small control messages, which is what gives the
/// delta-optimization experiment (E6) its time axis.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthLatency {
    /// Propagation delay added to every message.
    pub base: SimTime,
    /// Transmission cost in nanoseconds per byte (1000 ⇒ ~1 MB/s).
    pub nanos_per_byte: u64,
}

impl LatencyModel for BandwidthLatency {
    fn latency(&mut self, _from: NodeId, _to: NodeId, size: usize) -> SimTime {
        SimTime(self.base.0 + (size as u64 * self.nanos_per_byte) / 1_000)
    }
}

/// Per-link latency matrix with a default for unlisted links — models
/// heterogeneous networks (LAN clusters joined by WAN links, the deployment
/// JXTA targeted).
#[derive(Debug, Clone)]
pub struct PerEdgeLatency {
    default: SimTime,
    links: std::collections::BTreeMap<(NodeId, NodeId), SimTime>,
}

impl PerEdgeLatency {
    /// Creates the model with a default latency for unlisted links.
    pub fn new(default: SimTime) -> Self {
        PerEdgeLatency {
            default,
            links: std::collections::BTreeMap::new(),
        }
    }

    /// Sets one directed link's latency.
    pub fn set(mut self, from: NodeId, to: NodeId, latency: SimTime) -> Self {
        self.links.insert((from, to), latency);
        self
    }

    /// Sets both directions of a link.
    pub fn set_symmetric(self, a: NodeId, b: NodeId, latency: SimTime) -> Self {
        self.set(a, b, latency).set(b, a, latency)
    }
}

impl LatencyModel for PerEdgeLatency {
    fn latency(&mut self, from: NodeId, to: NodeId, _size: usize) -> SimTime {
        self.links.get(&(from, to)).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_everything() {
        let mut m = ConstantLatency(SimTime::from_millis(5));
        assert_eq!(m.latency(NodeId(0), NodeId(1), 10), SimTime::from_millis(5));
        assert_eq!(
            m.latency(NodeId(3), NodeId(2), 10_000),
            SimTime::from_millis(5)
        );
    }

    #[test]
    fn uniform_is_seeded_and_in_range() {
        let mut a = UniformLatency::new(SimTime(100), SimTime(200), 42);
        let mut b = UniformLatency::new(SimTime(100), SimTime(200), 42);
        for _ in 0..100 {
            let la = a.latency(NodeId(0), NodeId(1), 1);
            let lb = b.latency(NodeId(0), NodeId(1), 1);
            assert_eq!(la, lb);
            assert!((100..=200).contains(&la.0));
        }
    }

    #[test]
    fn uniform_swaps_reversed_bounds() {
        let mut m = UniformLatency::new(SimTime(200), SimTime(100), 1);
        let l = m.latency(NodeId(0), NodeId(1), 1);
        assert!((100..=200).contains(&l.0));
    }

    #[test]
    fn per_edge_overrides_and_defaults() {
        let mut m = PerEdgeLatency::new(SimTime::from_millis(1))
            .set(NodeId(0), NodeId(1), SimTime::from_millis(20))
            .set_symmetric(NodeId(2), NodeId(3), SimTime::from_millis(5));
        assert_eq!(m.latency(NodeId(0), NodeId(1), 0), SimTime::from_millis(20));
        // Reverse direction not set: default applies.
        assert_eq!(m.latency(NodeId(1), NodeId(0), 0), SimTime::from_millis(1));
        assert_eq!(m.latency(NodeId(2), NodeId(3), 0), SimTime::from_millis(5));
        assert_eq!(m.latency(NodeId(3), NodeId(2), 0), SimTime::from_millis(5));
        assert_eq!(m.latency(NodeId(7), NodeId(8), 0), SimTime::from_millis(1));
    }

    #[test]
    fn bandwidth_scales_with_size() {
        let mut m = BandwidthLatency {
            base: SimTime(50),
            nanos_per_byte: 1_000, // 1 µs per byte
        };
        assert_eq!(m.latency(NodeId(0), NodeId(1), 0).0, 50);
        assert_eq!(m.latency(NodeId(0), NodeId(1), 100).0, 150);
    }
}
