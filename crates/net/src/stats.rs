//! Network statistics — the transport half of the paper's "statistical
//! module" (Section 5: message counts, data volumes on pipes, per-kind
//! breakdowns; the query/update counters live in `p2p-core::stats`).

use crate::message::SimTime;
use crate::session::SessionId;
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Per-update-session transport counters (attribution of deliveries to the
/// session whose [`crate::Wire::session`] tag they carried).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionNetStats {
    /// Messages delivered for this session.
    pub messages: u64,
    /// Bytes delivered for this session.
    pub bytes: u64,
}

/// Per-node transport counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeNetStats {
    /// Messages sent by this node.
    pub sent: u64,
    /// Messages delivered to this node.
    pub received: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Sent-message counts per message kind.
    pub sent_by_kind: BTreeMap<String, u64>,
}

/// Whole-network transport counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Per-node counters.
    pub per_node: BTreeMap<NodeId, NodeNetStats>,
    /// Per-session counters, keyed by the session tag carried on delivered
    /// messages ([`crate::Wire::session`]); session-less control traffic is
    /// not attributed. In-memory only: JSON map keys must be scalars.
    #[serde(skip)]
    pub per_session: BTreeMap<SessionId, SessionNetStats>,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Total bytes delivered.
    pub total_bytes: u64,
    /// Messages dropped by fault injection (or addressed to a crashed or
    /// unknown node).
    pub dropped: u64,
    /// Extra deliveries due to duplication.
    pub duplicated: u64,
    /// Peer crashes executed from the churn plan.
    pub peer_crashes: u64,
    /// Peer restarts executed from the churn plan.
    pub peer_restarts: u64,
    /// Fan-out sends that reused an already-serialized shared payload
    /// instead of encoding their own copy ([`crate::Context::send_to_many`]).
    /// `encode passes == sends − shared_payload_sends` is the invariant the
    /// codec regression test checks.
    #[serde(default)]
    pub shared_payload_sends: u64,
    /// Sends whose target peer lives on a different shard than the sender
    /// ([`crate::sharded::ShardedNetwork`]): these pay a channel hop. The
    /// locality metric a [`crate::sharded::ShardPlacement`] policy is
    /// judged by; zero under the other runtimes.
    #[serde(default)]
    pub cross_shard_sends: u64,
    /// Virtual (or wall) time at which the run went quiescent.
    pub finished_at: SimTime,
}

impl NetStats {
    /// Records one send of `size` bytes and kind `kind` by `from`.
    pub fn record_send(&mut self, from: NodeId, kind: &'static str, size: usize) {
        let e = self.per_node.entry(from).or_default();
        e.sent += 1;
        e.bytes_sent += size as u64;
        // Probe with the &str first: the kind is almost always already
        // present, and the owned key should only be allocated the first time
        // a node sends that kind — not once per send.
        match e.sent_by_kind.get_mut(kind) {
            Some(count) => *count += 1,
            None => {
                e.sent_by_kind.insert(kind.to_string(), 1);
            }
        }
    }

    /// Records one delivery of `size` bytes to `to`, attributed to
    /// `session` when the message carried a session tag ([`crate::Wire::session`]).
    /// Attribution is part of this call on purpose: a delivery site that
    /// could forget it would silently zero every per-session counter.
    pub fn record_delivery(&mut self, to: NodeId, size: usize, session: Option<SessionId>) {
        let e = self.per_node.entry(to).or_default();
        e.received += 1;
        e.bytes_received += size as u64;
        self.total_messages += 1;
        self.total_bytes += size as u64;
        if let Some(sid) = session {
            let s = self.per_session.entry(sid).or_default();
            s.messages += 1;
            s.bytes += size as u64;
        }
    }

    /// This session's delivered-traffic counters (zero if never seen).
    pub fn session(&self, sid: SessionId) -> SessionNetStats {
        self.per_session.get(&sid).copied().unwrap_or_default()
    }

    /// Merges another stats object into this one (used by the threaded
    /// runtime, where each worker keeps local counters).
    pub fn merge(&mut self, other: &NetStats) {
        for (node, s) in &other.per_node {
            let e = self.per_node.entry(*node).or_default();
            e.sent += s.sent;
            e.received += s.received;
            e.bytes_sent += s.bytes_sent;
            e.bytes_received += s.bytes_received;
            for (k, v) in &s.sent_by_kind {
                *e.sent_by_kind.entry(k.clone()).or_default() += v;
            }
        }
        for (sid, s) in &other.per_session {
            let e = self.per_session.entry(*sid).or_default();
            e.messages += s.messages;
            e.bytes += s.bytes;
        }
        self.total_messages += other.total_messages;
        self.total_bytes += other.total_bytes;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.peer_crashes += other.peer_crashes;
        self.peer_restarts += other.peer_restarts;
        self.shared_payload_sends += other.shared_payload_sends;
        self.cross_shard_sends += other.cross_shard_sends;
        if other.finished_at > self.finished_at {
            self.finished_at = other.finished_at;
        }
    }

    /// Sum of one kind's sends across all nodes.
    pub fn sent_of_kind(&self, kind: &str) -> u64 {
        self.per_node
            .values()
            .map(|n| n.sent_by_kind.get(kind).copied().unwrap_or(0))
            .sum()
    }

    /// The node that received the most bytes — the hot spot; the centralized
    /// baseline concentrates nearly all traffic here while the distributed
    /// algorithm spreads it (experiment E11).
    pub fn max_node_bytes_received(&self) -> u64 {
        self.per_node
            .values()
            .map(|n| n.bytes_received)
            .max()
            .unwrap_or(0)
    }

    /// Resets all counters — the super-peer's "reset statistics at all
    /// peers" command.
    pub fn reset(&mut self) {
        *self = NetStats::default();
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "messages={} bytes={} dropped={} duplicated={} finished_at={}",
            self.total_messages, self.total_bytes, self.dropped, self.duplicated, self.finished_at
        )?;
        for (node, s) in &self.per_node {
            writeln!(
                f,
                "  {node}: sent={} recv={} bytes_out={} bytes_in={}",
                s.sent, s.received, s.bytes_sent, s.bytes_received
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = NetStats::default();
        s.record_send(NodeId(0), "Query", 100);
        s.record_delivery(NodeId(1), 100, None);
        s.record_send(NodeId(1), "Answer", 300);
        s.record_delivery(NodeId(0), 300, None);
        assert_eq!(s.total_messages, 2);
        assert_eq!(s.total_bytes, 400);
        assert_eq!(s.per_node[&NodeId(0)].sent, 1);
        assert_eq!(s.per_node[&NodeId(0)].bytes_received, 300);
        assert_eq!(s.sent_of_kind("Query"), 1);
        assert_eq!(s.sent_of_kind("Answer"), 1);
        assert_eq!(s.sent_of_kind("nope"), 0);
    }

    #[test]
    fn session_attribution_counts_and_merges() {
        let sid = SessionId::new(NodeId(0), 1);
        let other = SessionId::new(NodeId(1), 2);
        let mut s = NetStats::default();
        s.record_delivery(NodeId(1), 100, Some(sid));
        s.record_delivery(NodeId(1), 50, None); // control traffic: unattributed
        assert_eq!(s.session(sid).messages, 1);
        assert_eq!(s.session(sid).bytes, 100);
        assert_eq!(s.session(other), SessionNetStats::default());
        let mut b = NetStats::default();
        b.record_delivery(NodeId(1), 10, Some(sid));
        b.record_delivery(NodeId(1), 20, Some(other));
        s.merge(&b);
        assert_eq!(s.session(sid).messages, 2);
        assert_eq!(s.session(sid).bytes, 110);
        assert_eq!(s.session(other).bytes, 20);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::default();
        a.record_send(NodeId(0), "Query", 10);
        a.record_delivery(NodeId(1), 10, None);
        let mut b = NetStats::default();
        b.record_send(NodeId(0), "Query", 20);
        b.record_delivery(NodeId(1), 20, None);
        b.finished_at = SimTime(99);
        a.merge(&b);
        assert_eq!(a.per_node[&NodeId(0)].sent, 2);
        assert_eq!(a.total_bytes, 30);
        assert_eq!(a.finished_at, SimTime(99));
        assert_eq!(a.sent_of_kind("Query"), 2);
    }

    #[test]
    fn hot_spot_detection() {
        let mut s = NetStats::default();
        s.record_delivery(NodeId(0), 1_000, None);
        s.record_delivery(NodeId(1), 10, None);
        assert_eq!(s.max_node_bytes_received(), 1_000);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = NetStats::default();
        s.record_send(NodeId(0), "Query", 10);
        s.reset();
        assert_eq!(s, NetStats::default());
    }
}
