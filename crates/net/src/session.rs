//! Update-session identity.
//!
//! An update session is a diffusing computation initiated by one node (the
//! session's *root*); any number of sessions from any initiators may run
//! interleaved in one network run. A session is identified network-wide by
//! the pair `(root, epoch)`: the root's node id plus a driver-assigned epoch
//! counter, so two sessions never collide even when several roots (or the
//! same root, across re-drives) initiate concurrently.
//!
//! The type lives in `p2p-net` because the transport layer attributes
//! traffic to sessions — trace entries and per-session message/byte
//! counters — through [`crate::Wire::session`], while staying generic over
//! the protocol's message type.

use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Network-wide identity of one update session: the initiating node and the
/// driver-assigned epoch. Ordered (root first) so same-root sessions sort by
/// epoch — the order supersession logic relies on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SessionId {
    /// The node that initiated (and roots) the session's diffusing
    /// computation.
    pub root: NodeId,
    /// Driver-assigned epoch, unique per root (strictly increasing across a
    /// root's sessions; re-drives of a broken session use a fresh epoch).
    pub epoch: u64,
}

impl SessionId {
    /// Constructs a session id.
    pub fn new(root: NodeId, epoch: u64) -> Self {
        SessionId { root, epoch }
    }

    /// True iff `other` is a newer session of the same root — the
    /// supersession relation: a message of a newer same-root session retires
    /// any state still held for this one.
    pub fn superseded_by(&self, other: &SessionId) -> bool {
        self.root == other.root && self.epoch < other.epoch
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.root, self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_root_then_epoch() {
        let a1 = SessionId::new(NodeId(0), 1);
        let a2 = SessionId::new(NodeId(0), 2);
        let b1 = SessionId::new(NodeId(1), 1);
        assert!(a1 < a2);
        assert!(a2 < b1);
    }

    #[test]
    fn supersession_is_same_root_newer_epoch() {
        let a1 = SessionId::new(NodeId(0), 1);
        let a2 = SessionId::new(NodeId(0), 2);
        let b2 = SessionId::new(NodeId(1), 2);
        assert!(a1.superseded_by(&a2));
        assert!(!a2.superseded_by(&a1));
        assert!(!a1.superseded_by(&b2));
        assert!(!a1.superseded_by(&a1));
    }

    #[test]
    fn display_is_root_hash_epoch() {
        assert_eq!(SessionId::new(NodeId(2), 7).to_string(), "C#7");
    }

    #[test]
    fn serde_round_trip() {
        let s = SessionId::new(NodeId(3), 42);
        let text = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<SessionId>(&text).unwrap(), s);
    }
}
