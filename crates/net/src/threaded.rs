//! Real-thread runtime: one OS thread per peer, crossbeam channels as pipes.
//!
//! This is the "asynchronous model of communications" of the paper running on
//! actual parallelism. Termination is detected with an outstanding-message
//! counter: it is incremented *before* every send and decremented only after
//! the receiving handler (including all sends it performs) completes, so the
//! counter reads zero exactly when no message is in flight or being
//! processed — at which point no handler can ever run again and the network
//! is quiescent.
//!
//! A panicking peer handler does **not** abort the run: the worker catches
//! the panic, keeps draining (and dropping) its queue so the outstanding
//! counter still reaches zero, and [`ThreadedNetwork::run`] reports a
//! structured [`WorkerPanic`] naming the node instead of propagating the
//! panic into the driver thread.
//!
//! Unlike the simulator this runtime is *not* deterministic; tests compare
//! its results with simulator runs modulo null renaming.

use crate::codec::Codec;
use crate::message::{SimTime, Wire};
use crate::sim::{Context, Peer};
use crate::stats::NetStats;
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

enum Work<M> {
    Msg {
        from: NodeId,
        msg_id: u64,
        msg: M,
        /// Wire size under the run's codec, measured once by the sender.
        size: usize,
    },
    Stop,
}

/// A peer handler panicked during a threaded run: which node, and the
/// panic payload (stringified). The rest of the network was drained to
/// quiescence before this was reported, so no worker thread is leaked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The node whose handler panicked (first panic wins if several did).
    pub node: NodeId,
    /// The panic payload, if it was a string (the common `panic!` case).
    pub payload: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer {} panicked: {}", self.node, self.payload)
    }
}

impl std::error::Error for WorkerPanic {}

/// Default [`ThreadedNetwork`] peer cap: one OS thread per peer stops being
/// a sane execution model well before the simulator's 10k-peer scales.
pub const DEFAULT_THREADED_PEER_CAP: usize = 1024;

/// Failure modes of a [`ThreadedNetwork`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadedError {
    /// The network holds more peers than the configured cap. One OS thread
    /// per peer would exhaust memory or the thread limit long before the
    /// run finished — this is a typed refusal instead of an OOM kill.
    TooManyPeers {
        /// Registered peer count.
        peers: usize,
        /// The configured cap ([`ThreadedNetwork::set_peer_cap`]).
        cap: usize,
    },
    /// A peer handler panicked (the network was drained first).
    Panic(WorkerPanic),
}

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::TooManyPeers { peers, cap } => write!(
                f,
                "threaded runtime refuses {peers} peers (one OS thread each; cap {cap}): \
                 use the sharded runtime (`ShardedNetwork` / `--runtime sharded`) for large networks"
            ),
            ThreadedError::Panic(p) => p.fmt(f),
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<WorkerPanic> for ThreadedError {
    fn from(p: WorkerPanic) -> Self {
        ThreadedError::Panic(p)
    }
}

pub(crate) fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A network of peers executed on real threads.
pub struct ThreadedNetwork<M: Wire, P: Peer<M> + 'static> {
    peers: Vec<(NodeId, P)>,
    codec: Codec,
    peer_cap: usize,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Wire, P: Peer<M> + 'static> Default for ThreadedNetwork<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire, P: Peer<M> + 'static> ThreadedNetwork<M, P> {
    /// An empty network.
    pub fn new() -> Self {
        ThreadedNetwork {
            peers: Vec::new(),
            codec: Codec::default(),
            peer_cap: DEFAULT_THREADED_PEER_CAP,
            _marker: std::marker::PhantomData,
        }
    }

    /// Overrides the peer cap ([`DEFAULT_THREADED_PEER_CAP`]). Raising it
    /// is on the caller: every peer is a real OS thread.
    pub fn set_peer_cap(&mut self, cap: usize) {
        self.peer_cap = cap;
    }

    /// Registers a peer.
    pub fn add_peer(&mut self, id: NodeId, peer: P) {
        self.peers.push((id, peer));
    }

    /// Selects the wire codec messages are measured in.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// Runs the network to quiescence: delivers `initial` messages, lets the
    /// peers converse, stops every thread once the outstanding counter drops
    /// to zero. Returns the peers (with their final state) and merged
    /// transport stats — or a [`ThreadedError`]: the first peer whose
    /// handler panicked, or a typed refusal when the peer count exceeds
    /// the cap (one OS thread per peer does not survive large networks —
    /// that is what [`crate::sharded::ShardedNetwork`] is for).
    #[allow(clippy::type_complexity)]
    pub fn run(
        self,
        initial: Vec<(NodeId, NodeId, M)>,
    ) -> Result<(Vec<(NodeId, P)>, NetStats), ThreadedError> {
        if self.peers.len() > self.peer_cap {
            return Err(ThreadedError::TooManyPeers {
                peers: self.peers.len(),
                cap: self.peer_cap,
            });
        }
        let codec = self.codec;
        let started = Instant::now();
        let outstanding = Arc::new(AtomicI64::new(0));
        let msg_ids = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let first_panic: Arc<Mutex<Option<WorkerPanic>>> = Arc::new(Mutex::new(None));
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();

        let mut senders: BTreeMap<NodeId, crossbeam::channel::Sender<Work<M>>> = BTreeMap::new();
        let mut receivers: Vec<(NodeId, P, crossbeam::channel::Receiver<Work<M>>)> = Vec::new();
        for (id, peer) in self.peers {
            let (tx, rx) = crossbeam::channel::unbounded::<Work<M>>();
            senders.insert(id, tx);
            receivers.push((id, peer, rx));
        }
        let senders = Arc::new(senders);

        // Count the initial messages before any is sent, so the counter can
        // never transiently read zero while work remains.
        let valid_initial: Vec<_> = initial
            .into_iter()
            .filter(|(_, to, _)| senders.contains_key(to))
            .collect();
        outstanding.fetch_add(valid_initial.len() as i64, Ordering::SeqCst);
        if valid_initial.is_empty() {
            // Nothing to do: skip thread spin-up entirely.
            let peers = receivers.into_iter().map(|(id, p, _)| (id, p)).collect();
            return Ok((peers, NetStats::default()));
        }

        let mut handles = Vec::new();
        for (id, mut peer, rx) in receivers {
            let senders = Arc::clone(&senders);
            let outstanding = Arc::clone(&outstanding);
            let msg_ids = Arc::clone(&msg_ids);
            let first_panic = Arc::clone(&first_panic);
            let done_tx = done_tx.clone();
            let handle = std::thread::spawn(move || {
                let mut stats = NetStats::default();
                let epoch = Instant::now();
                // Set when this peer's handler panicked: the worker then
                // keeps draining its channel — dropping the messages but
                // still decrementing the outstanding counter — so the rest
                // of the network reaches quiescence instead of deadlocking
                // on messages queued to a dead node.
                let mut poisoned = false;
                while let Ok(work) = rx.recv() {
                    match work {
                        Work::Stop => break,
                        Work::Msg {
                            from,
                            msg_id,
                            msg,
                            size,
                        } => {
                            if poisoned {
                                stats.dropped += 1;
                                if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    let _ = done_tx.send(());
                                }
                                continue;
                            }
                            stats.record_delivery(id, size, msg.session());
                            let now = SimTime(epoch.elapsed().as_micros() as u64);
                            let mut ctx = Context::new(now, id);
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                peer.on_envelope(from, msg_id, msg, &mut ctx)
                            }));
                            if let Err(panic) = outcome {
                                poisoned = true;
                                let mut slot = first_panic.lock().expect("panic slot");
                                if slot.is_none() {
                                    *slot = Some(WorkerPanic {
                                        node: id,
                                        payload: payload_string(panic.as_ref()),
                                    });
                                }
                            }
                            for out in ctx.take_outgoing() {
                                let osize = out.msg.wire_size_with(codec);
                                stats.record_send(id, out.msg.kind(), osize);
                                // Workers ship owned messages across channels;
                                // a fan-out's last reference moves, earlier
                                // ones clone.
                                let owned = std::sync::Arc::try_unwrap(out.msg)
                                    .unwrap_or_else(|shared| (*shared).clone());
                                if let Some(tx) = senders.get(&out.to) {
                                    outstanding.fetch_add(1, Ordering::SeqCst);
                                    let out_id = msg_ids.fetch_add(1, Ordering::Relaxed);
                                    if tx
                                        .send(Work::Msg {
                                            from: id,
                                            msg_id: out_id,
                                            msg: owned,
                                            size: osize,
                                        })
                                        .is_err()
                                    {
                                        outstanding.fetch_sub(1, Ordering::SeqCst);
                                    }
                                } else {
                                    stats.dropped += 1;
                                }
                            }
                            if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                                let _ = done_tx.send(());
                            }
                        }
                    }
                }
                (id, peer, stats)
            });
            handles.push((id, handle));
        }

        // Deliver the initial messages.
        let mut stats = NetStats::default();
        for (from, to, msg) in valid_initial {
            let size = msg.wire_size_with(codec);
            stats.record_send(from, msg.kind(), size);
            let msg_id = msg_ids.fetch_add(1, Ordering::Relaxed);
            senders[&to]
                .send(Work::Msg {
                    from,
                    msg_id,
                    msg,
                    size,
                })
                .expect("worker alive at startup");
        }

        // Wait for quiescence. Once the counter hits zero it can never grow
        // again (growth requires a running handler, which requires an
        // outstanding message), so a single confirmation suffices.
        loop {
            done_rx.recv().expect("workers hold the sender");
            if outstanding.load(Ordering::SeqCst) == 0 {
                break;
            }
        }
        for tx in senders.values() {
            let _ = tx.send(Work::Stop);
        }
        let mut peers = Vec::new();
        for (id, h) in handles {
            match h.join() {
                Ok((id, peer, worker_stats)) => {
                    stats.merge(&worker_stats);
                    peers.push((id, peer));
                }
                Err(panic) => {
                    // Handlers panic inside catch_unwind, so a dead thread
                    // means the worker loop itself failed; report it like a
                    // handler panic rather than aborting the driver.
                    let mut slot = first_panic.lock().expect("panic slot");
                    if slot.is_none() {
                        *slot = Some(WorkerPanic {
                            node: id,
                            payload: payload_string(panic.as_ref()),
                        });
                    }
                }
            }
        }
        if let Some(panic) = first_panic.lock().expect("panic slot").take() {
            return Err(ThreadedError::Panic(panic));
        }
        peers.sort_by_key(|(id, _)| *id);
        stats.finished_at = SimTime(started.elapsed().as_micros() as u64);
        Ok((peers, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Wire for Token {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "Token"
        }
    }

    #[derive(Debug)]
    struct RingPeer {
        next: NodeId,
        seen: u32,
    }

    impl Peer<Token> for RingPeer {
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }
    }

    #[test]
    fn token_ring_quiesces() {
        let n = 5u32;
        let mut net = ThreadedNetwork::new();
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                RingPeer {
                    next: NodeId((i + 1) % n),
                    seen: 0,
                },
            );
        }
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(24))]).unwrap();
        let total_seen: u32 = peers.iter().map(|(_, p)| p.seen).sum();
        assert_eq!(total_seen, 25);
        assert_eq!(stats.total_messages, 25);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let mut net: ThreadedNetwork<Token, RingPeer> = ThreadedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (peers, stats) = net.run(vec![]).unwrap();
        assert_eq!(peers.len(), 1);
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn initial_message_to_unknown_node_is_skipped() {
        let mut net: ThreadedNetwork<Token, RingPeer> = ThreadedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (_, stats) = net.run(vec![(NodeId(0), NodeId(42), Token(1))]).unwrap();
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn fan_out_across_many_threads() {
        struct Hub {
            workers: Vec<NodeId>,
            acks: u32,
        }
        #[derive(Debug, Clone)]
        enum Msg {
            Go,
            Work(#[allow(dead_code)] u32),
            Ack,
        }
        impl Wire for Msg {
            fn wire_size(&self) -> usize {
                4
            }
            fn kind(&self) -> &'static str {
                match self {
                    Msg::Go => "Go",
                    Msg::Work(_) => "Work",
                    Msg::Ack => "Ack",
                }
            }
        }
        enum NodeKind {
            Hub(Hub),
            Worker,
        }
        impl Peer<Msg> for NodeKind {
            fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<Msg>) {
                match (self, msg) {
                    (NodeKind::Hub(h), Msg::Go) => {
                        for w in &h.workers {
                            ctx.send(*w, Msg::Work(3));
                        }
                    }
                    (NodeKind::Hub(h), Msg::Ack) => h.acks += 1,
                    (NodeKind::Worker, Msg::Work(_)) => ctx.send(from, Msg::Ack),
                    _ => {}
                }
            }
        }
        let mut net = ThreadedNetwork::new();
        let workers: Vec<NodeId> = (1..=8).map(NodeId).collect();
        net.add_peer(
            NodeId(0),
            NodeKind::Hub(Hub {
                workers: workers.clone(),
                acks: 0,
            }),
        );
        for w in workers {
            net.add_peer(w, NodeKind::Worker);
        }
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Msg::Go)]).unwrap();
        match &peers[0].1 {
            NodeKind::Hub(h) => assert_eq!(h.acks, 8),
            _ => unreachable!(),
        }
        assert_eq!(stats.total_messages, 17); // Go + 8 Work + 8 Ack
        assert_eq!(stats.sent_of_kind("Work"), 8);
    }

    #[test]
    fn panicking_peer_is_a_structured_error_not_an_abort() {
        // Node 2 panics on its first message; nodes keep forwarding tokens
        // at it afterwards. The run must drain (no deadlock on messages
        // queued to the dead node) and name the panicking peer.
        #[derive(Debug)]
        struct Bomb {
            next: NodeId,
            armed: bool,
        }
        impl Peer<Token> for Bomb {
            fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
                if self.armed {
                    panic!("boom at token {}", msg.0);
                }
                if msg.0 > 0 {
                    ctx.send(self.next, Token(msg.0 - 1));
                }
            }
        }
        let n = 4u32;
        let mut net = ThreadedNetwork::new();
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                Bomb {
                    next: NodeId((i + 1) % n),
                    armed: i == 2,
                },
            );
        }
        let err = net
            .run(vec![(NodeId(0), NodeId(0), Token(24))])
            .unwrap_err();
        let ThreadedError::Panic(err) = err else {
            panic!("expected a panic, got {err}");
        };
        assert_eq!(err.node, NodeId(2));
        assert!(err.payload.contains("boom"), "payload: {}", err.payload);
        assert!(err.to_string().contains("peer C"), "display: {err}");
    }

    #[test]
    fn peer_cap_is_a_typed_refusal_pointing_at_sharded() {
        let mut net = ThreadedNetwork::new();
        net.set_peer_cap(4);
        for i in 0..5u32 {
            net.add_peer(
                NodeId(i),
                RingPeer {
                    next: NodeId((i + 1) % 5),
                    seen: 0,
                },
            );
        }
        let err = net.run(vec![(NodeId(0), NodeId(0), Token(1))]).unwrap_err();
        assert_eq!(err, ThreadedError::TooManyPeers { peers: 5, cap: 4 });
        assert!(err.to_string().contains("sharded"), "display: {err}");
    }

    #[test]
    fn default_peer_cap_admits_small_networks() {
        // The default cap must not get in the way of every existing test
        // and experiment that runs well under a thousand peers.
        let net = ring_net(8);
        assert!(net.run(vec![(NodeId(0), NodeId(0), Token(7))]).is_ok());
    }

    fn ring_net(n: u32) -> ThreadedNetwork<Token, RingPeer> {
        let mut net = ThreadedNetwork::new();
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                RingPeer {
                    next: NodeId((i + 1) % n),
                    seen: 0,
                },
            );
        }
        net
    }
}
