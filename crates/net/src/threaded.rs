//! Real-thread runtime: one OS thread per peer, crossbeam channels as pipes.
//!
//! This is the "asynchronous model of communications" of the paper running on
//! actual parallelism. Termination is detected with an outstanding-message
//! counter: it is incremented *before* every send and decremented only after
//! the receiving handler (including all sends it performs) completes, so the
//! counter reads zero exactly when no message is in flight or being
//! processed — at which point no handler can ever run again and the network
//! is quiescent.
//!
//! Unlike the simulator this runtime is *not* deterministic; tests compare
//! its results with simulator runs modulo null renaming.

use crate::message::{SimTime, Wire};
use crate::sim::{Context, Peer};
use crate::stats::NetStats;
use p2p_topology::NodeId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

enum Work<M> {
    Msg { from: NodeId, msg_id: u64, msg: M },
    Stop,
}

/// A network of peers executed on real threads.
pub struct ThreadedNetwork<M: Wire, P: Peer<M> + 'static> {
    peers: Vec<(NodeId, P)>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Wire, P: Peer<M> + 'static> Default for ThreadedNetwork<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire, P: Peer<M> + 'static> ThreadedNetwork<M, P> {
    /// An empty network.
    pub fn new() -> Self {
        ThreadedNetwork {
            peers: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers a peer.
    pub fn add_peer(&mut self, id: NodeId, peer: P) {
        self.peers.push((id, peer));
    }

    /// Runs the network to quiescence: delivers `initial` messages, lets the
    /// peers converse, stops every thread once the outstanding counter drops
    /// to zero. Returns the peers (with their final state), merged transport
    /// stats, and the wall-clock duration.
    pub fn run(self, initial: Vec<(NodeId, NodeId, M)>) -> (Vec<(NodeId, P)>, NetStats) {
        let started = Instant::now();
        let outstanding = Arc::new(AtomicI64::new(0));
        let msg_ids = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<()>();

        let mut senders: BTreeMap<NodeId, crossbeam::channel::Sender<Work<M>>> = BTreeMap::new();
        let mut receivers: Vec<(NodeId, P, crossbeam::channel::Receiver<Work<M>>)> = Vec::new();
        for (id, peer) in self.peers {
            let (tx, rx) = crossbeam::channel::unbounded::<Work<M>>();
            senders.insert(id, tx);
            receivers.push((id, peer, rx));
        }
        let senders = Arc::new(senders);

        // Count the initial messages before any is sent, so the counter can
        // never transiently read zero while work remains.
        let valid_initial: Vec<_> = initial
            .into_iter()
            .filter(|(_, to, _)| senders.contains_key(to))
            .collect();
        outstanding.fetch_add(valid_initial.len() as i64, Ordering::SeqCst);
        if valid_initial.is_empty() {
            // Nothing to do: skip thread spin-up entirely.
            let peers = receivers.into_iter().map(|(id, p, _)| (id, p)).collect();
            return (peers, NetStats::default());
        }

        let mut handles = Vec::new();
        for (id, mut peer, rx) in receivers {
            let senders = Arc::clone(&senders);
            let outstanding = Arc::clone(&outstanding);
            let msg_ids = Arc::clone(&msg_ids);
            let done_tx = done_tx.clone();
            let handle = std::thread::spawn(move || {
                let mut stats = NetStats::default();
                let epoch = Instant::now();
                while let Ok(work) = rx.recv() {
                    match work {
                        Work::Stop => break,
                        Work::Msg { from, msg_id, msg } => {
                            let size = msg.wire_size();
                            stats.record_delivery(id, size, msg.session());
                            let now = SimTime(epoch.elapsed().as_micros() as u64);
                            let mut ctx = Context::new(now, id);
                            peer.on_envelope(from, msg_id, msg, &mut ctx);
                            for out in ctx.take_outgoing() {
                                let osize = out.msg.wire_size();
                                stats.record_send(id, out.msg.kind(), osize);
                                if let Some(tx) = senders.get(&out.to) {
                                    outstanding.fetch_add(1, Ordering::SeqCst);
                                    let out_id = msg_ids.fetch_add(1, Ordering::Relaxed);
                                    if tx
                                        .send(Work::Msg {
                                            from: id,
                                            msg_id: out_id,
                                            msg: out.msg,
                                        })
                                        .is_err()
                                    {
                                        outstanding.fetch_sub(1, Ordering::SeqCst);
                                    }
                                } else {
                                    stats.dropped += 1;
                                }
                            }
                            if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                                let _ = done_tx.send(());
                            }
                        }
                    }
                }
                (id, peer, stats)
            });
            handles.push(handle);
        }

        // Deliver the initial messages.
        let mut stats = NetStats::default();
        for (from, to, msg) in valid_initial {
            stats.record_send(from, msg.kind(), msg.wire_size());
            let msg_id = msg_ids.fetch_add(1, Ordering::Relaxed);
            senders[&to]
                .send(Work::Msg { from, msg_id, msg })
                .expect("worker alive at startup");
        }

        // Wait for quiescence. Once the counter hits zero it can never grow
        // again (growth requires a running handler, which requires an
        // outstanding message), so a single confirmation suffices.
        loop {
            done_rx.recv().expect("workers hold the sender");
            if outstanding.load(Ordering::SeqCst) == 0 {
                break;
            }
        }
        for tx in senders.values() {
            let _ = tx.send(Work::Stop);
        }
        let mut peers = Vec::new();
        for h in handles {
            let (id, peer, worker_stats) = h.join().expect("worker panicked");
            stats.merge(&worker_stats);
            peers.push((id, peer));
        }
        peers.sort_by_key(|(id, _)| *id);
        stats.finished_at = SimTime(started.elapsed().as_micros() as u64);
        (peers, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Wire for Token {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "Token"
        }
    }

    struct RingPeer {
        next: NodeId,
        seen: u32,
    }

    impl Peer<Token> for RingPeer {
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }
    }

    #[test]
    fn token_ring_quiesces() {
        let n = 5u32;
        let mut net = ThreadedNetwork::new();
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                RingPeer {
                    next: NodeId((i + 1) % n),
                    seen: 0,
                },
            );
        }
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(24))]);
        let total_seen: u32 = peers.iter().map(|(_, p)| p.seen).sum();
        assert_eq!(total_seen, 25);
        assert_eq!(stats.total_messages, 25);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let mut net: ThreadedNetwork<Token, RingPeer> = ThreadedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (peers, stats) = net.run(vec![]);
        assert_eq!(peers.len(), 1);
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn initial_message_to_unknown_node_is_skipped() {
        let mut net: ThreadedNetwork<Token, RingPeer> = ThreadedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (_, stats) = net.run(vec![(NodeId(0), NodeId(42), Token(1))]);
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn fan_out_across_many_threads() {
        struct Hub {
            workers: Vec<NodeId>,
            acks: u32,
        }
        #[derive(Debug, Clone)]
        enum Msg {
            Go,
            Work(#[allow(dead_code)] u32),
            Ack,
        }
        impl Wire for Msg {
            fn wire_size(&self) -> usize {
                4
            }
            fn kind(&self) -> &'static str {
                match self {
                    Msg::Go => "Go",
                    Msg::Work(_) => "Work",
                    Msg::Ack => "Ack",
                }
            }
        }
        enum NodeKind {
            Hub(Hub),
            Worker,
        }
        impl Peer<Msg> for NodeKind {
            fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<Msg>) {
                match (self, msg) {
                    (NodeKind::Hub(h), Msg::Go) => {
                        for w in &h.workers {
                            ctx.send(*w, Msg::Work(3));
                        }
                    }
                    (NodeKind::Hub(h), Msg::Ack) => h.acks += 1,
                    (NodeKind::Worker, Msg::Work(_)) => ctx.send(from, Msg::Ack),
                    _ => {}
                }
            }
        }
        let mut net = ThreadedNetwork::new();
        let workers: Vec<NodeId> = (1..=8).map(NodeId).collect();
        net.add_peer(
            NodeId(0),
            NodeKind::Hub(Hub {
                workers: workers.clone(),
                acks: 0,
            }),
        );
        for w in workers {
            net.add_peer(w, NodeKind::Worker);
        }
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Msg::Go)]);
        match &peers[0].1 {
            NodeKind::Hub(h) => assert_eq!(h.acks, 8),
            _ => unreachable!(),
        }
        assert_eq!(stats.total_messages, 17); // Go + 8 Work + 8 Ack
        assert_eq!(stats.sent_of_kind("Work"), 8);
    }
}
