//! Sharded worker-pool runtime: `T` shard threads multiplex `n/T` peers each.
//!
//! [`crate::threaded::ThreadedNetwork`] proves the protocol on real
//! parallelism but spawns one OS thread per peer, so it cannot even be
//! instantiated at the 10k-peer scales the simulator reaches. This runtime
//! keeps the thread count bounded: peers are *placed* on shards
//! ([`ShardPlacement`]), each shard thread owns a run queue of scheduled
//! peers, and idle shards steal runnable peers from their neighbours.
//!
//! Scheduling is the classic actor-mailbox protocol. Every peer owns a
//! FIFO inbox plus a `scheduled` flag; a sender enqueues the work item and
//! claims the flag with a `swap`, and exactly the claimant that observes
//! `false` makes the peer runnable. The thread that picks a runnable peer
//! up drains its inbox exclusively, so one peer never runs on two threads
//! at once and each sender→receiver pipe stays FIFO — the property the
//! protocol's completeness flags rely on.
//!
//! Message routing distinguishes home shards:
//!
//! * **intra-shard** sends short-circuit: the item goes straight into the
//!   target's inbox (payload still behind the sender's `Arc`, no channel
//!   hop) and the peer onto the home shard's run queue;
//! * **cross-shard** sends hand the `(from, msg)` item to the target's home
//!   shard over a crossbeam channel and are counted in
//!   [`NetStats::cross_shard_sends`] — the locality metric a placement
//!   policy is judged by. The split is decided by *home* shards, so the
//!   counter measures placement quality, not scheduling accidents.
//!
//! Termination generalizes the threaded runtime's outstanding-message
//! counter into a sharded quiescence barrier: the counter is incremented
//! before any item is enqueued (inbox or channel) and decremented only
//! after the receiving handler *and all sends it performed* completed, so
//! it reads zero exactly at the Dijkstra–Scholten fix-point — at which
//! moment no inbox, run queue or channel holds work and no handler is
//! running, and every shard thread exits. A panicking peer is poisoned:
//! its remaining and future items are dropped (still decrementing the
//! counter) so the barrier releases, and [`ShardedNetwork::run`] reports
//! the first [`WorkerPanic`] exactly like the threaded runtime.
//!
//! Statistics stay off the hot path: every shard thread keeps a private
//! [`NetStats`] merged once at quiescence.

use crate::codec::Codec;
use crate::message::{SimTime, Wire};
use crate::sim::{Context, Peer};
use crate::stats::NetStats;
use crate::threaded::WorkerPanic;
use p2p_topology::NodeId;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How peers are assigned to shard threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlacement {
    /// Peer `i` (in id order) goes to shard `i mod T`. Spreads load evenly
    /// regardless of topology; the default.
    #[default]
    RoundRobin,
    /// Contiguous blocks of the id order: peer `i` goes to shard
    /// `i·T / n`. Topology-aware for ring-like graphs, where neighbours
    /// have adjacent ids — almost every send becomes intra-shard.
    Blocks,
}

impl ShardPlacement {
    /// Shard of the `i`-th peer (id order) among `n` peers on `t` shards.
    fn shard_of(self, i: usize, n: usize, t: usize) -> usize {
        match self {
            ShardPlacement::RoundRobin => i % t,
            ShardPlacement::Blocks => i * t / n.max(1),
        }
    }
}

/// One queued delivery: the `(from, msg)` work item of a shard run queue.
struct WorkItem<M> {
    from: NodeId,
    msg_id: u64,
    msg: Arc<M>,
    /// Wire size under the run's codec, measured once by the sender.
    size: usize,
}

/// Cross-shard hand-off traffic.
enum ShardMsg<M> {
    /// A work item for the peer at cell index `cell` (homed on the
    /// receiving shard).
    Work { cell: u32, item: WorkItem<M> },
    /// Quiescence nudge: re-check the outstanding counter.
    Wake,
}

/// A peer's running state; behind a mutex that is uncontended by
/// construction (the `scheduled` flag admits one draining thread at a
/// time) but keeps the runtime within `forbid(unsafe_code)`.
struct CellState<P> {
    peer: P,
    /// Set when this peer's handler panicked: later items are dropped
    /// (still decrementing the outstanding counter) so the quiescence
    /// barrier releases instead of wedging on a dead peer.
    poisoned: bool,
}

/// One peer slot: identity, home shard, mailbox and claim flag.
struct PeerCell<M, P> {
    id: NodeId,
    home: usize,
    scheduled: AtomicBool,
    inbox: Mutex<VecDeque<WorkItem<M>>>,
    state: Mutex<CellState<P>>,
}

/// State shared by all shard threads.
struct Shared<M, P> {
    /// All peers, sorted by id (binary-searchable).
    cells: Vec<PeerCell<M, P>>,
    /// Per-shard run queues of runnable cell indices. The owning shard
    /// pops from the front; idle thieves pop from the back.
    runnable: Vec<Mutex<VecDeque<u32>>>,
    /// The sharded quiescence barrier: >0 while any item is queued or any
    /// handler is running; zero exactly at fix-point.
    outstanding: AtomicI64,
    msg_ids: AtomicU64,
    first_panic: Mutex<Option<WorkerPanic>>,
    codec: Codec,
    epoch: Instant,
}

impl<M, P> Shared<M, P> {
    fn cell_index(&self, id: NodeId) -> Option<u32> {
        self.cells
            .binary_search_by_key(&id, |c| c.id)
            .ok()
            .map(|i| i as u32)
    }
}

/// A network of peers multiplexed over a bounded pool of shard threads.
///
/// Runs the same [`Peer`] code as [`crate::Simulator`] and
/// [`crate::ThreadedNetwork`]; like the latter it is *not* deterministic,
/// and tests compare its fix-points with simulator runs modulo null
/// renaming.
pub struct ShardedNetwork<M: Wire, P: Peer<M> + 'static> {
    peers: Vec<(NodeId, P)>,
    codec: Codec,
    shards: usize,
    placement: ShardPlacement,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Wire + Sync, P: Peer<M> + 'static> Default for ShardedNetwork<M, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Wire + Sync, P: Peer<M> + 'static> ShardedNetwork<M, P> {
    /// An empty network with as many shards as the host has cores.
    pub fn new() -> Self {
        ShardedNetwork {
            peers: Vec::new(),
            codec: Codec::default(),
            shards: 0,
            placement: ShardPlacement::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers a peer.
    pub fn add_peer(&mut self, id: NodeId, peer: P) {
        self.peers.push((id, peer));
    }

    /// Selects the wire codec messages are measured in.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// Sets the shard-thread count. `0` (the default) means one shard per
    /// available core. Counts above the peer count are allowed — the extra
    /// shards simply own no peers and live off stolen work.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// Selects the peer→shard placement policy.
    pub fn set_placement(&mut self, placement: ShardPlacement) {
        self.placement = placement;
    }

    fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        }
    }

    /// Runs the network to quiescence: delivers `initial` messages, lets
    /// the peers converse across the shard pool, and joins every shard
    /// thread once the outstanding counter reads zero. Returns the peers
    /// (sorted by id, with their final state) and the merged transport
    /// stats — or the first [`WorkerPanic`].
    #[allow(clippy::type_complexity)]
    pub fn run(
        mut self,
        initial: Vec<(NodeId, NodeId, M)>,
    ) -> Result<(Vec<(NodeId, P)>, NetStats), WorkerPanic> {
        let started = Instant::now();
        let shards = self.effective_shards();
        self.peers.sort_by_key(|(id, _)| *id);
        let n = self.peers.len();
        let placement = self.placement;
        let cells: Vec<PeerCell<M, P>> = self
            .peers
            .into_iter()
            .enumerate()
            .map(|(i, (id, peer))| PeerCell {
                id,
                home: placement.shard_of(i, n, shards),
                scheduled: AtomicBool::new(false),
                inbox: Mutex::new(VecDeque::new()),
                state: Mutex::new(CellState {
                    peer,
                    poisoned: false,
                }),
            })
            .collect();
        let shared = Arc::new(Shared {
            cells,
            runnable: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            outstanding: AtomicI64::new(0),
            msg_ids: AtomicU64::new(0),
            first_panic: Mutex::new(None),
            codec: self.codec,
            epoch: started,
        });

        // Count and enqueue the initial messages before any thread starts,
        // so the barrier can never transiently read zero while work remains.
        let mut stats = NetStats::default();
        let mut any = false;
        for (from, to, msg) in initial {
            let Some(idx) = shared.cell_index(to) else {
                continue;
            };
            any = true;
            let size = msg.wire_size_with(shared.codec);
            stats.record_send(from, msg.kind(), size);
            shared.outstanding.fetch_add(1, Ordering::SeqCst);
            let msg_id = shared.msg_ids.fetch_add(1, Ordering::Relaxed);
            let cell = &shared.cells[idx as usize];
            cell.inbox.lock().expect("inbox lock").push_back(WorkItem {
                from,
                msg_id,
                msg: Arc::new(msg),
                size,
            });
            if !cell.scheduled.swap(true, Ordering::SeqCst) {
                shared.runnable[cell.home]
                    .lock()
                    .expect("runnable lock")
                    .push_back(idx);
            }
        }
        if !any {
            // Nothing to do: skip thread spin-up entirely.
            let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!());
            let peers = shared
                .cells
                .into_iter()
                .map(|c| (c.id, c.state.into_inner().expect("state lock").peer))
                .collect();
            return Ok((peers, stats));
        }

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = crossbeam::channel::unbounded::<ShardMsg<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut handles = Vec::with_capacity(shards);
        for (shard, rx) in receivers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let senders = senders.clone();
            handles.push(std::thread::spawn(move || {
                shard_loop(shard, &shared, rx, &senders)
            }));
        }
        drop(senders);

        for h in handles {
            match h.join() {
                Ok(shard_stats) => stats.merge(&shard_stats),
                Err(panic) => {
                    // Handlers panic inside catch_unwind, so a dead thread
                    // means the shard loop itself failed; surface it rather
                    // than aborting the driver.
                    let mut slot = shared.first_panic.lock().expect("panic slot");
                    if slot.is_none() {
                        *slot = Some(WorkerPanic {
                            node: NodeId(u32::MAX),
                            payload: crate::threaded::payload_string(panic.as_ref()),
                        });
                    }
                }
            }
        }
        let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| unreachable!());
        if let Some(panic) = shared.first_panic.into_inner().expect("panic slot") {
            return Err(panic);
        }
        let peers = shared
            .cells
            .into_iter()
            .map(|c| (c.id, c.state.into_inner().expect("state lock").peer))
            .collect();
        stats.finished_at = SimTime(started.elapsed().as_micros() as u64);
        Ok((peers, stats))
    }
}

/// One shard thread: drain the local run queue, accept cross-shard
/// hand-offs, steal when idle, exit when the quiescence barrier reads zero.
fn shard_loop<M: Wire + Sync, P: Peer<M>>(
    shard: usize,
    shared: &Shared<M, P>,
    rx: crossbeam::channel::Receiver<ShardMsg<M>>,
    senders: &[crossbeam::channel::Sender<ShardMsg<M>>],
) -> NetStats {
    let mut stats = NetStats::default();
    let mut measured: Vec<(usize, usize)> = Vec::new();
    loop {
        let local = shared.runnable[shard]
            .lock()
            .expect("runnable lock")
            .pop_front();
        if let Some(idx) = local {
            drain_cell(idx, shared, senders, &mut stats, &mut measured);
            continue;
        }
        match rx.try_recv() {
            Ok(msg) => {
                accept(msg, shard, shared);
                continue;
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => break,
        }
        if let Some(idx) = steal(shard, shared) {
            drain_cell(idx, shared, senders, &mut stats, &mut measured);
            continue;
        }
        // Nothing local, nothing handed off, nothing stealable: quiescent
        // if the barrier reads zero (it can never grow again — growth
        // requires a running handler, which requires an outstanding item);
        // otherwise wait briefly for a hand-off or a wake nudge.
        if shared.outstanding.load(Ordering::SeqCst) == 0 {
            break;
        }
        match rx.recv_timeout(Duration::from_micros(200)) {
            Ok(msg) => accept(msg, shard, shared),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    stats
}

/// Routes one cross-shard hand-off into the local mailbox/run queue.
fn accept<M: Wire + Sync, P: Peer<M>>(msg: ShardMsg<M>, shard: usize, shared: &Shared<M, P>) {
    match msg {
        ShardMsg::Wake => {}
        ShardMsg::Work { cell, item } => {
            let c = &shared.cells[cell as usize];
            c.inbox.lock().expect("inbox lock").push_back(item);
            if !c.scheduled.swap(true, Ordering::SeqCst) {
                shared.runnable[shard]
                    .lock()
                    .expect("runnable lock")
                    .push_back(cell);
            }
        }
    }
}

/// Pops a runnable peer from some other shard's queue (back end, so the
/// victim's own front-pops race as little as possible).
fn steal<M, P>(me: usize, shared: &Shared<M, P>) -> Option<u32> {
    let t = shared.runnable.len();
    for off in 1..t {
        let victim = (me + off) % t;
        if let Some(idx) = shared.runnable[victim]
            .lock()
            .expect("runnable lock")
            .pop_back()
        {
            return Some(idx);
        }
    }
    None
}

/// Exclusively drains one claimed peer's inbox, running its handler per
/// item and routing the sends. The exit re-check (`store(false)`, look
/// again, re-`swap`) closes the race with a concurrent enqueuer: exactly
/// one of the two observes `false` and keeps the peer scheduled.
fn drain_cell<M: Wire + Sync, P: Peer<M>>(
    idx: u32,
    shared: &Shared<M, P>,
    senders: &[crossbeam::channel::Sender<ShardMsg<M>>],
    stats: &mut NetStats,
    measured: &mut Vec<(usize, usize)>,
) {
    let cell = &shared.cells[idx as usize];
    let mut state = cell.state.lock().expect("state lock");
    loop {
        let item = cell.inbox.lock().expect("inbox lock").pop_front();
        match item {
            Some(item) => {
                process(cell, &mut state, item, shared, senders, stats, measured);
            }
            None => {
                cell.scheduled.store(false, Ordering::SeqCst);
                let refilled = !cell.inbox.lock().expect("inbox lock").is_empty();
                if refilled && !cell.scheduled.swap(true, Ordering::SeqCst) {
                    continue;
                }
                break;
            }
        }
    }
}

/// Delivers one work item: runs the handler (panic-safe) and routes the
/// sends it queued, sharing one serialization across a fan-out's receivers
/// via the address memo.
#[allow(clippy::too_many_arguments)]
fn process<M: Wire + Sync, P: Peer<M>>(
    cell: &PeerCell<M, P>,
    state: &mut CellState<P>,
    item: WorkItem<M>,
    shared: &Shared<M, P>,
    senders: &[crossbeam::channel::Sender<ShardMsg<M>>],
    stats: &mut NetStats,
    measured: &mut Vec<(usize, usize)>,
) {
    if state.poisoned {
        stats.dropped += 1;
        dec_outstanding(shared, senders);
        return;
    }
    stats.record_delivery(cell.id, item.size, item.msg.session());
    // A fan-out's last reference moves out of the Arc; earlier ones clone —
    // the payload allocation is shared right up to delivery.
    let owned = Arc::try_unwrap(item.msg).unwrap_or_else(|shared_msg| (*shared_msg).clone());
    let now = SimTime(shared.epoch.elapsed().as_micros() as u64);
    let mut ctx = Context::new(now, cell.id);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        state
            .peer
            .on_envelope(item.from, item.msg_id, owned, &mut ctx)
    }));
    if let Err(panic) = outcome {
        state.poisoned = true;
        let mut slot = shared.first_panic.lock().expect("panic slot");
        if slot.is_none() {
            *slot = Some(WorkerPanic {
                node: cell.id,
                payload: crate::threaded::payload_string(panic.as_ref()),
            });
        }
    }
    // Sends queued before a panic still go out, as in the threaded runtime.
    measured.clear();
    for out in ctx.take_outgoing() {
        let addr = Arc::as_ptr(&out.msg) as usize;
        let size = match measured.iter().find(|(a, _)| *a == addr) {
            Some(&(_, size)) => {
                stats.shared_payload_sends += 1;
                size
            }
            None => {
                let size = out.msg.wire_size_with(shared.codec);
                measured.push((addr, size));
                size
            }
        };
        stats.record_send(cell.id, out.msg.kind(), size);
        let Some(tidx) = shared.cell_index(out.to) else {
            stats.dropped += 1;
            continue;
        };
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        let msg_id = shared.msg_ids.fetch_add(1, Ordering::Relaxed);
        let witem = WorkItem {
            from: cell.id,
            msg_id,
            msg: out.msg,
            size,
        };
        let target = &shared.cells[tidx as usize];
        if target.home == cell.home {
            // Intra-shard short-circuit: straight into the mailbox, no
            // channel hop, payload still behind the sender's Arc.
            target.inbox.lock().expect("inbox lock").push_back(witem);
            if !target.scheduled.swap(true, Ordering::SeqCst) {
                shared.runnable[target.home]
                    .lock()
                    .expect("runnable lock")
                    .push_back(tidx);
            }
        } else {
            stats.cross_shard_sends += 1;
            let _ = senders[target.home].send(ShardMsg::Work {
                cell: tidx,
                item: witem,
            });
        }
    }
    dec_outstanding(shared, senders);
}

/// Decrements the quiescence barrier; the decrement that reaches zero
/// nudges every shard so sleepers re-check and exit.
fn dec_outstanding<M, P>(
    shared: &Shared<M, P>,
    senders: &[crossbeam::channel::Sender<ShardMsg<M>>],
) {
    if shared.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
        for tx in senders {
            let _ = tx.send(ShardMsg::Wake);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Token(u32);

    impl Wire for Token {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "Token"
        }
    }

    #[derive(Debug)]
    struct RingPeer {
        next: NodeId,
        seen: u32,
    }

    impl Peer<Token> for RingPeer {
        fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
            self.seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }
    }

    fn ring(n: u32, shards: usize, placement: ShardPlacement) -> ShardedNetwork<Token, RingPeer> {
        let mut net = ShardedNetwork::new();
        net.set_shards(shards);
        net.set_placement(placement);
        for i in 0..n {
            net.add_peer(
                NodeId(i),
                RingPeer {
                    next: NodeId((i + 1) % n),
                    seen: 0,
                },
            );
        }
        net
    }

    #[test]
    fn token_ring_quiesces_on_every_shard_count() {
        for shards in [1usize, 2, 3, 8, 16] {
            let net = ring(5, shards, ShardPlacement::RoundRobin);
            let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(24))]).unwrap();
            let total_seen: u32 = peers.iter().map(|(_, p)| p.seen).sum();
            assert_eq!(total_seen, 25, "shards={shards}");
            assert_eq!(stats.total_messages, 25, "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_peers_still_quiesces() {
        let net = ring(3, 9, ShardPlacement::RoundRobin);
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(11))]).unwrap();
        let total_seen: u32 = peers.iter().map(|(_, p)| p.seen).sum();
        assert_eq!(total_seen, 12);
        assert_eq!(stats.total_messages, 12);
    }

    #[test]
    fn empty_initial_returns_immediately() {
        let mut net: ShardedNetwork<Token, RingPeer> = ShardedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (peers, stats) = net.run(vec![]).unwrap();
        assert_eq!(peers.len(), 1);
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn initial_message_to_unknown_node_is_skipped() {
        let mut net: ShardedNetwork<Token, RingPeer> = ShardedNetwork::new();
        net.add_peer(
            NodeId(0),
            RingPeer {
                next: NodeId(0),
                seen: 0,
            },
        );
        let (_, stats) = net.run(vec![(NodeId(0), NodeId(42), Token(1))]).unwrap();
        assert_eq!(stats.total_messages, 0);
    }

    #[test]
    fn blocks_placement_localizes_ring_traffic() {
        // On a ring with contiguous blocks, only the 4 block-boundary hops
        // are cross-shard; round-robin makes every hop cross-shard.
        let net = ring(32, 4, ShardPlacement::Blocks);
        let (_, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(64))]).unwrap();
        let blocks_cross = stats.cross_shard_sends;
        let net = ring(32, 4, ShardPlacement::RoundRobin);
        let (_, stats) = net.run(vec![(NodeId(0), NodeId(0), Token(64))]).unwrap();
        let rr_cross = stats.cross_shard_sends;
        assert!(
            blocks_cross < rr_cross,
            "blocks={blocks_cross} rr={rr_cross}"
        );
        // 64 handler sends, two ring laps: each lap crosses 4 boundaries.
        assert!(blocks_cross <= 9, "blocks={blocks_cross}");
        assert_eq!(rr_cross, 64);
    }

    #[test]
    fn panicking_peer_is_a_structured_error_not_a_wedge() {
        // Node 2 panics on its first message; tokens keep circling at it.
        // The barrier must still release (no deadlock on items queued to
        // the dead peer) and the first panic must be named.
        #[derive(Debug)]
        struct Bomb {
            next: NodeId,
            armed: bool,
        }
        impl Peer<Token> for Bomb {
            fn on_message(&mut self, _from: NodeId, msg: Token, ctx: &mut Context<Token>) {
                if self.armed {
                    panic!("boom at token {}", msg.0);
                }
                if msg.0 > 0 {
                    ctx.send(self.next, Token(msg.0 - 1));
                }
            }
        }
        for shards in [1usize, 2, 4] {
            let n = 4u32;
            let mut net = ShardedNetwork::new();
            net.set_shards(shards);
            for i in 0..n {
                net.add_peer(
                    NodeId(i),
                    Bomb {
                        next: NodeId((i + 1) % n),
                        armed: i == 2,
                    },
                );
            }
            let err = net
                .run(vec![(NodeId(0), NodeId(0), Token(24))])
                .unwrap_err();
            assert_eq!(err.node, NodeId(2), "shards={shards}");
            assert!(err.payload.contains("boom"), "payload: {}", err.payload);
        }
    }

    #[test]
    fn fan_out_shares_one_serialization() {
        struct Hub {
            workers: Vec<NodeId>,
            acks: u32,
        }
        #[derive(Debug, Clone)]
        enum Msg {
            Go,
            Work(#[allow(dead_code)] u32),
            Ack,
        }
        impl Wire for Msg {
            fn wire_size(&self) -> usize {
                4
            }
            fn kind(&self) -> &'static str {
                match self {
                    Msg::Go => "Go",
                    Msg::Work(_) => "Work",
                    Msg::Ack => "Ack",
                }
            }
        }
        enum NodeKind {
            Hub(Hub),
            Worker,
        }
        impl Peer<Msg> for NodeKind {
            fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Context<Msg>) {
                match (self, msg) {
                    (NodeKind::Hub(h), Msg::Go) => {
                        ctx.send_to_many(h.workers.iter().copied(), Msg::Work(3));
                    }
                    (NodeKind::Hub(h), Msg::Ack) => h.acks += 1,
                    (NodeKind::Worker, Msg::Work(_)) => ctx.send(from, Msg::Ack),
                    _ => {}
                }
            }
        }
        let mut net = ShardedNetwork::new();
        net.set_shards(4);
        let workers: Vec<NodeId> = (1..=8).map(NodeId).collect();
        net.add_peer(
            NodeId(0),
            NodeKind::Hub(Hub {
                workers: workers.clone(),
                acks: 0,
            }),
        );
        for w in workers {
            net.add_peer(w, NodeKind::Worker);
        }
        let (peers, stats) = net.run(vec![(NodeId(0), NodeId(0), Msg::Go)]).unwrap();
        match &peers[0].1 {
            NodeKind::Hub(h) => assert_eq!(h.acks, 8),
            _ => unreachable!(),
        }
        assert_eq!(stats.total_messages, 17); // Go + 8 Work + 8 Ack
        assert_eq!(stats.sent_of_kind("Work"), 8);
        // The 8-way fan-out encoded its payload once: 7 sends reused it.
        assert_eq!(stats.shared_payload_sends, 7);
    }
}
