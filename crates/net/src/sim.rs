//! The deterministic discrete-event simulator.
//!
//! Events are delivered in `(time, sequence)` order; all randomness (latency
//! jitter, fault decisions) comes from seeded RNGs, so a run is a pure
//! function of its inputs. That determinism is what lets the test suite
//! assert exact message counts and lets experiments be reproduced bit-for-bit
//! — the one capability the paper's JXTA testbed fundamentally lacked.
//!
//! ## The scale-out hot path (PR 7)
//!
//! The original loop kept peers in a `BTreeMap`, pushed a full
//! [`Envelope`] (payload included) into the binary heap per receiver, and
//! cloned the message once per fan-out destination. At 10k+ peers that
//! means gigabytes of payload copies and a heap of fat events. The loop is
//! now arranged around three ideas:
//!
//! * **Shared payloads** — handlers queue [`Outgoing`] entries carrying
//!   `Arc<M>`; a fan-out ([`Context::send_to_many`]) allocates the message
//!   once and every receiver shares it. The payload is serialized exactly
//!   once per *unique* message (a per-drain memo keyed on the `Arc`'s
//!   address reuses the measured size), and unwrapped without a copy at the
//!   last delivery (`Arc::try_unwrap`). [`NetStats::shared_payload_sends`]
//!   counts the re-uses, and the `tests/codec.rs` regression test asserts
//!   encode passes == unique messages.
//! * **Flat event arena + index heap** — queued events live in a slab of
//!   reusable slots; the `BinaryHeap` orders bare `(time, seq, slot)`
//!   triples (24 bytes) instead of whole envelopes, so heap sift-ups move
//!   words, not payloads, and slot/`Vec` capacity is recycled through free
//!   lists instead of being reallocated per event.
//! * **Per-pipe batching** — each FIFO pipe `(from, to)` remembers its tail
//!   slot: a message scheduled on the same pipe for the *same* virtual
//!   instant coalesces into that slot instead of growing the heap. A batch
//!   delivers its messages back-to-back in send order (exactly what the
//!   FIFO contract promises), each through its own handler invocation, so
//!   protocol semantics — including `DbPeer`'s ack/wave coalescing — are
//!   preserved; only the heap traffic shrinks. Batching never delays or
//!   reorders a pipe's messages relative to each other, and cross-pipe
//!   deliveries scheduled for the same instant remain simultaneous in
//!   virtual time.
//!
//! Peers themselves sit in a dense `Vec` indexed by a `NodeId → slot` table,
//! so the per-delivery peer lookup is two array loads instead of a
//! `BTreeMap` walk.

use crate::codec::Codec;
use crate::fault::{FaultDecision, FaultPlan};
use crate::latency::LatencyModel;
use crate::message::{SimTime, Wire};
use crate::stats::NetStats;
use crate::trace::{Trace, TraceEntry};
use p2p_topology::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// A protocol participant. One instance per node; handlers are atomic (run
/// to completion) and communicate only through the [`Context`].
pub trait Peer<M>: Send {
    /// Handles one delivered message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Delivery entry point used by the runtimes. `msg_id` identifies the
    /// *send*: fault-injected duplicates share it, so an implementation can
    /// provide exactly-once semantics by remembering seen ids (the default
    /// just forwards to [`Peer::on_message`], i.e. at-least-once).
    fn on_envelope(&mut self, from: NodeId, msg_id: u64, msg: M, ctx: &mut Context<M>) {
        let _ = msg_id;
        self.on_message(from, msg, ctx);
    }

    /// Churn hook: the peer's process dies. All in-memory state should be
    /// wiped here; only what the peer persisted elsewhere may survive. No
    /// context — a dying process sends nothing.
    fn on_crash(&mut self) {}

    /// Churn hook: the peer's process comes back after a crash. This is
    /// where a durable peer recovers from storage and sends whatever
    /// resynchronisation traffic its protocol defines.
    fn on_restart(&mut self, ctx: &mut Context<M>) {
        let _ = ctx;
    }
}

/// An outgoing message queued by a handler. The payload is `Arc`-shared:
/// a unicast send holds the only reference (delivery unwraps it without a
/// copy), a [`Context::send_to_many`] fan-out shares one allocation across
/// all receivers.
#[derive(Debug, Clone)]
pub struct Outgoing<M> {
    /// Recipient.
    pub to: NodeId,
    /// Payload (shared across fan-out receivers).
    pub msg: Arc<M>,
    /// Extra delay beyond link latency (processing cost, scheduled work).
    pub delay: SimTime,
}

/// Handler-side view of the network: the only way peers interact with the
/// outside world.
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    id: NodeId,
    charged: SimTime,
    outgoing: Vec<Outgoing<M>>,
}

impl<M> Context<M> {
    /// Creates a context for one handler invocation (used by both runtimes).
    pub fn new(now: SimTime, id: NodeId) -> Self {
        Context {
            now,
            id,
            charged: SimTime::ZERO,
            outgoing: Vec::new(),
        }
    }

    /// Current time (virtual in the simulator, wall-clock in the threaded
    /// runtime).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The handling node's own id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends a message (subject to link latency and any charged processing
    /// time).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outgoing.push(Outgoing {
            to,
            msg: Arc::new(msg),
            delay: self.charged,
        });
    }

    /// Sends one message to many receivers, sharing a single payload
    /// allocation (and, in the simulator, a single serialization) across
    /// the whole fan-out. This is the broadcast primitive floods and
    /// fix-point announcements should use.
    pub fn send_to_many(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M) {
        let shared = Arc::new(msg);
        for t in to {
            self.outgoing.push(Outgoing {
                to: t,
                msg: Arc::clone(&shared),
                delay: self.charged,
            });
        }
    }

    /// Sends after an explicit additional delay.
    pub fn send_after(&mut self, delay: SimTime, to: NodeId, msg: M) {
        self.outgoing.push(Outgoing {
            to,
            msg: Arc::new(msg),
            delay: self.charged + delay,
        });
    }

    /// Charges local processing time: all *subsequent* sends from this
    /// handler are delayed by the accumulated charge. Models per-tuple query
    /// evaluation cost without a full node-busy queueing model.
    pub fn charge(&mut self, cost: SimTime) {
        self.charged += cost;
    }

    /// Number of sends queued so far in this handler invocation (lets
    /// callers of the fan-out primitives account per-receiver bookkeeping
    /// without materialising the target list twice).
    pub fn pending_sends(&self) -> usize {
        self.outgoing.len()
    }

    /// Drains queued sends (runtime internal).
    pub fn take_outgoing(&mut self) -> Vec<Outgoing<M>> {
        std::mem::take(&mut self.outgoing)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Virtual time of the last delivered event.
    pub virtual_time: SimTime,
    /// Number of deliveries processed.
    pub delivered: u64,
    /// True iff the event queue drained; false iff the event budget was hit
    /// (a diverging protocol, or faults that stranded the run).
    pub quiescent: bool,
}

/// One queued message inside a batch slot.
struct BatchItem<M> {
    msg: Arc<M>,
    msg_id: u64,
    size: usize,
}

/// What an arena slot currently holds.
enum SlotKind {
    /// On the free list.
    Free,
    /// A (batched) delivery; `from`/`to`/`items` on the slot apply.
    Deliver,
    /// Crash control event (churn plan).
    Crash(NodeId),
    /// Restart control event (churn plan).
    Restart(NodeId),
}

/// An arena slot. `items` keeps its capacity across reuses via the vec
/// pool, so steady-state scheduling allocates nothing.
struct Slot<M> {
    kind: SlotKind,
    from: NodeId,
    to: NodeId,
    items: Vec<BatchItem<M>>,
}

/// Per-pipe FIFO state: the monotone delivery floor plus the appendable
/// tail slot for same-instant batching.
#[derive(Clone, Copy)]
struct PipeTail {
    floor: SimTime,
    /// Arena index of the pipe's most recently scheduled, still-queued
    /// slot; `NO_SLOT` when the tail was popped (or never existed).
    slot: u32,
    /// Virtual time that tail slot fires at.
    slot_at: SimTime,
}

const NO_SLOT: u32 = u32::MAX;

impl Default for PipeTail {
    fn default() -> Self {
        PipeTail {
            floor: SimTime::ZERO,
            slot: NO_SLOT,
            slot_at: SimTime::ZERO,
        }
    }
}

/// The discrete-event simulator over a homogeneous peer type `P`.
pub struct Simulator<M: Wire, P: Peer<M>> {
    /// Dense peer storage; `ids[i]` names `peers[i]`.
    ids: Vec<NodeId>,
    peers: Vec<P>,
    /// `NodeId.0 → peer slot` (NO_SLOT = unknown node).
    node_slot: Vec<u32>,
    /// Peer-slot-indexed crash flags.
    down: Vec<bool>,
    /// Event arena + free list + recycled item vectors.
    slots: Vec<Slot<M>>,
    free_slots: Vec<u32>,
    vec_pool: Vec<Vec<BatchItem<M>>>,
    /// Index heap over the arena: `(fire time, seq, slot)`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    latency: Box<dyn LatencyModel>,
    fault: FaultPlan,
    stats: NetStats,
    trace: Trace,
    now: SimTime,
    seq: u64,
    next_msg_id: u64,
    max_events: u64,
    fifo_pipes: bool,
    pipes: BTreeMap<(NodeId, NodeId), PipeTail>,
    /// Per-drain measurement memo: `(payload address, measured size)` of
    /// already-encoded payloads, so a fan-out is serialized once. Addresses
    /// are stored as `usize` (never dereferenced) and the memo never
    /// outlives the drain that filled it.
    measured: Vec<(usize, usize)>,
    /// Wire codec messages are measured (and notionally carried) in.
    codec: Codec,
}

impl<M: Wire, P: Peer<M>> Simulator<M, P> {
    /// Creates a simulator with the given latency model, reliable transport
    /// and tracing off.
    pub fn new(latency: Box<dyn LatencyModel>) -> Self {
        Simulator {
            ids: Vec::new(),
            peers: Vec::new(),
            node_slot: Vec::new(),
            down: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            vec_pool: Vec::new(),
            heap: BinaryHeap::new(),
            latency,
            fault: FaultPlan::none(),
            stats: NetStats::default(),
            trace: Trace::default(),
            now: SimTime::ZERO,
            seq: 0,
            next_msg_id: 0,
            max_events: 10_000_000,
            fifo_pipes: true,
            pipes: BTreeMap::new(),
            measured: Vec::new(),
            codec: Codec::default(),
        }
    }

    /// Selects the wire codec. Every message sent from now on is measured
    /// (once, at send) under this codec.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// The wire codec in effect.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Enables/disables per-link FIFO delivery. On by default: JXTA pipes
    /// (and any TCP-backed transport) never reorder messages on one link, and
    /// the update protocol's completeness flags rely on that. Disable only to
    /// study protocol behaviour under adversarial reordering. (Same-instant
    /// batching rides on the FIFO tail state, so disabling FIFO also
    /// disables batching.)
    pub fn set_fifo_pipes(&mut self, fifo: bool) {
        self.fifo_pipes = fifo;
    }

    /// Installs a fault plan.
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.fault = fault;
    }

    /// Schedules a churn plan: each crash/restart pair becomes a pair of
    /// control events at `base + offset`. While a peer is down, deliveries
    /// to it are dropped; at the restart event its
    /// [`Peer::on_restart`] hook runs (with a context, so it can send).
    pub fn schedule_churn(&mut self, plan: &crate::churn::ChurnPlan, base: SimTime) {
        for ev in plan.events() {
            for (at, kind) in [
                (base + ev.crash_at, SlotKind::Crash(ev.node)),
                (base + ev.restart_at, SlotKind::Restart(ev.node)),
            ] {
                let slot = self.alloc_slot(kind, ev.node, ev.node);
                let seq = self.seq;
                self.seq += 1;
                self.heap.push(Reverse((at, seq, slot)));
            }
        }
    }

    /// True iff `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.slot_of(node).is_some_and(|s| self.down[s])
    }

    /// Enables message tracing with the given capacity.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// Caps the number of deliveries per [`Simulator::run`] (safety net
    /// against diverging protocols).
    pub fn set_max_events(&mut self, max_events: u64) {
        self.max_events = max_events;
    }

    /// Registers a peer (replacing any previous peer under the same id).
    pub fn add_peer(&mut self, id: NodeId, peer: P) {
        let key = id.0 as usize;
        if key >= self.node_slot.len() {
            self.node_slot.resize(key + 1, NO_SLOT);
        }
        match self.node_slot[key] {
            NO_SLOT => {
                self.node_slot[key] = self.peers.len() as u32;
                self.ids.push(id);
                self.peers.push(peer);
                self.down.push(false);
            }
            slot => {
                self.peers[slot as usize] = peer;
                self.down[slot as usize] = false;
            }
        }
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        match self.node_slot.get(id.0 as usize) {
            Some(&s) if s != NO_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Immutable access to a peer's state (assertions, result extraction).
    pub fn peer(&self, id: NodeId) -> Option<&P> {
        self.slot_of(id).map(|s| &self.peers[s])
    }

    /// Mutable access to a peer's state.
    pub fn peer_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.slot_of(id).map(|s| &mut self.peers[s])
    }

    /// Iterates peers in id order.
    pub fn peers(&self) -> impl Iterator<Item = (&NodeId, &P)> {
        let mut order: Vec<usize> = (0..self.ids.len()).collect();
        order.sort_by_key(|&s| self.ids[s]);
        order.into_iter().map(|s| (&self.ids[s], &self.peers[s]))
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The trace (empty unless enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from an external driver, delivered after link
    /// latency from the current time.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        let size = msg.wire_size_with(self.codec);
        self.route(from, to, Arc::new(msg), SimTime::ZERO, size);
    }

    /// Schedules a message for delivery at an absolute time (dynamic-change
    /// scripts). No latency is added: `at` *is* the delivery time.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        let size = msg.wire_size_with(self.codec);
        self.stats.record_send(from, msg.kind(), size);
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        let slot = self.alloc_slot(SlotKind::Deliver, from, to);
        self.slots[slot as usize].items.push(BatchItem {
            msg: Arc::new(msg),
            msg_id,
            size,
        });
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, slot)));
    }

    fn alloc_slot(&mut self, kind: SlotKind, from: NodeId, to: NodeId) -> u32 {
        if let Some(idx) = self.free_slots.pop() {
            let s = &mut self.slots[idx as usize];
            s.kind = kind;
            s.from = from;
            s.to = to;
            debug_assert!(s.items.is_empty());
            idx
        } else {
            self.slots.push(Slot {
                kind,
                from,
                to,
                items: self.vec_pool.pop().unwrap_or_default(),
            });
            (self.slots.len() - 1) as u32
        }
    }

    fn free_slot(&mut self, idx: u32, mut items: Vec<BatchItem<M>>) {
        items.clear();
        let s = &mut self.slots[idx as usize];
        s.kind = SlotKind::Free;
        // Keep the larger of the two buffers on the slot so capacity
        // accumulates where it is reused first.
        if items.capacity() > s.items.capacity() {
            let old = std::mem::replace(&mut s.items, items);
            self.vec_pool.push(old);
        } else {
            self.vec_pool.push(items);
        }
        self.free_slots.push(idx);
    }

    /// Routes all sends queued by one handler invocation, sharing one
    /// serialization across a fan-out's receivers via the address memo.
    fn drain_outgoing(&mut self, from: NodeId, ctx: &mut Context<M>) {
        let out = ctx.take_outgoing();
        self.measured.clear();
        for o in out {
            let addr = Arc::as_ptr(&o.msg) as usize;
            let size = match self.measured.iter().find(|(a, _)| *a == addr) {
                Some(&(_, size)) => {
                    self.stats.shared_payload_sends += 1;
                    size
                }
                None => {
                    let size = o.msg.wire_size_with(self.codec);
                    self.measured.push((addr, size));
                    size
                }
            };
            self.route(from, o.to, o.msg, o.delay, size);
        }
        self.measured.clear();
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: Arc<M>, extra: SimTime, size: usize) {
        self.stats.record_send(from, msg.kind(), size);
        let copies = match self.fault.decide(from, to, self.now) {
            FaultDecision::Drop => {
                self.stats.dropped += 1;
                0
            }
            FaultDecision::Deliver => 1,
            FaultDecision::Duplicate => {
                self.stats.duplicated += 1;
                2
            }
        };
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        for _ in 0..copies {
            let latency = self.latency.latency(from, to, size);
            let mut at = self.now + extra + latency;
            if self.fifo_pipes {
                let tail = self.pipes.entry((from, to)).or_default();
                if at < tail.floor {
                    at = tail.floor;
                }
                tail.floor = at;
                let (tail_slot, tail_at) = (tail.slot, tail.slot_at);
                if tail_slot != NO_SLOT && tail_at == at {
                    // Same pipe, same instant: coalesce into the queued
                    // tail batch instead of growing the heap.
                    self.slots[tail_slot as usize].items.push(BatchItem {
                        msg: Arc::clone(&msg),
                        msg_id,
                        size,
                    });
                    continue;
                }
            }
            let slot = self.alloc_slot(SlotKind::Deliver, from, to);
            self.slots[slot as usize].items.push(BatchItem {
                msg: Arc::clone(&msg),
                msg_id,
                size,
            });
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse((at, seq, slot)));
            if self.fifo_pipes {
                let tail = self.pipes.entry((from, to)).or_default();
                tail.slot = slot;
                tail.slot_at = at;
            }
        }
    }

    /// Delivers the next event (a whole pipe batch counts as one event here
    /// but as `items.len()` deliveries against the budget); returns `false`
    /// when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_counted().is_some()
    }

    /// Pops and processes one heap entry, returning how many budgeted
    /// events it contained (`None` when the queue is empty).
    fn step_counted(&mut self) -> Option<u64> {
        let Reverse((at, _seq, slot_idx)) = self.heap.pop()?;
        self.now = at;
        let slot = &mut self.slots[slot_idx as usize];
        let kind = std::mem::replace(&mut slot.kind, SlotKind::Free);
        match kind {
            SlotKind::Free => unreachable!("popped a free slot"),
            SlotKind::Crash(node) => {
                self.free_slots.push(slot_idx);
                self.crash(node);
                Some(1)
            }
            SlotKind::Restart(node) => {
                self.free_slots.push(slot_idx);
                self.restart(node);
                Some(1)
            }
            SlotKind::Deliver => {
                let from = slot.from;
                let to = slot.to;
                let items = std::mem::take(&mut slot.items);
                // The popped slot can no longer accept same-instant
                // appends; new sends on this pipe must open a fresh slot.
                if let Some(tail) = self.pipes.get_mut(&(from, to)) {
                    if tail.slot == slot_idx {
                        tail.slot = NO_SLOT;
                    }
                }
                let n = items.len() as u64;
                let items = self.deliver_batch(from, to, items);
                self.free_slot(slot_idx, items);
                Some(n)
            }
        }
    }

    fn crash(&mut self, node: NodeId) {
        if let Some(s) = self.slot_of(node) {
            self.down[s] = true;
        }
        self.stats.peer_crashes += 1;
        if self.trace.enabled() {
            self.trace.record(TraceEntry {
                at: self.now,
                from: node,
                to: node,
                kind: "Crash",
                session: None,
                detail: String::new(),
            });
        }
        if let Some(s) = self.slot_of(node) {
            self.peers[s].on_crash();
        }
    }

    fn restart(&mut self, node: NodeId) {
        if let Some(s) = self.slot_of(node) {
            self.down[s] = false;
        }
        self.stats.peer_restarts += 1;
        if self.trace.enabled() {
            self.trace.record(TraceEntry {
                at: self.now,
                from: node,
                to: node,
                kind: "Restart",
                session: None,
                detail: String::new(),
            });
        }
        if let Some(s) = self.slot_of(node) {
            let mut ctx = Context::new(self.now, node);
            self.peers[s].on_restart(&mut ctx);
            self.drain_outgoing(node, &mut ctx);
        }
    }

    /// Delivers a batch's messages back-to-back in send order, each through
    /// its own handler invocation. Returns the drained item vector so its
    /// capacity can be recycled.
    fn deliver_batch(
        &mut self,
        from: NodeId,
        to: NodeId,
        mut items: Vec<BatchItem<M>>,
    ) -> Vec<BatchItem<M>> {
        let Some(to_slot) = self.slot_of(to) else {
            // Messages to a node that does not exist (yet / anymore) —
            // exactly like packets to a dead process.
            self.stats.dropped += items.len() as u64;
            items.clear();
            return items;
        };
        for item in items.drain(..) {
            if self.down[to_slot] {
                self.stats.dropped += 1;
                continue;
            }
            let BatchItem { msg, msg_id, size } = item;
            self.stats.record_delivery(to, size, msg.session());
            if self.trace.enabled() {
                self.trace.record(TraceEntry {
                    at: self.now,
                    from,
                    to,
                    kind: msg.kind(),
                    session: msg.session(),
                    detail: String::new(),
                });
            }
            // Last (usually only) reference: take the payload without a
            // copy. A shared fan-out payload clones only while other
            // deliveries of it are still in flight.
            let owned = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
            let mut ctx = Context::new(self.now, to);
            self.peers[to_slot].on_envelope(from, msg_id, owned, &mut ctx);
            self.drain_outgoing(to, &mut ctx);
        }
        items
    }

    /// Runs until quiescence or the event budget.
    pub fn run(&mut self) -> RunOutcome {
        let start_messages = self.stats.total_messages;
        let mut processed = 0u64;
        let quiescent = loop {
            if processed >= self.max_events {
                break false;
            }
            match self.step_counted() {
                Some(n) => processed += n,
                None => break true,
            }
        };
        self.stats.finished_at = self.now;
        RunOutcome {
            virtual_time: self.now,
            delivered: self.stats.total_messages - start_messages,
            quiescent,
        }
    }

    /// Consumes the simulator, returning its peers (id order) — used by
    /// drivers that need to hand peer state onward.
    pub fn into_peers(self) -> Vec<(NodeId, P)> {
        let mut out: Vec<(NodeId, P)> = self.ids.into_iter().zip(self.peers).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ConstantLatency, UniformLatency};

    /// Ping-pong test message.
    #[derive(Debug, Clone)]
    struct Ping(u32);

    impl Wire for Ping {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "Ping"
        }
    }

    /// A peer that decrements the counter and bounces the message back until
    /// it reaches zero.
    struct Bouncer {
        seen: Vec<u32>,
    }

    impl Peer<Ping> for Bouncer {
        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
            self.seen.push(msg.0);
            if msg.0 > 0 {
                ctx.send(from, Ping(msg.0 - 1));
            }
        }
    }

    fn two_bouncers(latency: Box<dyn LatencyModel>) -> Simulator<Ping, Bouncer> {
        let mut sim = Simulator::new(latency);
        sim.add_peer(NodeId(0), Bouncer { seen: vec![] });
        sim.add_peer(NodeId(1), Bouncer { seen: vec![] });
        sim
    }

    #[test]
    fn ping_pong_terminates_with_exact_counts() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime::from_millis(1))));
        sim.inject(NodeId(0), NodeId(1), Ping(5));
        let outcome = sim.run();
        assert!(outcome.quiescent);
        assert_eq!(outcome.delivered, 6); // 5,4,3,2,1,0
        assert_eq!(outcome.virtual_time, SimTime::from_millis(6));
        assert_eq!(sim.peer(NodeId(1)).unwrap().seen, vec![5, 3, 1]);
        assert_eq!(sim.peer(NodeId(0)).unwrap().seen, vec![4, 2, 0]);
        assert_eq!(sim.stats().total_messages, 6);
        assert_eq!(sim.stats().total_bytes, 24);
    }

    #[test]
    fn deterministic_under_jitter() {
        let run = || {
            let mut sim = two_bouncers(Box::new(UniformLatency::new(
                SimTime(100),
                SimTime(1_000),
                1234,
            )));
            sim.inject(NodeId(0), NodeId(1), Ping(20));
            let o = sim.run();
            (o.virtual_time, o.delivered)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_budget_stops_runaway() {
        /// A peer that echoes forever.
        struct Echo;
        impl Peer<Ping> for Echo {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                ctx.send(from, msg);
            }
        }
        let mut sim: Simulator<Ping, Echo> = Simulator::new(Box::new(ConstantLatency(SimTime(1))));
        sim.add_peer(NodeId(0), Echo);
        sim.add_peer(NodeId(1), Echo);
        sim.set_max_events(100);
        sim.inject(NodeId(0), NodeId(1), Ping(0));
        let o = sim.run();
        assert!(!o.quiescent);
        assert_eq!(o.delivered, 100);
    }

    #[test]
    fn message_to_unknown_node_is_dropped() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.inject(NodeId(0), NodeId(9), Ping(3));
        let o = sim.run();
        assert!(o.quiescent);
        assert_eq!(o.delivered, 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn drops_break_the_chain() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_fault_plan(FaultPlan::random(100, 0, 1));
        sim.inject(NodeId(0), NodeId(1), Ping(5));
        let o = sim.run();
        assert!(o.quiescent);
        assert_eq!(o.delivered, 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn duplication_inflates_deliveries() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_fault_plan(FaultPlan::random(0, 100, 1));
        sim.inject(NodeId(0), NodeId(1), Ping(1));
        let o = sim.run();
        assert!(o.quiescent);
        // Ping(1) duplicated → two Ping(1) deliveries → each bounces a
        // Ping(0), also duplicated → four Ping(0) deliveries.
        assert_eq!(o.delivered, 6);
        assert!(sim.stats().duplicated >= 2);
    }

    #[test]
    fn charge_delays_subsequent_sends() {
        struct Charger;
        impl Peer<Ping> for Charger {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                if msg.0 == 2 {
                    ctx.charge(SimTime::from_millis(10));
                    ctx.send(from, Ping(1));
                }
            }
        }
        let mut sim: Simulator<Ping, Charger> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(1))));
        sim.add_peer(NodeId(0), Charger);
        sim.add_peer(NodeId(1), Charger);
        sim.inject(NodeId(0), NodeId(1), Ping(2));
        let o = sim.run();
        // 1ms (inject latency) + 10ms charge + 1ms latency.
        assert_eq!(o.virtual_time, SimTime::from_millis(12));
    }

    #[test]
    fn inject_at_delivers_at_absolute_time() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.inject_at(SimTime::from_millis(500), NodeId(0), NodeId(1), Ping(0));
        let o = sim.run();
        assert_eq!(o.virtual_time, SimTime::from_millis(500));
        assert_eq!(o.delivered, 1);
    }

    #[test]
    fn trace_captures_deliveries() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_trace_capacity(10);
        sim.inject(NodeId(0), NodeId(1), Ping(2));
        sim.run();
        let kinds: Vec<_> = sim.trace().entries().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["Ping", "Ping", "Ping"]);
    }

    #[test]
    fn churn_drops_deliveries_while_down_and_fires_hooks() {
        use crate::churn::ChurnPlan;

        /// A bouncer that also counts crash/restart hook invocations and
        /// wipes its memory on crash like a real process would.
        struct Churny {
            seen: Vec<u32>,
            crashes: u32,
            restarts: u32,
        }
        impl Peer<Ping> for Churny {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                self.seen.push(msg.0);
                if msg.0 > 0 {
                    ctx.send(from, Ping(msg.0 - 1));
                }
            }
            fn on_crash(&mut self) {
                self.crashes += 1;
                self.seen.clear();
            }
            fn on_restart(&mut self, ctx: &mut Context<Ping>) {
                self.restarts += 1;
                // Resync-style traffic from the restart hook must flow.
                ctx.send(NodeId(0), Ping(0));
            }
        }

        let mut sim: Simulator<Ping, Churny> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(1))));
        for id in [0u32, 1] {
            sim.add_peer(
                NodeId(id),
                Churny {
                    seen: vec![],
                    crashes: 0,
                    restarts: 0,
                },
            );
        }
        // Node 1 is down between 1.5 ms and 4.5 ms: the Ping(9) chain dies
        // when the second hop (at 2 ms) hits the crashed peer.
        sim.schedule_churn(
            &ChurnPlan::none().with_crash(
                NodeId(1),
                SimTime::from_micros(1_500),
                SimTime::from_micros(4_500),
            ),
            SimTime::ZERO,
        );
        sim.inject(NodeId(0), NodeId(1), Ping(9));
        let o = sim.run();
        assert!(o.quiescent);
        let p1 = sim.peer(NodeId(1)).unwrap();
        assert_eq!(p1.crashes, 1);
        assert_eq!(p1.restarts, 1);
        // Ping(9) arrived before the crash, was wiped, and the chain's
        // Ping(7) (due at 3 ms) was dropped while down.
        assert!(p1.seen.is_empty() || !p1.seen.contains(&9));
        assert_eq!(sim.stats().peer_crashes, 1);
        assert_eq!(sim.stats().peer_restarts, 1);
        assert!(sim.stats().dropped >= 1, "delivery while down must drop");
        // The restart hook's message reached node 0 (it bounces Ping(0)
        // into `seen` at node 0).
        assert!(sim.peer(NodeId(0)).unwrap().seen.contains(&0));
        assert!(!sim.is_down(NodeId(1)));
    }

    #[test]
    fn churned_runs_are_deterministic() {
        use crate::churn::ChurnPlan;
        let run = || {
            let mut sim = two_bouncers(Box::new(UniformLatency::new(
                SimTime(100),
                SimTime(1_000),
                77,
            )));
            sim.schedule_churn(
                &ChurnPlan::none().with_crash(NodeId(1), SimTime(2_000), SimTime(5_000)),
                SimTime::ZERO,
            );
            sim.inject(NodeId(0), NodeId(1), Ping(30));
            let o = sim.run();
            (o.virtual_time, o.delivered, sim.stats().dropped)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_order_for_equal_latency() {
        // Two messages sent in one handler arrive in send order.
        struct Burst;
        impl Peer<Ping> for Burst {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                if msg.0 == 9 {
                    ctx.send(from, Ping(1));
                    ctx.send(from, Ping(2));
                }
            }
        }
        struct Sink {
            seen: Vec<u32>,
        }
        // Heterogeneous peers via an enum wrapper.
        enum Node {
            Burst(Burst),
            Sink(Sink),
        }
        impl Peer<Ping> for Node {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                match self {
                    Node::Burst(b) => b.on_message(from, msg, ctx),
                    Node::Sink(s) => s.seen.push(msg.0),
                }
            }
        }
        let mut sim: Simulator<Ping, Node> = Simulator::new(Box::new(ConstantLatency(SimTime(5))));
        sim.add_peer(NodeId(0), Node::Sink(Sink { seen: vec![] }));
        sim.add_peer(NodeId(1), Node::Burst(Burst));
        sim.inject(NodeId(0), NodeId(1), Ping(9));
        sim.run();
        match sim.peer(NodeId(0)).unwrap() {
            Node::Sink(s) => assert_eq!(s.seen, vec![1, 2]),
            _ => unreachable!(),
        }
    }

    /// A same-pipe burst at one virtual instant coalesces into a single
    /// batch slot (one heap entry) while still delivering every message,
    /// in order, through its own handler invocation.
    #[test]
    fn same_instant_pipe_burst_is_batched_and_ordered() {
        struct Burst;
        impl Peer<Ping> for Burst {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                if msg.0 == 100 {
                    for k in 1..=5 {
                        ctx.send(from, Ping(k));
                    }
                }
            }
        }
        struct Sink {
            seen: Vec<u32>,
        }
        enum Node {
            Burst(Burst),
            Sink(Sink),
        }
        impl Peer<Ping> for Node {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                match self {
                    Node::Burst(b) => b.on_message(from, msg, ctx),
                    Node::Sink(s) => s.seen.push(msg.0),
                }
            }
        }
        let mut sim: Simulator<Ping, Node> = Simulator::new(Box::new(ConstantLatency(SimTime(7))));
        sim.add_peer(NodeId(0), Node::Sink(Sink { seen: vec![] }));
        sim.add_peer(NodeId(1), Node::Burst(Burst));
        sim.inject(NodeId(0), NodeId(1), Ping(100));
        let o = sim.run();
        assert_eq!(o.delivered, 6);
        // All five bursts share one latency, one pipe, one instant.
        assert_eq!(o.virtual_time, SimTime(14));
        match sim.peer(NodeId(0)).unwrap() {
            Node::Sink(s) => assert_eq!(s.seen, vec![1, 2, 3, 4, 5]),
            _ => unreachable!(),
        }
    }

    /// A fan-out via `send_to_many` shares one payload: every receiver
    /// sees the message, and the shared-payload counter records the reuse.
    #[test]
    fn fan_out_shares_payload_and_counts_reuse() {
        struct Hub {
            n: u32,
        }
        struct Leaf {
            got: Vec<u32>,
        }
        enum Node {
            Hub(Hub),
            Leaf(Leaf),
        }
        impl Peer<Ping> for Node {
            fn on_message(&mut self, _from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                match self {
                    Node::Hub(h) => {
                        ctx.send_to_many((1..=h.n).map(NodeId), Ping(msg.0 + 1));
                    }
                    Node::Leaf(l) => l.got.push(msg.0),
                }
            }
        }
        let mut sim: Simulator<Ping, Node> = Simulator::new(Box::new(ConstantLatency(SimTime(1))));
        sim.add_peer(NodeId(0), Node::Hub(Hub { n: 8 }));
        for i in 1..=8 {
            sim.add_peer(NodeId(i), Node::Leaf(Leaf { got: vec![] }));
        }
        sim.inject(NodeId(9), NodeId(0), Ping(41));
        let o = sim.run();
        assert_eq!(o.delivered, 9); // the injected ping + 8 fan-out copies
        for i in 1..=8 {
            match sim.peer(NodeId(i)).unwrap() {
                Node::Leaf(l) => assert_eq!(l.got, vec![42]),
                _ => unreachable!(),
            }
        }
        // One payload measured once, reused for the 7 other receivers.
        assert_eq!(sim.stats().shared_payload_sends, 7);
    }

    /// The event arena recycles slots: a long run keeps the arena small
    /// instead of growing with total message count.
    #[test]
    fn arena_recycles_slots() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.inject(NodeId(0), NodeId(1), Ping(500));
        let o = sim.run();
        assert!(o.quiescent);
        assert_eq!(o.delivered, 501);
        assert!(
            sim.slots.len() <= 4,
            "arena grew to {} slots for a 1-in-flight workload",
            sim.slots.len()
        );
    }
}
