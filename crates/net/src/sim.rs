//! The deterministic discrete-event simulator.
//!
//! Events are delivered in `(time, sequence)` order; all randomness (latency
//! jitter, fault decisions) comes from seeded RNGs, so a run is a pure
//! function of its inputs. That determinism is what lets the test suite
//! assert exact message counts and lets experiments be reproduced bit-for-bit
//! — the one capability the paper's JXTA testbed fundamentally lacked.

use crate::codec::Codec;
use crate::fault::{FaultDecision, FaultPlan};
use crate::latency::LatencyModel;
use crate::message::{Envelope, SimTime, Wire};
use crate::stats::NetStats;
use crate::trace::{Trace, TraceEntry};
use p2p_topology::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A protocol participant. One instance per node; handlers are atomic (run
/// to completion) and communicate only through the [`Context`].
pub trait Peer<M>: Send {
    /// Handles one delivered message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Context<M>);

    /// Delivery entry point used by the runtimes. `msg_id` identifies the
    /// *send*: fault-injected duplicates share it, so an implementation can
    /// provide exactly-once semantics by remembering seen ids (the default
    /// just forwards to [`Peer::on_message`], i.e. at-least-once).
    fn on_envelope(&mut self, from: NodeId, msg_id: u64, msg: M, ctx: &mut Context<M>) {
        let _ = msg_id;
        self.on_message(from, msg, ctx);
    }

    /// Churn hook: the peer's process dies. All in-memory state should be
    /// wiped here; only what the peer persisted elsewhere may survive. No
    /// context — a dying process sends nothing.
    fn on_crash(&mut self) {}

    /// Churn hook: the peer's process comes back after a crash. This is
    /// where a durable peer recovers from storage and sends whatever
    /// resynchronisation traffic its protocol defines.
    fn on_restart(&mut self, ctx: &mut Context<M>) {
        let _ = ctx;
    }
}

/// An outgoing message queued by a handler.
#[derive(Debug, Clone)]
pub struct Outgoing<M> {
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Extra delay beyond link latency (processing cost, scheduled work).
    pub delay: SimTime,
}

/// Handler-side view of the network: the only way peers interact with the
/// outside world.
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    id: NodeId,
    charged: SimTime,
    outgoing: Vec<Outgoing<M>>,
}

impl<M> Context<M> {
    /// Creates a context for one handler invocation (used by both runtimes).
    pub fn new(now: SimTime, id: NodeId) -> Self {
        Context {
            now,
            id,
            charged: SimTime::ZERO,
            outgoing: Vec::new(),
        }
    }

    /// Current time (virtual in the simulator, wall-clock in the threaded
    /// runtime).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The handling node's own id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends a message (subject to link latency and any charged processing
    /// time).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outgoing.push(Outgoing {
            to,
            msg,
            delay: self.charged,
        });
    }

    /// Sends after an explicit additional delay.
    pub fn send_after(&mut self, delay: SimTime, to: NodeId, msg: M) {
        self.outgoing.push(Outgoing {
            to,
            msg,
            delay: self.charged + delay,
        });
    }

    /// Charges local processing time: all *subsequent* sends from this
    /// handler are delayed by the accumulated charge. Models per-tuple query
    /// evaluation cost without a full node-busy queueing model.
    pub fn charge(&mut self, cost: SimTime) {
        self.charged += cost;
    }

    /// Drains queued sends (runtime internal).
    pub fn take_outgoing(&mut self) -> Vec<Outgoing<M>> {
        std::mem::take(&mut self.outgoing)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Virtual time of the last delivered event.
    pub virtual_time: SimTime,
    /// Number of deliveries processed.
    pub delivered: u64,
    /// True iff the event queue drained; false iff the event budget was hit
    /// (a diverging protocol, or faults that stranded the run).
    pub quiescent: bool,
}

/// What a queued event does when it fires.
enum Action<M> {
    /// Deliver a message.
    Deliver(Envelope<M>),
    /// Crash a peer (churn plan).
    Crash(NodeId),
    /// Restart a crashed peer (churn plan).
    Restart(NodeId),
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    action: Action<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator over a homogeneous peer type `P`.
pub struct Simulator<M: Wire, P: Peer<M>> {
    peers: BTreeMap<NodeId, P>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    latency: Box<dyn LatencyModel>,
    fault: FaultPlan,
    stats: NetStats,
    trace: Trace,
    now: SimTime,
    seq: u64,
    next_msg_id: u64,
    max_events: u64,
    fifo_pipes: bool,
    fifo_floor: BTreeMap<(NodeId, NodeId), SimTime>,
    /// Peers currently crashed: deliveries to them are dropped.
    down: std::collections::BTreeSet<NodeId>,
    /// Wire codec messages are measured (and notionally carried) in.
    codec: Codec,
}

impl<M: Wire, P: Peer<M>> Simulator<M, P> {
    /// Creates a simulator with the given latency model, reliable transport
    /// and tracing off.
    pub fn new(latency: Box<dyn LatencyModel>) -> Self {
        Simulator {
            peers: BTreeMap::new(),
            queue: BinaryHeap::new(),
            latency,
            fault: FaultPlan::none(),
            stats: NetStats::default(),
            trace: Trace::default(),
            now: SimTime::ZERO,
            seq: 0,
            next_msg_id: 0,
            max_events: 10_000_000,
            fifo_pipes: true,
            fifo_floor: BTreeMap::new(),
            down: std::collections::BTreeSet::new(),
            codec: Codec::default(),
        }
    }

    /// Selects the wire codec. Every message sent from now on is measured
    /// (once, at send) under this codec.
    pub fn set_codec(&mut self, codec: Codec) {
        self.codec = codec;
    }

    /// The wire codec in effect.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Enables/disables per-link FIFO delivery. On by default: JXTA pipes
    /// (and any TCP-backed transport) never reorder messages on one link, and
    /// the update protocol's completeness flags rely on that. Disable only to
    /// study protocol behaviour under adversarial reordering.
    pub fn set_fifo_pipes(&mut self, fifo: bool) {
        self.fifo_pipes = fifo;
    }

    /// Installs a fault plan.
    pub fn set_fault_plan(&mut self, fault: FaultPlan) {
        self.fault = fault;
    }

    /// Schedules a churn plan: each crash/restart pair becomes a pair of
    /// control events at `base + offset`. While a peer is down, deliveries
    /// to it are dropped; at the restart event its
    /// [`Peer::on_restart`] hook runs (with a context, so it can send).
    pub fn schedule_churn(&mut self, plan: &crate::churn::ChurnPlan, base: SimTime) {
        for ev in plan.events() {
            for (at, action) in [
                (base + ev.crash_at, Action::Crash(ev.node)),
                (base + ev.restart_at, Action::Restart(ev.node)),
            ] {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Event { at, seq, action }));
            }
        }
    }

    /// True iff `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down.contains(&node)
    }

    /// Enables message tracing with the given capacity.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = Trace::with_capacity(capacity);
    }

    /// Caps the number of deliveries per [`Simulator::run`] (safety net
    /// against diverging protocols).
    pub fn set_max_events(&mut self, max_events: u64) {
        self.max_events = max_events;
    }

    /// Registers a peer.
    pub fn add_peer(&mut self, id: NodeId, peer: P) {
        self.peers.insert(id, peer);
    }

    /// Immutable access to a peer's state (assertions, result extraction).
    pub fn peer(&self, id: NodeId) -> Option<&P> {
        self.peers.get(&id)
    }

    /// Mutable access to a peer's state.
    pub fn peer_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.peers.get_mut(&id)
    }

    /// Iterates peers in id order.
    pub fn peers(&self) -> impl Iterator<Item = (&NodeId, &P)> {
        self.peers.iter()
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The trace (empty unless enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Injects a message from an external driver, delivered after link
    /// latency from the current time.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.route(from, to, msg, SimTime::ZERO);
    }

    /// Schedules a message for delivery at an absolute time (dynamic-change
    /// scripts). No latency is added: `at` *is* the delivery time.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        let size = msg.wire_size_with(self.codec);
        self.stats.record_send(from, msg.kind(), size);
        let seq = self.seq;
        self.seq += 1;
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.queue.push(Reverse(Event {
            at,
            seq,
            action: Action::Deliver(Envelope {
                from,
                to,
                msg,
                sent_at: self.now,
                seq,
                msg_id,
                size,
            }),
        }));
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: M, extra: SimTime) {
        // The one measurement of this message: the size travels on the
        // envelope, so delivery accounting never re-serializes the payload.
        let size = msg.wire_size_with(self.codec);
        self.stats.record_send(from, msg.kind(), size);
        let copies = match self.fault.decide(from, to, self.now) {
            FaultDecision::Drop => {
                self.stats.dropped += 1;
                0
            }
            FaultDecision::Deliver => 1,
            FaultDecision::Duplicate => {
                self.stats.duplicated += 1;
                2
            }
        };
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        for _ in 0..copies {
            let latency = self.latency.latency(from, to, size);
            let mut at = self.now + extra + latency;
            if self.fifo_pipes {
                let floor = self.fifo_floor.entry((from, to)).or_insert(SimTime::ZERO);
                if at < *floor {
                    at = *floor;
                }
                *floor = at;
            }
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Event {
                at,
                seq,
                action: Action::Deliver(Envelope {
                    from,
                    to,
                    msg: msg.clone(),
                    sent_at: self.now,
                    seq,
                    msg_id,
                    size,
                }),
            }));
        }
    }

    /// Delivers the next event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        self.now = event.at;
        let env = match event.action {
            Action::Deliver(env) => env,
            Action::Crash(node) => {
                self.down.insert(node);
                self.stats.peer_crashes += 1;
                if self.trace.enabled() {
                    self.trace.record(TraceEntry {
                        at: self.now,
                        from: node,
                        to: node,
                        kind: "Crash",
                        session: None,
                        detail: String::new(),
                    });
                }
                if let Some(p) = self.peers.get_mut(&node) {
                    p.on_crash();
                }
                return true;
            }
            Action::Restart(node) => {
                self.down.remove(&node);
                self.stats.peer_restarts += 1;
                if self.trace.enabled() {
                    self.trace.record(TraceEntry {
                        at: self.now,
                        from: node,
                        to: node,
                        kind: "Restart",
                        session: None,
                        detail: String::new(),
                    });
                }
                if let Some(p) = self.peers.get_mut(&node) {
                    let mut ctx = Context::new(self.now, node);
                    p.on_restart(&mut ctx);
                    for out in ctx.take_outgoing() {
                        self.route(node, out.to, out.msg, out.delay);
                    }
                }
                return true;
            }
        };
        let Envelope {
            from,
            to,
            msg,
            msg_id,
            size,
            ..
        } = env;
        if !self.peers.contains_key(&to) || self.down.contains(&to) {
            // Message to a node that does not exist (yet / anymore) or is
            // currently crashed — exactly like packets to a dead process.
            self.stats.dropped += 1;
            return true;
        }
        self.stats.record_delivery(to, size, msg.session());
        if self.trace.enabled() {
            self.trace.record(TraceEntry {
                at: self.now,
                from,
                to,
                kind: msg.kind(),
                session: msg.session(),
                detail: String::new(),
            });
        }
        let mut ctx = Context::new(self.now, to);
        self.peers
            .get_mut(&to)
            .expect("checked above")
            .on_envelope(from, msg_id, msg, &mut ctx);
        for out in ctx.take_outgoing() {
            self.route(to, out.to, out.msg, out.delay);
        }
        true
    }

    /// Runs until quiescence or the event budget.
    pub fn run(&mut self) -> RunOutcome {
        let start_messages = self.stats.total_messages;
        let mut processed = 0u64;
        let quiescent = loop {
            if processed >= self.max_events {
                break false;
            }
            if !self.step() {
                break true;
            }
            processed += 1;
        };
        self.stats.finished_at = self.now;
        RunOutcome {
            virtual_time: self.now,
            delivered: self.stats.total_messages - start_messages,
            quiescent,
        }
    }

    /// Consumes the simulator, returning its peers (id order) — used by
    /// drivers that need to hand peer state onward.
    pub fn into_peers(self) -> Vec<(NodeId, P)> {
        self.peers.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{ConstantLatency, UniformLatency};

    /// Ping-pong test message.
    #[derive(Debug, Clone)]
    struct Ping(u32);

    impl Wire for Ping {
        fn wire_size(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "Ping"
        }
    }

    /// A peer that decrements the counter and bounces the message back until
    /// it reaches zero.
    struct Bouncer {
        seen: Vec<u32>,
    }

    impl Peer<Ping> for Bouncer {
        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
            self.seen.push(msg.0);
            if msg.0 > 0 {
                ctx.send(from, Ping(msg.0 - 1));
            }
        }
    }

    fn two_bouncers(latency: Box<dyn LatencyModel>) -> Simulator<Ping, Bouncer> {
        let mut sim = Simulator::new(latency);
        sim.add_peer(NodeId(0), Bouncer { seen: vec![] });
        sim.add_peer(NodeId(1), Bouncer { seen: vec![] });
        sim
    }

    #[test]
    fn ping_pong_terminates_with_exact_counts() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime::from_millis(1))));
        sim.inject(NodeId(0), NodeId(1), Ping(5));
        let outcome = sim.run();
        assert!(outcome.quiescent);
        assert_eq!(outcome.delivered, 6); // 5,4,3,2,1,0
        assert_eq!(outcome.virtual_time, SimTime::from_millis(6));
        assert_eq!(sim.peer(NodeId(1)).unwrap().seen, vec![5, 3, 1]);
        assert_eq!(sim.peer(NodeId(0)).unwrap().seen, vec![4, 2, 0]);
        assert_eq!(sim.stats().total_messages, 6);
        assert_eq!(sim.stats().total_bytes, 24);
    }

    #[test]
    fn deterministic_under_jitter() {
        let run = || {
            let mut sim = two_bouncers(Box::new(UniformLatency::new(
                SimTime(100),
                SimTime(1_000),
                1234,
            )));
            sim.inject(NodeId(0), NodeId(1), Ping(20));
            let o = sim.run();
            (o.virtual_time, o.delivered)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn event_budget_stops_runaway() {
        /// A peer that echoes forever.
        struct Echo;
        impl Peer<Ping> for Echo {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                ctx.send(from, msg);
            }
        }
        let mut sim: Simulator<Ping, Echo> = Simulator::new(Box::new(ConstantLatency(SimTime(1))));
        sim.add_peer(NodeId(0), Echo);
        sim.add_peer(NodeId(1), Echo);
        sim.set_max_events(100);
        sim.inject(NodeId(0), NodeId(1), Ping(0));
        let o = sim.run();
        assert!(!o.quiescent);
        assert_eq!(o.delivered, 100);
    }

    #[test]
    fn message_to_unknown_node_is_dropped() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.inject(NodeId(0), NodeId(9), Ping(3));
        let o = sim.run();
        assert!(o.quiescent);
        assert_eq!(o.delivered, 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn drops_break_the_chain() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_fault_plan(FaultPlan::random(100, 0, 1));
        sim.inject(NodeId(0), NodeId(1), Ping(5));
        let o = sim.run();
        assert!(o.quiescent);
        assert_eq!(o.delivered, 0);
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn duplication_inflates_deliveries() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_fault_plan(FaultPlan::random(0, 100, 1));
        sim.inject(NodeId(0), NodeId(1), Ping(1));
        let o = sim.run();
        assert!(o.quiescent);
        // Ping(1) duplicated → two Ping(1) deliveries → each bounces a
        // Ping(0), also duplicated → four Ping(0) deliveries.
        assert_eq!(o.delivered, 6);
        assert!(sim.stats().duplicated >= 2);
    }

    #[test]
    fn charge_delays_subsequent_sends() {
        struct Charger;
        impl Peer<Ping> for Charger {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                if msg.0 == 2 {
                    ctx.charge(SimTime::from_millis(10));
                    ctx.send(from, Ping(1));
                }
            }
        }
        let mut sim: Simulator<Ping, Charger> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(1))));
        sim.add_peer(NodeId(0), Charger);
        sim.add_peer(NodeId(1), Charger);
        sim.inject(NodeId(0), NodeId(1), Ping(2));
        let o = sim.run();
        // 1ms (inject latency) + 10ms charge + 1ms latency.
        assert_eq!(o.virtual_time, SimTime::from_millis(12));
    }

    #[test]
    fn inject_at_delivers_at_absolute_time() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.inject_at(SimTime::from_millis(500), NodeId(0), NodeId(1), Ping(0));
        let o = sim.run();
        assert_eq!(o.virtual_time, SimTime::from_millis(500));
        assert_eq!(o.delivered, 1);
    }

    #[test]
    fn trace_captures_deliveries() {
        let mut sim = two_bouncers(Box::new(ConstantLatency(SimTime(1))));
        sim.set_trace_capacity(10);
        sim.inject(NodeId(0), NodeId(1), Ping(2));
        sim.run();
        let kinds: Vec<_> = sim.trace().entries().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["Ping", "Ping", "Ping"]);
    }

    #[test]
    fn churn_drops_deliveries_while_down_and_fires_hooks() {
        use crate::churn::ChurnPlan;

        /// A bouncer that also counts crash/restart hook invocations and
        /// wipes its memory on crash like a real process would.
        struct Churny {
            seen: Vec<u32>,
            crashes: u32,
            restarts: u32,
        }
        impl Peer<Ping> for Churny {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                self.seen.push(msg.0);
                if msg.0 > 0 {
                    ctx.send(from, Ping(msg.0 - 1));
                }
            }
            fn on_crash(&mut self) {
                self.crashes += 1;
                self.seen.clear();
            }
            fn on_restart(&mut self, ctx: &mut Context<Ping>) {
                self.restarts += 1;
                // Resync-style traffic from the restart hook must flow.
                ctx.send(NodeId(0), Ping(0));
            }
        }

        let mut sim: Simulator<Ping, Churny> =
            Simulator::new(Box::new(ConstantLatency(SimTime::from_millis(1))));
        for id in [0u32, 1] {
            sim.add_peer(
                NodeId(id),
                Churny {
                    seen: vec![],
                    crashes: 0,
                    restarts: 0,
                },
            );
        }
        // Node 1 is down between 1.5 ms and 4.5 ms: the Ping(9) chain dies
        // when the second hop (at 2 ms) hits the crashed peer.
        sim.schedule_churn(
            &ChurnPlan::none().with_crash(
                NodeId(1),
                SimTime::from_micros(1_500),
                SimTime::from_micros(4_500),
            ),
            SimTime::ZERO,
        );
        sim.inject(NodeId(0), NodeId(1), Ping(9));
        let o = sim.run();
        assert!(o.quiescent);
        let p1 = sim.peer(NodeId(1)).unwrap();
        assert_eq!(p1.crashes, 1);
        assert_eq!(p1.restarts, 1);
        // Ping(9) arrived before the crash, was wiped, and the chain's
        // Ping(7) (due at 3 ms) was dropped while down.
        assert!(p1.seen.is_empty() || !p1.seen.contains(&9));
        assert_eq!(sim.stats().peer_crashes, 1);
        assert_eq!(sim.stats().peer_restarts, 1);
        assert!(sim.stats().dropped >= 1, "delivery while down must drop");
        // The restart hook's message reached node 0 (it bounces Ping(0)
        // into `seen` at node 0).
        assert!(sim.peer(NodeId(0)).unwrap().seen.contains(&0));
        assert!(!sim.is_down(NodeId(1)));
    }

    #[test]
    fn churned_runs_are_deterministic() {
        use crate::churn::ChurnPlan;
        let run = || {
            let mut sim = two_bouncers(Box::new(UniformLatency::new(
                SimTime(100),
                SimTime(1_000),
                77,
            )));
            sim.schedule_churn(
                &ChurnPlan::none().with_crash(NodeId(1), SimTime(2_000), SimTime(5_000)),
                SimTime::ZERO,
            );
            sim.inject(NodeId(0), NodeId(1), Ping(30));
            let o = sim.run();
            (o.virtual_time, o.delivered, sim.stats().dropped)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fifo_order_for_equal_latency() {
        // Two messages sent in one handler arrive in send order.
        struct Burst;
        impl Peer<Ping> for Burst {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                if msg.0 == 9 {
                    ctx.send(from, Ping(1));
                    ctx.send(from, Ping(2));
                }
            }
        }
        struct Sink {
            seen: Vec<u32>,
        }
        // Heterogeneous peers via an enum wrapper.
        enum Node {
            Burst(Burst),
            Sink(Sink),
        }
        impl Peer<Ping> for Node {
            fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Context<Ping>) {
                match self {
                    Node::Burst(b) => b.on_message(from, msg, ctx),
                    Node::Sink(s) => s.seen.push(msg.0),
                }
            }
        }
        let mut sim: Simulator<Ping, Node> = Simulator::new(Box::new(ConstantLatency(SimTime(5))));
        sim.add_peer(NodeId(0), Node::Sink(Sink { seen: vec![] }));
        sim.add_peer(NodeId(1), Node::Burst(Burst));
        sim.inject(NodeId(0), NodeId(1), Ping(9));
        sim.run();
        match sim.peer(NodeId(0)).unwrap() {
            Node::Sink(s) => assert_eq!(s.seen, vec![1, 2]),
            _ => unreachable!(),
        }
    }
}
