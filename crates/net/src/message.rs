//! Message envelopes, virtual time, and the [`Wire`] trait.

use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual time in microseconds. The discrete-event simulator advances this;
/// the threaded runtime reports wall-clock time through the same type so the
/// statistics pipeline is runtime-agnostic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// What the network layer needs to know about a protocol message: its
/// wire size (for byte accounting and bandwidth-aware latency), a short
/// kind label (for per-kind statistics and Figure-1 style traces), and —
/// for protocols with interleaved update sessions — which session the
/// message belongs to (for per-session traffic attribution).
pub trait Wire: Clone + fmt::Debug + Send + 'static {
    /// Serialized size in bytes. Implementations for serde-serializable
    /// messages should report the **real** encoded size via
    /// [`encoded_wire_size`] rather than a hand-maintained approximation.
    fn wire_size(&self) -> usize;
    /// Serialized size under a specific wire codec. The default ignores the
    /// codec and reports [`Wire::wire_size`]; message types that support
    /// the binary codec override this to report the codec-true length.
    /// The runtimes call it **once per send** and carry the result on the
    /// envelope — implementations are the single measurement point.
    fn wire_size_with(&self, codec: crate::codec::Codec) -> usize {
        let _ = codec;
        self.wire_size()
    }
    /// Short stable label, e.g. `"Query"`, `"Answer"`, `"requestNodes"`.
    fn kind(&self) -> &'static str;
    /// The update session this message belongs to, if any. The runtimes use
    /// it to attribute traces and per-session traffic counters; `None`
    /// (the default) marks session-less control traffic.
    fn session(&self) -> Option<crate::session::SessionId> {
        None
    }
}

/// The codec-true wire size of a message: the exact byte length of its
/// serialized form (the same codec the storage layer frames records with).
/// This replaced the old per-type `fields * 8` style estimates, so byte
/// accounting, bandwidth-aware latency and the experiments all see what a
/// real transport would carry.
///
/// The length comes out of the serializer's single counting pass (protocol
/// messages carry no floats, so the encoder cannot fail), and each call
/// registers one encode pass with [`crate::codec::encode_passes`] — the
/// hook the hot-path regression tests use to prove messages are measured
/// once per send, not re-serialized at every hop.
pub fn encoded_wire_size<T: serde::Serialize>(msg: &T) -> usize {
    crate::codec::note_encode_pass();
    serde_json::encoded_len(msg).expect("wire messages serialize without floats")
}

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
    /// Time the message was sent.
    pub sent_at: SimTime,
    /// Global sequence number (total order of sends; ties in delivery time
    /// are broken by it, making the simulator deterministic).
    pub seq: u64,
    /// Message identity, assigned at *send* time: fault-injected duplicate
    /// deliveries share one `msg_id`, which is what lets receivers implement
    /// exactly-once processing (see `Peer::on_envelope`).
    pub msg_id: u64,
    /// Wire size in bytes under the runtime's configured codec, measured
    /// **once** when the message was sent. Delivery-side accounting reads
    /// this instead of re-serializing the payload.
    pub size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_micros(500);
        assert_eq!((a + b).as_micros(), 2_500);
        assert_eq!((a - b).as_micros(), 1_500);
        assert_eq!((b - a).as_micros(), 0); // saturating
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 2_500);
    }

    #[test]
    fn time_display() {
        assert_eq!(SimTime::from_micros(1_234).to_string(), "1.234ms");
    }
}
