//! # p2p-net
//!
//! The messaging substrate for the P2P database network — our substitute for
//! the JXTA layer the paper's prototype was built on (Section 5). JXTA gave
//! the authors peer naming, reliable pipes, message envelopes and resource
//! discovery; this crate provides the same capabilities as a library, in two
//! interchangeable runtimes:
//!
//! * [`sim::Simulator`] — a **deterministic discrete-event simulator**:
//!   seeded latency models, per-event ordering by `(time, sequence)`,
//!   fault injection (drops, duplication, link outages), scheduled peer
//!   churn (crash/restart with [`Peer::on_crash`]/[`Peer::on_restart`]
//!   hooks), byte accounting and quiescence detection. Virtual time makes
//!   the paper's "execution time" metric reproducible, which the original
//!   testbed could not be.
//! * [`threaded::ThreadedNetwork`] — a real multi-threaded runtime over
//!   crossbeam channels, one thread per peer, with quiescence detected by an
//!   outstanding-message counter. It runs the *same* [`Peer`] code, giving
//!   the asynchronous execution model of the paper on actual parallelism.
//!   Capped at a configurable peer count — beyond it, use the sharded
//!   runtime.
//! * [`sharded::ShardedNetwork`] — the scalable parallel runtime: `T` shard
//!   threads multiplex `n/T` peers each (mailbox scheduling, work stealing,
//!   crossbeam cross-shard hand-off), with the outstanding-message counter
//!   generalized to a sharded quiescence barrier. Runs 10k+ peers on all
//!   cores.
//!
//! Protocol crates implement [`Peer`] and never talk to a runtime directly;
//! everything observable (message counts, bytes, traces) flows through
//! [`stats::NetStats`] and [`trace::Trace`] — the paper's "statistical
//! module".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod codec;
pub mod fault;
pub mod latency;
pub mod message;
pub mod session;
pub mod sharded;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod trace;

pub use churn::{ChurnPlan, CrashEvent};
pub use codec::Codec;
pub use fault::FaultPlan;
pub use latency::{
    BandwidthLatency, ConstantLatency, LatencyModel, PerEdgeLatency, UniformLatency,
};
pub use message::{encoded_wire_size, Envelope, SimTime, Wire};
pub use session::SessionId;
pub use sharded::{ShardPlacement, ShardedNetwork};
pub use sim::{Context, Peer, RunOutcome, Simulator};
pub use stats::{NetStats, NodeNetStats, SessionNetStats};
pub use threaded::{ThreadedError, ThreadedNetwork, WorkerPanic};
pub use trace::{Trace, TraceEntry};
