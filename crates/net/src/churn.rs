//! Peer churn: scheduled crash/restart events.
//!
//! The fault layer ([`crate::fault`]) breaks the *transport* (drops,
//! duplication, link outages); churn breaks the *peers themselves*. A
//! crashed peer loses all in-memory state and receives nothing while down
//! — every message addressed to it is dropped, exactly like packets sent
//! to a dead process. At the restart time the runtime calls the peer's
//! [`crate::Peer::on_restart`] hook, which is where a durable peer rebuilds
//! itself from storage and reconciles missed traffic (see `p2p_storage` and
//! `p2p_core`'s resync protocol).
//!
//! Like every other source of nondeterminism in this crate, churn is a
//! deterministic schedule: the plan is data, so a churned run is a pure
//! function of its inputs and can be replayed bit-for-bit.

use crate::message::SimTime;
use p2p_topology::NodeId;

/// One scheduled crash/restart of a peer. Offsets are relative to the
/// moment the plan is scheduled onto a simulator (the driver schedules it
/// when the update session starts, so "crash at 5 ms" means five
/// milliseconds into the session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The peer that dies.
    pub node: NodeId,
    /// Offset at which the peer crashes (state wiped, deliveries dropped).
    pub crash_at: SimTime,
    /// Offset at which the peer comes back (must be after `crash_at`).
    pub restart_at: SimTime,
}

/// A deterministic schedule of peer crashes and restarts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<CrashEvent>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// Adds one crash/restart pair. Panics if the restart does not strictly
    /// follow the crash (a zero-length outage would be unobservable), or if
    /// the window overlaps an already-scheduled outage of the same node —
    /// overlapping windows would let the inner restart revive a peer the
    /// outer window still declares dead.
    pub fn with_crash(mut self, node: NodeId, crash_at: SimTime, restart_at: SimTime) -> Self {
        assert!(
            restart_at > crash_at,
            "restart {restart_at} must follow crash {crash_at}"
        );
        for e in self.events.iter().filter(|e| e.node == node) {
            assert!(
                restart_at <= e.crash_at || crash_at >= e.restart_at,
                "outage [{crash_at}, {restart_at}) of {node} overlaps \
                 scheduled outage [{}, {})",
                e.crash_at,
                e.restart_at
            );
        }
        self.events.push(CrashEvent {
            node,
            crash_at,
            restart_at,
        });
        self
    }

    /// The scheduled events.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// True iff no churn is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled crashes.
    pub fn crash_count(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_collects_events() {
        let plan = ChurnPlan::none()
            .with_crash(NodeId(1), SimTime(10), SimTime(20))
            .with_crash(NodeId(2), SimTime(15), SimTime(30));
        assert_eq!(plan.crash_count(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.events()[0].node, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "must follow crash")]
    fn restart_before_crash_panics() {
        let _ = ChurnPlan::none().with_crash(NodeId(0), SimTime(10), SimTime(10));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_windows_for_one_node_panic() {
        let _ = ChurnPlan::none()
            .with_crash(NodeId(1), SimTime(10), SimTime(50))
            .with_crash(NodeId(1), SimTime(20), SimTime(30));
    }

    #[test]
    fn back_to_back_and_cross_node_windows_are_fine() {
        let plan = ChurnPlan::none()
            .with_crash(NodeId(1), SimTime(10), SimTime(20))
            .with_crash(NodeId(1), SimTime(20), SimTime(30))
            .with_crash(NodeId(2), SimTime(15), SimTime(25));
        assert_eq!(plan.crash_count(), 3);
    }
}
