//! Minimal aligned-text table rendering for experiment reports.

/// A simple text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Least-squares linear fit `y = a + b·x`; returns `(a, b, r_squared)`.
/// Used to verify the paper's "execution time is linear with respect to the
/// depth of the structure".
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (0.0, 0.0, 1.0);
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (sy / n, 0.0, 1.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot.abs() < f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("name    value"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn perfect_line_has_r2_one() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b, r2) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_has_poor_r2_against_line_through_origin() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, (i * i) as f64)).collect();
        let (_, _, r2) = linear_fit(&pts);
        assert!(r2 < 0.99, "r2={r2}");
    }
}
