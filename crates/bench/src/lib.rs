//! # p2p-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (see EXPERIMENTS.md at the workspace root for the index and
//! the recorded outputs). The [`experiments`] module contains one function
//! per experiment; the `repro` binary prints them all; the Criterion benches
//! under `benches/` time the same functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::{RunPoint, Scale};
pub use table::{linear_fit, Table};
