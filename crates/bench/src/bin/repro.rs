//! `repro` — regenerates every experiment table and figure of the paper.
//!
//! ```text
//! cargo run -p p2p-bench --bin repro --release             # standard scale
//! cargo run -p p2p-bench --bin repro --release -- --quick  # CI scale
//! cargo run -p p2p-bench --bin repro --release -- --paper  # ~1000 recs/node
//! cargo run -p p2p-bench --bin repro --release -- e4 e5    # selected only
//! ```

use p2p_bench::experiments as exp;
use p2p_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Standard
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |id: &str| selected.is_empty() || selected.contains(&id);

    println!("p2pdb experiment reproduction (scale: {scale:?})");
    println!("==================================================\n");

    if want("e1") {
        println!("E1 — Section 2: maximal dependency paths of the running example");
        println!("(corrected per Definitions 6–7; see EXPERIMENTS.md for the diff)\n");
        println!("{}", exp::e1_paper_paths().render());
    }
    if want("e2") {
        println!("E2 — Figure 1: sample execution of discovery + update (:A :B :C :E)\n");
        println!("{}", exp::e2_figure1_trace());
    }
    if want("e3") || want("e7") {
        println!("E3/E7 — Section 5 scalability: topologies × sizes × distributions");
        println!("({} records/node)\n", scale.records());
        println!("{}", exp::e3_scalability(scale).render());
    }
    if want("e4") {
        println!("E4 — Section 5 claim: execution time linear in depth\n");
        let (table, fits) = exp::e4_depth_linearity(scale);
        println!("{}", table.render());
        for (family, slope, r2) in fits {
            println!("  {family}: time ≈ {slope:.3} ms/depth, R² = {r2:.4}");
        }
        println!();
    }
    if want("e5") {
        println!("E5 — async (eager) vs sync (rounds): the Section 1 trade-off\n");
        println!("{}", exp::e5_modes(scale).render());
    }
    if want("e6") {
        println!("E6 — delta optimization ablation (Section 3)\n");
        println!("{}", exp::e6_delta(scale).render());
    }
    if want("e8") {
        println!("E8 — dynamic changes: Theorem 2 termination + Definition 9 envelope\n");
        println!("{}", exp::e8_dynamic().render());
    }
    if want("e9") {
        println!("E9 — Theorem 3: separated subset closes despite external churn\n");
        println!("{}", exp::e9_separation().render());
    }
    if want("e10") {
        println!("E10 — topology discovery cost\n");
        println!("{}", exp::e10_discovery().render());
    }
    if want("e11") {
        println!("E11 — distributed vs centralized vs acyclic baselines\n");
        println!("{}", exp::e11_baselines(scale).render());
    }
    if want("e12") {
        println!("E12 — maximal-path growth on cliques (2EXPTIME flavour) + Lemma 1\n");
        println!("{}", exp::e12_growth().render());
    }
    if want("e13") {
        println!("E13 — initiation ablation: flood vs strict-A4 query propagation\n");
        println!("{}", exp::e13_initiation(scale).render());
    }
    if want("e15") {
        println!("E15 — durability & churn: crash/restart with WAL + snapshot recovery\n");
        let (table, summary) = exp::e15_churn(scale);
        println!("{}", table.render());
        println!(
            "ring(8), {} crashes: resync re-shipped {} rows vs {} for a full re-propagation ({:.1}x cheaper), {} redrive(s)",
            summary.crashes,
            summary.resync_rows,
            summary.full_repropagation_rows,
            summary.full_repropagation_rows as f64 / summary.resync_rows.max(1) as f64,
            summary.redrives,
        );
        println!(
            "churn smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (unrecovered crash, fix-point mismatch, or resync not cheaper than re-propagation)"
            }
        );
    }
    if want("e14") {
        println!("E14 — delta-driven wave answers vs full re-ship (rounds mode)\n");
        let (table, summary) = exp::e14_delta_waves(scale);
        println!("{}", table.render());
        println!(
            "cyclic topology: delta ships {} rows vs {} full ({:.1}x), rows_saved = {}",
            summary.delta_rows_shipped,
            summary.full_rows_shipped,
            summary.full_rows_shipped as f64 / summary.delta_rows_shipped.max(1) as f64,
            summary.rows_saved,
        );
        println!(
            "delta-wave smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (rows_saved == 0 or <3x saving or fix-point mismatch)"
            }
        );
    }
    if want("e17") {
        println!("E17 — concurrent update sessions: interleaved initiators vs serial runs\n");
        let (table, summary) = exp::e17_concurrent(scale);
        println!("{}", table.render());
        println!(
            "ring(8), {} writer sessions: interleaved {:.2} ms vs serial {:.2} ms ({:.2}x), \
             {:.1} sessions/s, peak {} concurrent, {} leaked entries",
            summary.sessions,
            summary.concurrent_time_ms,
            summary.serial_time_ms,
            summary.serial_time_ms / summary.concurrent_time_ms.max(1e-9),
            summary.sessions_per_s,
            summary.concurrent_peak,
            summary.leaked_entries,
        );
        let json = exp::concurrent_summary_json(&summary);
        match std::fs::write("BENCH_e17.json", &json) {
            Ok(()) => println!("wrote BENCH_e17.json"),
            Err(e) => println!("could not write BENCH_e17.json: {e}"),
        }
        println!(
            "concurrent smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (fix-point mismatch, unclosed session, leaked session state, \
                 or no interleaving speedup)"
            }
        );
    }
    if want("e18") {
        println!("E18 — binary wire codec: whole-run wire bytes and time per codec\n");
        let (table, summary) = exp::e18_codec(scale);
        println!("{}", table.render());
        println!(
            "all workloads: {} wire bytes (json) vs {} (binary) — {:.2}x shrink; \
             payloads {} B vs {} B ({:.2}x); {} vs {} messages",
            summary.json_bytes,
            summary.binary_bytes,
            summary.shrink,
            summary.payload_bytes_json,
            summary.payload_bytes_binary,
            summary.payload_bytes_json as f64 / summary.payload_bytes_binary.max(1) as f64,
            summary.json_messages,
            summary.binary_messages,
        );
        let json = exp::codec_summary_json(&summary);
        match std::fs::write("BENCH_e18.json", &json) {
            Ok(()) => println!("wrote BENCH_e18.json"),
            Err(e) => println!("could not write BENCH_e18.json: {e}"),
        }
        println!(
            "codec smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (fix-point mismatch, message-count drift, or wire shrink below 3x)"
            }
        );
    }
    if want("e19") {
        println!("E19 — scaling: 10k-peer updates, expander overlays, shared fan-out\n");
        let (table, summary) = exp::e19_scale(scale);
        println!("{}", table.render());
        println!(
            "largest expander run: {} peers in {:.0} ms wall clock; \
             fan-out to {} receivers: {:.2} ms per-receiver encodes vs {:.2} ms shared ({:.0}x)",
            summary.big_run_nodes,
            summary.big_run_wall_ms,
            summary.fanout_receivers,
            summary.fanout_legacy_ms,
            summary.fanout_shared_ms,
            summary.fanout_speedup,
        );
        let json = exp::scale_summary_json(&summary);
        match std::fs::write("BENCH_e19.json", &json) {
            Ok(()) => println!("wrote BENCH_e19.json"),
            Err(e) => println!("could not write BENCH_e19.json: {e}"),
        }
        println!(
            "scale smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (unclosed run, fix-point off the closed form, 10k run \
                 over 30s, or fan-out speedup below 5x)"
            }
        );
    }
    if want("e20") {
        println!("E20 — real sockets: 8-process ring cluster vs the in-process simulator\n");
        match exp::e20_transport(scale) {
            Ok((table, summary)) => {
                println!("{}", table.render());
                println!(
                    "cluster of {}: {} frames / {} B (json) vs {} frames / {} B (binary) \
                     on real TCP; sim shipped {} / {} messages",
                    summary.nodes,
                    summary.json.frames,
                    summary.json.bytes,
                    summary.binary.frames,
                    summary.binary.bytes,
                    summary.json.sim_messages,
                    summary.binary.sim_messages,
                );
                let json = exp::transport_summary_json(&summary);
                match std::fs::write("BENCH_e20.json", &json) {
                    Ok(()) => println!("wrote BENCH_e20.json"),
                    Err(e) => println!("could not write BENCH_e20.json: {e}"),
                }
                println!(
                    "transport smoke: {}\n",
                    if summary.ok() {
                        "OK"
                    } else {
                        "FAILED (cluster fix-point diverged from the simulator/oracle, \
                         no frames crossed the wire, or binary shipped more bytes than json)"
                    }
                );
            }
            Err(e) => println!("transport smoke: FAILED ({e})\n"),
        }
    }
    if want("e21") {
        println!("E21 — parallel runtime: sharded worker pool vs the simulator\n");
        let (table, summary) = exp::e21_parallel(scale);
        println!("{}", table.render());
        println!(
            "host cores: {}; 1k expander at 4 shards: {:.2}x vs 1 shard; \
             10k at 8 shards: {:.2}x; ring placement: {} cross-shard sends \
             round-robin vs {} contiguous blocks",
            summary.host_cores,
            summary.speedup_small_4,
            summary.speedup_big_8,
            summary.rr_cross_shard,
            summary.blocks_cross_shard,
        );
        let json = exp::parallel_summary_json(&summary);
        match std::fs::write("BENCH_e21.json", &json) {
            Ok(()) => println!("wrote BENCH_e21.json"),
            Err(e) => println!("could not write BENCH_e21.json: {e}"),
        }
        println!(
            "parallel smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (unclosed run, fix-point off the simulator/closed form/\
                 oracle, placement probe inverted, or wall-clock speedup below \
                 the 1.5x/2x gates on a multi-core host)"
            }
        );
    }
    if want("e22") {
        println!("E22 — incremental query engine: persistent indexes + plan cache vs rebuild\n");
        let (table, mut summary) = exp::e22_eval(scale);
        // Socket leg: same join workload over a real TCP cluster, verified
        // against the simulator and the oracle (needs the p2pdb binary).
        match exp::e22_socket_verify() {
            Ok(v) => summary.socket_verified = Some(v),
            Err(e) => println!("socket leg skipped: {e}"),
        }
        println!("{}", table.render());
        println!(
            "host cores: {}; 10k-row join: {:.2}x wall, {:.1}x fewer rows scanned; \
             10k-peer grid: {:.2}x wall, sharded gap {:.2}x indexed vs {:.2}x rebuild; \
             socket verified: {:?}",
            summary.host_cores,
            summary.join_speedup_big,
            summary.join_scan_shrink_big,
            summary.grid_speedup_big,
            summary.sharded_gap_indexed,
            summary.sharded_gap_rebuild,
            summary.socket_verified,
        );
        let json = exp::eval_summary_json(&summary);
        match std::fs::write("BENCH_e22.json", &json) {
            Ok(()) => println!("wrote BENCH_e22.json"),
            Err(e) => println!("could not write BENCH_e22.json: {e}"),
        }
        println!(
            "eval smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (fix-point off the rebuild oracle/closed form, socket \
                 leg diverged, rows-scanned shrink below 2x, or wall-clock \
                 speedup below 2x on a multi-core host)"
            }
        );
    }
    if want("e16") {
        println!("E16 — interned values + columnar relations (data-plane rewrite)\n");
        let (table, summary) = exp::e16_interning(scale);
        println!("{}", table.render());
        println!(
            "microbench: {:.0} rows/s legacy vs {:.0} rows/s interned ({:.2}x); \
             payloads {} B interned vs {} B pre-interning ({:.2}x smaller), {} dict entries",
            summary.legacy_rows_per_s,
            summary.interned_rows_per_s,
            summary.speedup,
            summary.payload_bytes,
            summary.payload_bytes_legacy,
            summary.payload_bytes_legacy as f64 / summary.payload_bytes.max(1) as f64,
            summary.dict_entries,
        );
        let json = exp::interning_summary_json(&summary);
        match std::fs::write("BENCH_e16.json", &json) {
            Ok(()) => println!("wrote BENCH_e16.json"),
            Err(e) => println!("could not write BENCH_e16.json: {e}"),
        }
        println!(
            "interning smoke: {}\n",
            if summary.ok() {
                "OK"
            } else {
                "FAILED (answer mismatch, no wire shrink, or interned path not faster)"
            }
        );
    }
}
