//! E22 — the incremental query engine: full delta-join star update runs,
//! wall-clock for the indexed engine (persistent indexes + compiled plan
//! cache, the default) against the legacy rebuild engine (recompile per
//! call + transient index over the whole relation). Every iteration
//! asserts the closed-form fix-point, so the numbers are end-to-end
//! correct runs, not hot loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::{e22_apply_engine, e22_join_expected, e22_join_system};

fn run_join(rows: usize, indexed: bool) {
    let mut builder = e22_join_system(rows).expect("join workload builds");
    e22_apply_engine(&mut builder, indexed);
    let mut sys = builder.build().expect("system builds");
    let report = sys.run_update();
    assert!(report.all_closed, "join({rows}): not all closed");
    assert_eq!(
        sys.snapshot().total_tuples(),
        e22_join_expected(rows),
        "join({rows}): fix-point off the closed form"
    );
}

fn bench_eval(c: &mut Criterion) {
    for rows in [1_000usize, 10_000] {
        let mut group = c.benchmark_group(format!("e22_eval/{rows}"));
        group.sample_size(10);
        for (engine, indexed) in [("indexed", true), ("rebuild", false)] {
            group.bench_with_input(BenchmarkId::new(engine, rows), &rows, |b, &rows| {
                b.iter(|| run_join(rows, indexed))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
