//! E21 — the sharded runtime: full scale-scenario update runs, wall-clock
//! against shard count (see `p2p_net::sharded`). Every iteration asserts
//! the closed-form fix-point, so the numbers are end-to-end correct runs,
//! not hot loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_core::system::run_update_sharded;
use p2p_net::ShardPlacement;
use p2p_topology::Topology;
use p2p_workload::{expected_total_tuples, scale_system, ScaleConfig};

fn expander(n: u32) -> ScaleConfig {
    ScaleConfig {
        topology: Topology::Expander {
            n,
            degree: 4,
            seed: 7,
        },
        records_per_node: 4,
    }
}

fn run_sharded(cfg: &ScaleConfig, shards: usize) {
    let builder = scale_system(cfg).expect("scale workload builds");
    let (db, _, all_closed) =
        run_update_sharded(builder, shards, ShardPlacement::RoundRobin).expect("sharded run");
    assert!(all_closed, "{}: not all closed", cfg.topology);
    assert_eq!(
        db.total_tuples(),
        expected_total_tuples(cfg),
        "{}: fix-point off the closed form",
        cfg.topology
    );
}

fn run_sim(cfg: &ScaleConfig) {
    let mut sys = scale_system(cfg)
        .expect("scale workload builds")
        .build()
        .expect("system builds");
    let report = sys.run_update();
    assert!(report.all_closed, "{}: not all closed", cfg.topology);
    assert_eq!(
        sys.snapshot().total_tuples(),
        expected_total_tuples(cfg),
        "{}: fix-point off the closed form",
        cfg.topology
    );
}

fn bench_parallel(c: &mut Criterion) {
    for nodes in [1_000u32, 10_000] {
        let cfg = expander(nodes);
        let mut group = c.benchmark_group(format!("e21_parallel/{nodes}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sim", 0usize), &cfg, |b, cfg| {
            b.iter(|| run_sim(cfg))
        });
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new("sharded", shards), &cfg, |b, cfg| {
                b.iter(|| run_sharded(cfg, shards))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
