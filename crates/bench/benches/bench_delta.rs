//! E6 — delta-optimization ablation: full answers vs deltas on overlapping
//! data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::run_workload;
use p2p_core::config::UpdateMode;
use p2p_topology::Topology;
use p2p_workload::{Distribution, WorkloadConfig};

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_delta");
    group.sample_size(10);
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 3,
        },
        records_per_node: 50,
        distribution: Distribution::OverlapNeighbors { percent: 50 },
        seed: 42,
    };
    for delta in [true, false] {
        group.bench_with_input(
            BenchmarkId::new(
                "tree_overlap50",
                if delta { "delta_on" } else { "delta_off" },
            ),
            &delta,
            |b, &delta| b.iter(|| run_workload(&cfg, UpdateMode::Eager, delta)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
