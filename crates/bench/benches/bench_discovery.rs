//! E10 — topology-discovery cost per family and size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_topology::Topology;
use p2p_workload::{build_system, Distribution, WorkloadConfig};

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_discovery");
    group.sample_size(10);
    let cases = [
        (
            "tree15",
            Topology::Tree {
                branching: 2,
                depth: 3,
            },
        ),
        (
            "tree31",
            Topology::Tree {
                branching: 2,
                depth: 4,
            },
        ),
        (
            "layered16",
            Topology::LayeredDag {
                layers: 4,
                width: 4,
                fanout: 2,
            },
        ),
        ("clique6", Topology::Clique { n: 6 }),
        ("ring8", Topology::Ring { n: 8 }),
    ];
    for (name, topology) in cases {
        let cfg = WorkloadConfig {
            topology,
            records_per_node: 1,
            distribution: Distribution::Disjoint,
            seed: 42,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sys = build_system(cfg).unwrap().build().unwrap();
                let report = sys.run_discovery();
                assert!(report.outcome.quiescent);
                report.messages
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
