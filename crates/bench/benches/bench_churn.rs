//! E15 — durability & churn: what crash recovery costs.
//!
//! Times the ring(8) rounds session (a) untouched, (b) with two scheduled
//! mid-session crashes under durable peers (WAL + snapshots + watermark
//! resync + driver re-drive). The recovery-traffic numbers are printed once
//! before timing; the wall-clock delta is the price of logging plus the
//! re-driven wave.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::experiments::{churn_builder, e15_churn, ring_churn_plan, run_churn_once};
use p2p_bench::Scale;

fn bench_churn(c: &mut Criterion) {
    // Report the recovery economics the timing alone cannot show.
    let (table, summary) = e15_churn(Scale::Quick);
    println!("\nE15 — churn with durable peers (recovery traffic)\n");
    println!("{}", table.render());
    println!(
        "resync re-shipped {} rows vs {} full re-propagation, {} redrive(s)\n",
        summary.resync_rows, summary.full_repropagation_rows, summary.redrives,
    );
    assert!(summary.ok(), "churn regression: {summary:?}");

    // A fixed plan derived from one probe keeps every iteration identical.
    let probe = {
        let mut sys = churn_builder(Scale::Quick, true, true).build().unwrap();
        sys.run_update().outcome.virtual_time
    };

    let mut group = c.benchmark_group("e15_churn");
    group.sample_size(10);
    group.bench_function("ring8_no_churn_durable", |b| {
        b.iter(|| {
            let mut sys = churn_builder(Scale::Quick, true, true).build().unwrap();
            sys.run_update()
        })
    });
    group.bench_function("ring8_two_crashes_durable", |b| {
        b.iter(|| run_churn_once(Scale::Quick, ring_churn_plan(probe)))
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
