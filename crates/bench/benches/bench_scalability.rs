//! E3/E7 — scalability over network size, per topology family and data
//! distribution (paper Section 5 preliminary experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::run_workload;
use p2p_core::config::UpdateMode;
use p2p_topology::Topology;
use p2p_workload::{Distribution, WorkloadConfig};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_scalability");
    group.sample_size(10);
    let cases = [
        (
            "tree",
            Topology::Tree {
                branching: 2,
                depth: 2,
            },
        ),
        (
            "tree",
            Topology::Tree {
                branching: 2,
                depth: 3,
            },
        ),
        (
            "tree",
            Topology::Tree {
                branching: 2,
                depth: 4,
            },
        ),
        (
            "layered",
            Topology::LayeredDag {
                layers: 4,
                width: 2,
                fanout: 2,
            },
        ),
        (
            "layered",
            Topology::LayeredDag {
                layers: 4,
                width: 4,
                fanout: 2,
            },
        ),
        ("clique", Topology::Clique { n: 3 }),
        ("clique", Topology::Clique { n: 5 }),
    ];
    for (family, topology) in cases {
        for (dist, dname) in [
            (Distribution::Disjoint, "disjoint"),
            (Distribution::OverlapNeighbors { percent: 50 }, "overlap50"),
        ] {
            let cfg = WorkloadConfig {
                topology,
                records_per_node: 30,
                distribution: dist,
                seed: 42,
            };
            let id = BenchmarkId::new(format!("{family}/{dname}"), topology.node_count());
            group.bench_with_input(id, &cfg, |b, cfg| {
                b.iter(|| run_workload(cfg, UpdateMode::Eager, true))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
