//! E5 — eager (asynchronous) vs rounds (synchronous) update modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::run_workload;
use p2p_core::config::UpdateMode;
use p2p_topology::Topology;
use p2p_workload::{Distribution, WorkloadConfig};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_modes");
    group.sample_size(10);
    let topologies = [
        (
            "tree",
            Topology::Tree {
                branching: 2,
                depth: 3,
            },
        ),
        ("ring", Topology::Ring { n: 6 }),
        ("clique", Topology::Clique { n: 4 }),
    ];
    for (name, topology) in topologies {
        let cfg = WorkloadConfig {
            topology,
            records_per_node: 30,
            distribution: Distribution::Disjoint,
            seed: 42,
        };
        for (mode, mode_name) in [(UpdateMode::Eager, "eager"), (UpdateMode::Rounds, "rounds")] {
            group.bench_with_input(
                BenchmarkId::new(mode_name, name),
                &(cfg, mode),
                |b, (cfg, mode)| b.iter(|| run_workload(cfg, *mode, true)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
