//! E17 — concurrent update sessions: what interleaving N initiators costs
//! and saves.
//!
//! Times the ring(8) concurrent-writers scenario (a) as four serial
//! sessions — insert a writer's fresh records, drive its session to the
//! fix-point, repeat — and (b) as one interleaved `run_updates` launch. The
//! equivalence/leak/speedup assertions run once up front; the timed halves
//! then measure the driver cost of each execution style.

use criterion::{criterion_group, criterion_main, Criterion};
use p2p_bench::experiments::{concurrent_writers_config, e17_concurrent, run_concurrent_once};
use p2p_bench::Scale;

fn bench_concurrent(c: &mut Criterion) {
    // Report the interleaving economics the timing alone cannot show.
    let (table, summary) = e17_concurrent(Scale::Quick);
    println!("\nE17 — concurrent update sessions (per-session attribution)\n");
    println!("{}", table.render());
    println!(
        "interleaved {:.2} ms vs serial {:.2} ms, peak {} concurrent, {} leaked entries\n",
        summary.concurrent_time_ms,
        summary.serial_time_ms,
        summary.concurrent_peak,
        summary.leaked_entries,
    );
    assert!(summary.ok(), "concurrent-sessions regression: {summary:?}");

    let mut group = c.benchmark_group("e17_concurrent");
    group.sample_size(10);
    group.bench_function("ring8_four_writers_serial", |b| {
        b.iter(|| {
            let cfg = concurrent_writers_config(Scale::Quick);
            let scenario = p2p_workload::concurrent_scenario(&cfg).expect("scenario");
            let mut sys = scenario.builder.build().expect("system builds");
            for d in &scenario.deltas {
                for (rel, vals) in &d.tuples {
                    sys.insert(d.node, rel, vals.clone()).expect("delta");
                }
                sys.run_update_from(d.node);
            }
            sys
        })
    });
    group.bench_function("ring8_four_writers_interleaved", |b| {
        b.iter(|| run_concurrent_once(Scale::Quick))
    });
    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
