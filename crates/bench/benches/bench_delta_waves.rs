//! E14 — delta-driven wave answers: semi-naive delta shipping vs full
//! re-ship in rounds mode, on the paper's running example and a generated
//! cyclic topology (where full re-ship is quadratic in rounds).
//!
//! The traffic table (rows shipped, delta answers, rows saved) is printed
//! once before timing so the bench output carries the byte-level numbers
//! alongside the wall-clock ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::{e14_delta_waves, paper_example_builder, run_delta_waves_once};
use p2p_bench::Scale;
use p2p_core::system::P2PSystemBuilder;
use p2p_topology::Topology;
use p2p_workload::{build_system, Distribution, WorkloadConfig};

fn ring_builder() -> P2PSystemBuilder {
    build_system(&WorkloadConfig {
        topology: Topology::Ring { n: 8 },
        records_per_node: Scale::Quick.records(),
        distribution: Distribution::Disjoint,
        seed: 7,
    })
    .expect("workload builds")
}

fn bench_delta_waves(c: &mut Criterion) {
    // Report the traffic numbers the timing alone cannot show.
    let (table, summary) = e14_delta_waves(Scale::Quick);
    println!("\nE14 — delta waves vs full re-ship (rows over the wire)\n");
    println!("{}", table.render());
    println!(
        "cyclic topology: delta ships {} rows vs {} full ({:.1}x), rows_saved = {}\n",
        summary.delta_rows_shipped,
        summary.full_rows_shipped,
        summary.full_rows_shipped as f64 / summary.delta_rows_shipped.max(1) as f64,
        summary.rows_saved,
    );
    assert!(summary.ok(), "delta-wave regression: {summary:?}");

    let mut group = c.benchmark_group("e14_delta_waves");
    group.sample_size(10);
    for (label, make) in [
        (
            "paper_example",
            paper_example_builder as fn() -> P2PSystemBuilder,
        ),
        ("ring8", ring_builder as fn() -> P2PSystemBuilder),
    ] {
        for delta in [true, false] {
            group.bench_with_input(
                BenchmarkId::new(label, if delta { "delta_on" } else { "full_reship" }),
                &delta,
                |b, &delta| b.iter(|| run_delta_waves_once(make(), delta)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delta_waves);
criterion_main!(benches);
