//! E18 — binary wire codec: encode/decode throughput of the two codecs on
//! representative protocol messages, plus the whole-run wire ledger.
//!
//! The ledger (wire bytes and virtual time per codec on the e16/e17
//! workloads) is printed once before timing; the acceptance bar — ≥3×
//! whole-run wire shrink with tuple-identical fix-points — is asserted
//! here as well as in the `repro e18` smoke.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::e18_codec;
use p2p_bench::Scale;
use p2p_core::codec::{decode_msg, encode_msg};
use p2p_core::messages::{AnswerRows, ProtocolMsg};
use p2p_core::rule::RuleId;
use p2p_net::SessionId;
use p2p_relational::{SymId, Tuple, Val};
use p2p_topology::NodeId;
use p2p_workload::DblpGenerator;
use std::sync::Arc;

/// An answer message shaped like the DBLP workload's hot path: `rows` int
/// pairs plus a first-use dictionary of titles/authors/venues.
fn dblp_answer(rows: usize) -> ProtocolMsg {
    let mut gen = DblpGenerator::new(7);
    let mut dict = Vec::new();
    let mut tuples = Vec::new();
    for (i, p) in gen.batch(rows).into_iter().enumerate() {
        let sym = SymId(1000 + i as u32);
        dict.push((sym, Arc::<str>::from(p.title.as_str())));
        tuples.push(Tuple::new(vec![
            Val::Int(p.id),
            Val::Sym(sym),
            Val::Int(p.year),
        ]));
    }
    ProtocolMsg::Answer {
        session: SessionId::new(NodeId(0), 1),
        rule: RuleId(2),
        rows: AnswerRows {
            vars: vec![Arc::from("I"), Arc::from("T"), Arc::from("Y")],
            rows: tuples,
            null_depths: vec![],
            marks: [(Arc::<str>::from("pub"), 17usize)].into_iter().collect(),
            dict,
        },
        complete: false,
        reopen: false,
    }
}

fn bench_codec(c: &mut Criterion) {
    let (table, summary) = e18_codec(Scale::Quick);
    println!("\nE18 — binary wire codec (whole-run ledger)\n");
    println!("{}", table.render());
    println!(
        "all workloads: {} wire bytes (json) vs {} (binary) — {:.2}x shrink\n",
        summary.json_bytes, summary.binary_bytes, summary.shrink,
    );
    assert!(summary.ok(), "codec regression: {summary:?}");

    let mut group = c.benchmark_group("e18_codec");
    group.sample_size(20);
    for rows in [20usize, 200] {
        let msg = dblp_answer(rows);
        let json = serde_json::to_string(&msg).expect("json encode");
        let binary = encode_msg(&msg);
        group.bench_with_input(BenchmarkId::new("encode_json", rows), &rows, |b, _| {
            b.iter(|| black_box(serde_json::to_string(&msg).expect("json encode")))
        });
        group.bench_with_input(BenchmarkId::new("encode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(encode_msg(&msg)))
        });
        group.bench_with_input(BenchmarkId::new("decode_json", rows), &rows, |b, _| {
            b.iter(|| black_box(serde_json::from_str::<ProtocolMsg>(&json).expect("json decode")))
        });
        group.bench_with_input(BenchmarkId::new("decode_binary", rows), &rows, |b, _| {
            b.iter(|| black_box(decode_msg(&binary).expect("binary decode")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
