//! E19 — scaling the simulator: full scale-scenario update runs per
//! topology family and size (flat per-node degree, closed-form fix-point;
//! see `p2p_workload::scale`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_topology::Topology;
use p2p_workload::{expected_total_tuples, scale_system, ScaleConfig};

fn run_scale(cfg: &ScaleConfig) {
    let mut sys = scale_system(cfg)
        .expect("scale workload builds")
        .build()
        .expect("system builds");
    let report = sys.run_update();
    assert!(report.all_closed, "{}: not all closed", cfg.topology);
    assert_eq!(
        sys.snapshot().total_tuples(),
        expected_total_tuples(cfg),
        "{}: fix-point off the closed form",
        cfg.topology
    );
}

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_scale");
    group.sample_size(10);
    let cases = [
        ("ring", Topology::Ring { n: 100 }),
        ("ring", Topology::Ring { n: 1000 }),
        (
            "expander",
            Topology::Expander {
                n: 100,
                degree: 4,
                seed: 7,
            },
        ),
        (
            "expander",
            Topology::Expander {
                n: 1000,
                degree: 4,
                seed: 7,
            },
        ),
        (
            "smallworld",
            Topology::SmallWorld {
                n: 1000,
                k: 4,
                rewire_percent: 10,
                seed: 7,
            },
        ),
    ];
    for (family, topology) in cases {
        let cfg = ScaleConfig {
            topology,
            records_per_node: 4,
        };
        let id = BenchmarkId::new(family, topology.node_count());
        group.bench_with_input(id, &cfg, |b, cfg| b.iter(|| run_scale(cfg)));
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
