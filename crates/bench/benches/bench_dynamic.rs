//! E8 — dynamic-change runs: update sessions absorbing `addLink` /
//! `deleteLink` scripts mid-flight (Theorem 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_core::dynamic::ChangeScript;
use p2p_core::system::P2PSystemBuilder;
use p2p_net::SimTime;
use p2p_relational::Val;

fn build() -> P2PSystemBuilder {
    let mut b = P2PSystemBuilder::new();
    b.add_node_with_schema(0, "a(x: int, y: int).").unwrap();
    b.add_node_with_schema(1, "b(x: int, y: int).").unwrap();
    b.add_node_with_schema(2, "c(x: int, y: int).").unwrap();
    b.add_rule("r0", "B:b(X,Y) => A:a(X,Y)").unwrap();
    for i in 0..50i64 {
        b.insert(1, "b", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
        b.insert(2, "c", vec![Val::Int(100 + i), Val::Int(i)])
            .unwrap();
    }
    b
}

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_dynamic");
    group.sample_size(10);
    for ops in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("ops", ops), &ops, |b, &ops| {
            b.iter(|| {
                let mut sys = build().build().unwrap();
                let mut script = ChangeScript::new();
                for k in 0..ops {
                    let add = sys
                        .make_add_link(&format!("rx{k}"), "C:c(X,Y) => A:a(X,Y)")
                        .unwrap();
                    script.push(SimTime::from_millis(2 + k as u64), add);
                }
                let report = sys.run_update_with_script(&script);
                assert!(report.outcome.quiescent);
                report.messages
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
