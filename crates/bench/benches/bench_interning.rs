//! E16 — interned values + columnar relations: the data-plane rewrite's
//! join-heavy microbenchmark, legacy `Value` path vs interned `Val` path on
//! identical inputs and plans.
//!
//! The wire-byte ledger (interned payloads vs the measured pre-interning
//! counterfactual) is printed once before timing; the acceptance bar —
//! ≥2× throughput on the interned path under `--release` — is asserted
//! here, where optimised timings are meaningful.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::{e16_interning, interning_microbench_db, interning_microbench_query};
use p2p_bench::Scale;
use p2p_relational::legacy::{evaluate_legacy, LegacyDatabase};
use p2p_relational::query::evaluate;

fn bench_interning(c: &mut Criterion) {
    // Report the byte-level numbers the timing alone cannot show.
    let (table, summary) = e16_interning(Scale::Quick);
    println!("\nE16 — interned values + columnar relations (wire ledger)\n");
    println!("{}", table.render());
    println!(
        "microbench: {:.0} rows/s legacy vs {:.0} rows/s interned ({:.2}x); \
         payloads {} B interned vs {} B legacy ({:.2}x smaller), {} dict entries\n",
        summary.legacy_rows_per_s,
        summary.interned_rows_per_s,
        summary.speedup,
        summary.payload_bytes,
        summary.payload_bytes_legacy,
        summary.payload_bytes_legacy as f64 / summary.payload_bytes.max(1) as f64,
        summary.dict_entries,
    );
    assert!(summary.ok(), "interning regression: {summary:?}");
    #[cfg(not(debug_assertions))]
    assert!(
        summary.speedup >= 2.0,
        "release-mode acceptance bar: interned path must be >=2x the legacy \
         path on the join-heavy microbenchmark, got {:.2}x",
        summary.speedup
    );

    let mut group = c.benchmark_group("e16_interning");
    group.sample_size(10);
    for records in [200usize, 800] {
        let db = interning_microbench_db(records);
        let legacy_db = LegacyDatabase::from_database(&db);
        let q = interning_microbench_query();
        group.bench_with_input(
            BenchmarkId::new("legacy_value_path", records),
            &records,
            |b, _| b.iter(|| black_box(evaluate_legacy(&q, &legacy_db).expect("legacy eval"))),
        );
        group.bench_with_input(
            BenchmarkId::new("interned_columnar_path", records),
            &records,
            |b, _| b.iter(|| black_box(evaluate(&q, &db).expect("interned eval"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
