//! E11 — distributed update vs centralized and acyclic baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_baselines::{acyclic_update, centralized_update};
use p2p_bench::experiments::run_workload;
use p2p_core::config::UpdateMode;
use p2p_topology::{NodeId, Topology};
use p2p_workload::{build_system, Distribution, WorkloadConfig};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_baselines");
    group.sample_size(10);
    let cfg = WorkloadConfig {
        topology: Topology::Tree {
            branching: 2,
            depth: 3,
        },
        records_per_node: 30,
        distribution: Distribution::Disjoint,
        seed: 42,
    };
    group.bench_with_input(
        BenchmarkId::from_parameter("distributed_tree15"),
        &cfg,
        |b, cfg| b.iter(|| run_workload(cfg, UpdateMode::Eager, true)),
    );
    // Shared inputs for the baselines.
    let sys = build_system(&cfg).unwrap().build().unwrap();
    let initial = sys.snapshot().0;
    let rules = sys.rules().clone();
    group.bench_function("centralized_tree15", |b| {
        b.iter(|| {
            centralized_update(&initial, &rules, NodeId(0), 64)
                .unwrap()
                .1
        })
    });
    group.bench_function("acyclic_tree15", |b| {
        b.iter(|| acyclic_update(&initial, &rules, 64).unwrap().1)
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
