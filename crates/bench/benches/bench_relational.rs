//! Micro-benchmarks of the relational substrate: conjunctive-query joins,
//! the restricted-chase guard, and homomorphism checks. These bound the
//! per-node processing cost model used by the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_relational::chase::{apply_rule_local, ChaseConfig, ChaseState};
use p2p_relational::hom::contained_modulo_nulls;
use p2p_relational::query::{evaluate, parse_atom, parse_query};
use p2p_relational::{Database, DatabaseSchema, NullFactory, Val};

fn db_with_chain(n: i64) -> Database {
    let mut db =
        Database::new(DatabaseSchema::parse("b(x: int, y: int). c(x: int, y: int).").unwrap());
    for i in 0..n {
        db.insert_values("b", vec![Val::Int(i), Val::Int(i + 1)])
            .unwrap();
    }
    db
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_join");
    for n in [100i64, 1_000, 5_000] {
        let db = db_with_chain(n);
        let q = parse_query("q(X, Z) :- b(X, Y), b(Y, Z)").unwrap();
        group.bench_with_input(BenchmarkId::new("two_hop", n), &db, |bch, db| {
            bch.iter(|| evaluate(&q, db).unwrap().len())
        });
    }
    group.finish();
}

fn bench_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_chase");
    for n in [100i64, 1_000] {
        group.bench_with_input(BenchmarkId::new("copy_rule", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut db = db_with_chain(n);
                let mut nulls = NullFactory::new(0);
                let mut st = ChaseState::new();
                let cfg = ChaseConfig::default();
                let body = parse_query("q(X, Y) :- b(X, Y)").unwrap();
                let head = vec![parse_atom("c(X, Y)").unwrap()];
                apply_rule_local(&mut db, &body.atoms, &[], &head, &mut nulls, &mut st, &cfg)
                    .unwrap()
                    .inserted
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_hom(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_hom");
    for n in [100i64, 1_000] {
        let a = db_with_chain(n);
        let b = db_with_chain(n);
        group.bench_with_input(BenchmarkId::new("ground_containment", n), &n, |bch, _| {
            bch.iter(|| contained_modulo_nulls(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_chase, bench_hom);
criterion_main!(benches);
