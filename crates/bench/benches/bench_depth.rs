//! E4 — execution time vs depth for trees and layered DAGs (the paper's
//! "execution time is linear with respect to the depth of the structure").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p_bench::experiments::run_workload;
use p2p_core::config::UpdateMode;
use p2p_topology::Topology;
use p2p_workload::{Distribution, WorkloadConfig};

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_depth");
    group.sample_size(10);
    for depth in [1u32, 2, 4, 6, 8] {
        let cfg = WorkloadConfig {
            topology: Topology::Tree {
                branching: 1,
                depth,
            },
            records_per_node: 30,
            distribution: Distribution::Disjoint,
            seed: 42,
        };
        group.bench_with_input(BenchmarkId::new("chain", depth), &cfg, |b, cfg| {
            b.iter(|| run_workload(cfg, UpdateMode::Eager, true))
        });
    }
    for layers in [2u32, 4, 6, 8] {
        let cfg = WorkloadConfig {
            topology: Topology::LayeredDag {
                layers,
                width: 3,
                fanout: 2,
            },
            records_per_node: 30,
            distribution: Distribution::Disjoint,
            seed: 42,
        };
        group.bench_with_input(BenchmarkId::new("layered", layers - 1), &cfg, |b, cfg| {
            b.iter(|| run_workload(cfg, UpdateMode::Eager, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth);
criterion_main!(benches);
