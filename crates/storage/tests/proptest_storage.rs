//! Property: for arbitrary insertion sequences with interleaved snapshots,
//! `snapshot + WAL replay == live Database` — exactly, including insertion
//! order (watermarks), the null mint, and chase depths.

use p2p_relational::value::NullId;
use p2p_relational::{Database, DatabaseSchema, Tuple, Val};
use p2p_storage::{MemoryBackend, PeerStorage, WalRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One step of a peer's durable life.
#[derive(Debug, Clone)]
enum Op {
    /// Insert `r(x, y)` or `s(x)` (arity decided by the relation pick).
    Insert { rel: bool, x: i64, y: i64 },
    /// Insert an interned-string fact `t(name)` (exercises the persisted
    /// catalog: first-use WAL dictionaries + the snapshot catalog section).
    InsertStr { pick: i64 },
    /// Insert a tuple carrying an own-minted null with a depth.
    InsertNull { counter: u64, depth: u32 },
    /// Take a snapshot right here.
    Snapshot,
}

fn op() -> impl Strategy<Value = Op> {
    // (selector, rel, x, y) — the vendored proptest stand-in has no
    // `prop_oneof`, so the variant pick is a mapped selector: 0–4 insert,
    // 5–6 string insert, 7–8 null insert, 9 snapshot.
    (0..10u8, any::<bool>(), 0..8i64, 0..8i64).prop_map(|(sel, rel, x, y)| match sel {
        0..=4 => Op::Insert { rel, x, y },
        5 | 6 => Op::InsertStr { pick: x },
        7 | 8 => Op::InsertNull {
            counter: x as u64,
            depth: y as u32,
        },
        _ => Op::Snapshot,
    })
}

const NODE: u32 = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn snapshot_plus_replay_equals_live_database(ops in proptest::collection::vec(op(), 0..60)) {
        let schema =
            DatabaseSchema::parse("r(x: int, y: int). s(x: int). t(name: str).").unwrap();
        let mut db = Database::new(schema);
        let mut store = PeerStorage::new(Box::<MemoryBackend>::default(), 0);
        store.snapshot(&db, 0, Vec::new()).unwrap();

        let mut nulls_next = 0u64;
        let mut depths: BTreeMap<NullId, u32> = BTreeMap::new();
        for o in &ops {
            match o {
                Op::Insert { rel, x, y } => {
                    let (name, tuple) = if *rel {
                        ("r", Tuple::new(vec![Val::Int(*x), Val::Int(*y)]))
                    } else {
                        ("s", Tuple::new(vec![Val::Int(*x)]))
                    };
                    db.insert(name, tuple.clone()).unwrap();
                    let dict = store.first_use_dict(tuple.values());
                    store.log(&WalRecord::Insert {
                        relation: Arc::from(name),
                        tuple,
                        depths: Vec::new(),
                        dict,
                    }).unwrap();
                }
                Op::InsertStr { pick } => {
                    let tuple =
                        Tuple::new(vec![Val::str(format!("durable-const-{pick}"))]);
                    db.insert("t", tuple.clone()).unwrap();
                    let dict = store.first_use_dict(tuple.values());
                    store.log(&WalRecord::Insert {
                        relation: Arc::from("t"),
                        tuple,
                        depths: Vec::new(),
                        dict,
                    }).unwrap();
                }
                Op::InsertNull { counter, depth } => {
                    let id = NullId::new(NODE, *counter);
                    let tuple = Tuple::new(vec![Val::Null(id)]);
                    db.insert("s", tuple.clone()).unwrap();
                    store.log(&WalRecord::Insert {
                        relation: Arc::from("s"),
                        tuple,
                        depths: vec![(id, *depth)],
                        dict: vec![],
                    }).unwrap();
                    if counter + 1 > nulls_next {
                        nulls_next = counter + 1;
                    }
                    let e = depths.entry(id).or_insert(*depth);
                    if *depth > *e {
                        *e = *depth;
                    }
                }
                Op::Snapshot => {
                    store
                        .snapshot(&db, nulls_next, depths.clone().into_iter().collect())
                        .unwrap();
                }
            }
        }

        let rec = store.recover(NODE).unwrap().expect("initial snapshot exists");
        // Tuple-identity, including insertion order (watermark semantics).
        prop_assert_eq!(rec.db.all_facts(), db.all_facts());
        prop_assert_eq!(rec.db.watermarks(), db.watermarks());
        prop_assert_eq!(rec.nulls_next, nulls_next);
        let rec_depths: BTreeMap<NullId, u32> = rec.depths.into_iter().collect();
        prop_assert_eq!(rec_depths, depths);
    }
}
