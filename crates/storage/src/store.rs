//! The per-peer store: WAL append, snapshot cadence, and recovery.

use crate::backend::StorageBackend;
use crate::wal::WalRecord;
use crate::{StorageError, StorageResult};
use p2p_net::{Codec, SessionId};
use p2p_relational::value::NullId;
use p2p_relational::{ConstCatalog, Database, SymId, SymRemap, Tuple, Val};
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A point-in-time image of a peer's durable state.
///
/// `wal_len` records how many WAL frames precede the snapshot; recovery may
/// skip re-inserting those (they are already in `db`), though replaying them
/// anyway is harmless by idempotence. `catalog` carries the `(SymId, string)`
/// definition of every interned constant in `db`, so the snapshot is
/// self-contained: a reader process with a different catalog re-interns and
/// remaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseSnapshot {
    /// WAL frames already reflected in `db`.
    pub wal_len: u64,
    /// The null factory's next counter at snapshot time.
    pub nulls_next: u64,
    /// Chase depths of every null known to the peer.
    pub depths: Vec<(NullId, u32)>,
    /// Symbol definitions for every interned constant in `db`.
    #[serde(default)]
    pub catalog: Vec<(SymId, Arc<str>)>,
    /// The full local database.
    pub db: Database,
}

/// The latest durable knowledge about one `(session, rule, answering peer)`
/// fragment: accumulated rows (head-side cache rebuild) and the answerer's
/// watermarks as of the last processed answer (the resync cursor).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentMark {
    /// Column variables of `rows`.
    pub vars: Vec<Arc<str>>,
    /// Accumulated fragment rows, deduplicated, in first-arrival order.
    pub rows: Vec<Tuple>,
    /// The answerer's per-relation watermarks at the last processed answer.
    pub watermarks: BTreeMap<Arc<str>, usize>,
}

/// Everything [`PeerStorage::recover`] rebuilds.
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// The database, tuple-identical to the pre-crash one.
    pub db: Database,
    /// Where the null factory must resume so no id is ever re-minted.
    pub nulls_next: u64,
    /// Recovered chase depths.
    pub depths: Vec<(NullId, u32)>,
    /// Per-`(session, raw rule id, answering peer)` fragment marks — one
    /// entry per interleaved session the durable answer log knows about.
    pub marks: BTreeMap<(SessionId, u32, NodeId), FragmentMark>,
}

/// A peer's durable store: appends WAL records, takes snapshots every
/// `snapshot_every` records, and recovers the pre-crash state.
#[derive(Debug)]
pub struct PeerStorage {
    backend: Box<dyn StorageBackend>,
    /// Which on-disk frame encoding this store reads and writes.
    codec: Codec,
    /// WAL records between automatic snapshots (0 = only explicit ones).
    snapshot_every: u64,
    since_snapshot: u64,
    wal_len: u64,
    /// Symbols whose `(id, string)` definition this store has already
    /// persisted — the first-use filter for WAL dictionaries.
    persisted_syms: HashSet<SymId>,
}

impl PeerStorage {
    /// Wraps a backend with the historical JSON framing. `snapshot_every`
    /// is the number of WAL records between automatic snapshots (0 disables
    /// the cadence; the initial snapshot is always written explicitly by
    /// the owner).
    pub fn new(backend: Box<dyn StorageBackend>, snapshot_every: u64) -> Self {
        Self::with_codec(backend, snapshot_every, Codec::Json)
    }

    /// Wraps a backend with an explicit frame codec. `Json` keeps the
    /// `wal.jsonl`/`snapshot.json` files byte-compatible with every earlier
    /// release; `Binary` writes [`binpack`] frames to the backend's byte
    /// channel instead.
    pub fn with_codec(backend: Box<dyn StorageBackend>, snapshot_every: u64, codec: Codec) -> Self {
        let wal_len = match codec {
            Codec::Json => backend.read_wal().map(|w| w.len() as u64).unwrap_or(0),
            Codec::Binary => backend
                .read_wal_bytes()
                .map(|w| w.len() as u64)
                .unwrap_or(0),
        };
        PeerStorage {
            backend,
            codec,
            snapshot_every,
            since_snapshot: 0,
            wal_len,
            persisted_syms: HashSet::new(),
        }
    }

    /// The frame codec this store was built with.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Number of WAL frames appended so far.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// The first-use dictionary for a set of values: `(id, string)` pairs
    /// for every symbol among `vals` that this store has not yet persisted,
    /// which are thereby marked persisted. The caller puts the result in the
    /// record it is about to [`PeerStorage::log`].
    pub fn first_use_dict<'a>(
        &mut self,
        vals: impl IntoIterator<Item = &'a Val>,
    ) -> Vec<(SymId, Arc<str>)> {
        let fresh: Vec<SymId> = vals
            .into_iter()
            .filter_map(Val::as_sym)
            .filter(|id| self.persisted_syms.insert(*id))
            .collect();
        ConstCatalog::global().export(fresh)
    }

    /// Appends one record. Returns `true` when the snapshot cadence is due
    /// — the owner should follow up with [`PeerStorage::snapshot`] (the
    /// store cannot take one itself: it does not own the database).
    ///
    /// On append failure the record's dictionary symbols are un-marked, so
    /// a later record re-ships their definitions — otherwise a single
    /// failed write would permanently strip those symbols from the log and
    /// recovery in another process could not resolve them.
    pub fn log(&mut self, record: &WalRecord) -> StorageResult<bool> {
        let appended = match self.codec {
            Codec::Json => self.backend.append_wal(&record.to_frame()),
            Codec::Binary => self.backend.append_wal_bytes(&record.to_frame_bytes()),
        };
        if let Err(e) = appended {
            for (id, _) in record.dict() {
                self.persisted_syms.remove(id);
            }
            return Err(e);
        }
        self.wal_len += 1;
        self.since_snapshot += 1;
        Ok(self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every)
    }

    /// Writes a snapshot of the current database and chase bookkeeping,
    /// including the symbol dictionary that makes it self-contained.
    pub fn snapshot(
        &mut self,
        db: &Database,
        nulls_next: u64,
        depths: Vec<(NullId, u32)>,
    ) -> StorageResult<()> {
        let syms = db.syms();
        self.persisted_syms.extend(syms.iter().copied());
        let snap = DatabaseSnapshot {
            wal_len: self.wal_len,
            nulls_next,
            depths,
            catalog: ConstCatalog::global().export(syms),
            db: db.clone(),
        };
        match self.codec {
            Codec::Json => {
                let text = serde_json::to_string(&snap)
                    .map_err(|e| StorageError::Corrupt(format!("snapshot encode: {e}")))?;
                self.backend.write_snapshot(&text)?;
            }
            Codec::Binary => {
                let bytes = binpack::to_bytes(&snap)
                    .map_err(|e| StorageError::Corrupt(format!("snapshot encode: {e}")))?;
                self.backend.write_snapshot_bytes(&bytes)?;
            }
        }
        self.since_snapshot = 0;
        Ok(())
    }

    /// Rebuilds the pre-crash state: latest snapshot + WAL replay.
    ///
    /// Every persisted dictionary — the snapshot's catalog section and each
    /// record's first-use delta — is folded into the live catalog first, and
    /// the accumulated [`SymRemap`] rewrites rows as they are replayed. In
    /// the same process the remap is the identity and the rewrite is
    /// skipped; a different process re-interns and lands on its own ids.
    ///
    /// `node` is the recovering peer's id, used to advance the null mint
    /// past any own null that appears in replayed insertions. Returns
    /// `None` when no snapshot was ever written (nothing to recover from —
    /// the owner writes the initial snapshot at attach time, so this only
    /// happens for a store that never belonged to a peer).
    pub fn recover(&self, node: u32) -> StorageResult<Option<RecoveredState>> {
        let snap: DatabaseSnapshot = match self.codec {
            Codec::Json => {
                let Some(text) = self.backend.read_snapshot()? else {
                    return Ok(None);
                };
                serde_json::from_str(&text)
                    .map_err(|e| StorageError::Corrupt(format!("snapshot decode: {e}")))?
            }
            Codec::Binary => {
                let Some(bytes) = self.backend.read_snapshot_bytes()? else {
                    return Ok(None);
                };
                binpack::from_bytes(&bytes)
                    .map_err(|e| StorageError::Corrupt(format!("snapshot decode: {e}")))?
            }
        };
        let catalog = ConstCatalog::global();
        let mut remap = catalog.absorb(&snap.catalog);
        let mut db = snap.db;
        if !remap.is_identity() {
            db.remap_syms(&|id| remap.map(id));
        }
        let mut nulls_next = snap.nulls_next;
        let mut depths: BTreeMap<NullId, u32> = snap.depths.into_iter().collect();
        let mut marks: BTreeMap<(SessionId, u32, NodeId), FragmentMark> = BTreeMap::new();
        let mut mark_sets: BTreeMap<(SessionId, u32, NodeId), HashSet<Tuple>> = BTreeMap::new();

        let records: Vec<WalRecord> = match self.codec {
            Codec::Json => self
                .backend
                .read_wal()?
                .iter()
                .map(|f| WalRecord::from_frame(f))
                .collect::<StorageResult<_>>()?,
            Codec::Binary => self
                .backend
                .read_wal_bytes()?
                .iter()
                .map(|f| WalRecord::from_frame_bytes(f))
                .collect::<StorageResult<_>>()?,
        };
        for (pos, record) in records.into_iter().enumerate() {
            remap.extend(catalog.absorb(record.dict()));
            match record {
                WalRecord::Insert {
                    relation,
                    tuple,
                    depths: rec_depths,
                    dict: _,
                } => {
                    let tuple = remap_tuple(&remap, tuple);
                    // Frames already reflected in the snapshot are skipped
                    // for the database (replaying them would be a dedup
                    // no-op anyway) but still feed the null mint and depth
                    // maps, which merge idempotently.
                    for v in tuple.values() {
                        if let Val::Null(id) = v {
                            if id.node() == node && id.counter() + 1 > nulls_next {
                                nulls_next = id.counter() + 1;
                            }
                        }
                    }
                    for (id, d) in rec_depths {
                        let e = depths.entry(id).or_insert(d);
                        if d > *e {
                            *e = d;
                        }
                    }
                    if (pos as u64) >= snap.wal_len {
                        db.insert(&relation, tuple)
                            .map_err(|e| StorageError::Corrupt(format!("WAL replay: {e}")))?;
                    }
                }
                WalRecord::Answer {
                    session,
                    rule,
                    node: from,
                    vars,
                    rows,
                    watermarks,
                    dict: _,
                } => {
                    // Fragment marks fold across the whole log: rows
                    // accumulate (deduplicated), the watermark is replaced
                    // by the latest record.
                    let key = (session, rule, from);
                    let mark = marks.entry(key).or_default();
                    let seen = mark_sets.entry(key).or_default();
                    if mark.vars.is_empty() {
                        mark.vars = vars;
                    }
                    for t in rows {
                        let t = remap_tuple(&remap, t);
                        if seen.insert(t.clone()) {
                            mark.rows.push(t);
                        }
                    }
                    mark.watermarks = watermarks;
                }
            }
        }
        Ok(Some(RecoveredState {
            db,
            nulls_next,
            depths: depths.into_iter().collect(),
            marks,
        }))
    }
}

/// Rewrites a tuple's symbols through the recovery remap (identity ⇒ free).
fn remap_tuple(remap: &SymRemap, t: Tuple) -> Tuple {
    if remap.is_identity() {
        return t;
    }
    Tuple::new(
        t.0.iter()
            .map(|v| match v {
                Val::Sym(id) => Val::Sym(remap.map(*id)),
                other => *other,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use p2p_relational::DatabaseSchema;

    fn schema() -> DatabaseSchema {
        DatabaseSchema::parse("a(x: int, y: int). b(x: int). s(x: str).").unwrap()
    }

    fn store(snapshot_every: u64) -> (PeerStorage, Database) {
        let db = Database::new(schema());
        let mut st = PeerStorage::new(Box::<MemoryBackend>::default(), snapshot_every);
        st.snapshot(&db, 0, Vec::new()).unwrap();
        (st, db)
    }

    fn insert(st: &mut PeerStorage, db: &mut Database, rel: &str, vals: Vec<Val>) -> bool {
        let tuple = Tuple::new(vals);
        db.insert(rel, tuple.clone()).unwrap();
        let dict = st.first_use_dict(tuple.values());
        st.log(&WalRecord::Insert {
            relation: Arc::from(rel),
            tuple,
            depths: Vec::new(),
            dict,
        })
        .unwrap()
    }

    #[test]
    fn recover_replays_wal_onto_snapshot() {
        let (mut st, mut db) = store(0);
        insert(&mut st, &mut db, "a", vec![Val::Int(1), Val::Int(2)]);
        insert(&mut st, &mut db, "b", vec![Val::Int(7)]);
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
        assert_eq!(rec.db.watermarks(), db.watermarks());
    }

    #[test]
    fn recover_without_snapshot_is_none() {
        let st = PeerStorage::new(Box::<MemoryBackend>::default(), 0);
        assert!(st.recover(0).unwrap().is_none());
    }

    #[test]
    fn snapshot_cadence_fires_every_k_records() {
        let (mut st, mut db) = store(2);
        assert!(!insert(&mut st, &mut db, "b", vec![Val::Int(1)]));
        assert!(insert(&mut st, &mut db, "b", vec![Val::Int(2)]));
        st.snapshot(&db, 0, Vec::new()).unwrap();
        assert!(!insert(&mut st, &mut db, "b", vec![Val::Int(3)]));
        assert!(insert(&mut st, &mut db, "b", vec![Val::Int(4)]));
        // Recovery from the mid-stream snapshot is still exact.
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
    }

    #[test]
    fn recover_restores_null_mint_and_depths() {
        let (mut st, mut db) = store(0);
        let own = NullId::new(3, 9);
        let foreign = NullId::new(8, 100);
        db.insert("a", Tuple::new(vec![Val::Null(own), Val::Null(foreign)]))
            .unwrap();
        st.log(&WalRecord::Insert {
            relation: Arc::from("a"),
            tuple: Tuple::new(vec![Val::Null(own), Val::Null(foreign)]),
            depths: vec![(own, 2), (foreign, 5)],
            dict: vec![],
        })
        .unwrap();
        let rec = st.recover(3).unwrap().unwrap();
        // Own counter advanced past 9; the foreign node's null is ignored.
        assert_eq!(rec.nulls_next, 10);
        assert!(rec.depths.contains(&(own, 2)));
        assert!(rec.depths.contains(&(foreign, 5)));
    }

    #[test]
    fn answer_records_fold_into_marks() {
        let (mut st, _db) = store(0);
        let sid = SessionId::new(NodeId(0), 1);
        let row1 = Tuple::new(vec![Val::Int(1)]);
        let row2 = Tuple::new(vec![Val::Int(2)]);
        let mut w1 = BTreeMap::new();
        w1.insert(Arc::<str>::from("b"), 1usize);
        let mut w2 = BTreeMap::new();
        w2.insert(Arc::<str>::from("b"), 4usize);
        for (rows, marks) in [
            (vec![row1.clone()], w1),
            (vec![row1.clone(), row2.clone()], w2.clone()),
        ] {
            st.log(&WalRecord::Answer {
                session: sid,
                rule: 5,
                node: NodeId(2),
                vars: vec![Arc::from("X")],
                rows,
                watermarks: marks,
                dict: vec![],
            })
            .unwrap();
        }
        let rec = st.recover(0).unwrap().unwrap();
        let mark = &rec.marks[&(sid, 5, NodeId(2))];
        assert_eq!(mark.rows, vec![row1, row2]); // deduplicated, in order
        assert_eq!(mark.watermarks, w2); // latest watermark wins
    }

    #[test]
    fn marks_of_interleaved_sessions_stay_separate() {
        let (mut st, _db) = store(0);
        let s1 = SessionId::new(NodeId(0), 1);
        let s2 = SessionId::new(NodeId(3), 1);
        for (sid, row, mark) in [(s1, 1i64, 2usize), (s2, 7, 9)] {
            let mut w = BTreeMap::new();
            w.insert(Arc::<str>::from("b"), mark);
            st.log(&WalRecord::Answer {
                session: sid,
                rule: 5,
                node: NodeId(2),
                vars: vec![Arc::from("X")],
                rows: vec![Tuple::new(vec![Val::Int(row)])],
                watermarks: w,
                dict: vec![],
            })
            .unwrap();
        }
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.marks.len(), 2);
        assert_eq!(
            rec.marks[&(s1, 5, NodeId(2))].rows,
            vec![Tuple::new(vec![Val::Int(1)])]
        );
        assert_eq!(
            rec.marks[&(s2, 5, NodeId(2))].watermarks[&Arc::<str>::from("b")],
            9
        );
    }

    #[test]
    fn replay_is_idempotent_over_stale_snapshot_boundary() {
        // Log records, snapshot, log more, then lie about wal_len by
        // recovering from a storage whose snapshot predates some frames:
        // the dedup guarantees an exact rebuild regardless.
        let (mut st, mut db) = store(0);
        insert(&mut st, &mut db, "b", vec![Val::Int(1)]);
        st.snapshot(&db, 0, Vec::new()).unwrap();
        insert(&mut st, &mut db, "b", vec![Val::Int(2)]);
        insert(&mut st, &mut db, "b", vec![Val::Int(1)]); // dup in WAL
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
    }

    #[test]
    fn string_facts_round_trip_through_snapshot_and_wal() {
        let (mut st, mut db) = store(0);
        insert(&mut st, &mut db, "s", vec![Val::str("snap-sym")]);
        st.snapshot(&db, 0, Vec::new()).unwrap();
        insert(&mut st, &mut db, "s", vec![Val::str("wal-sym")]);
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
        let rel = rec.db.relation("s").unwrap();
        assert!(rel.contains(&[Val::str("snap-sym")]));
        assert!(rel.contains(&[Val::str("wal-sym")]));
    }

    #[test]
    fn first_use_dict_ships_each_symbol_once() {
        let (mut st, _db) = store(0);
        let v = Val::str("first-use-once");
        let d1 = st.first_use_dict([v].iter());
        assert_eq!(d1.len(), 1);
        assert_eq!(&*d1[0].1, "first-use-once");
        assert!(st.first_use_dict([v].iter()).is_empty());
    }

    /// Regression: the pre-columnar `Relation` serialized a `present` set —
    /// a byte-for-byte duplicate of every tuple — into every snapshot. The
    /// new form must carry each row exactly once, making data-dominated
    /// snapshots roughly half the size of the old format (reconstructed
    /// here by appending a second copy of each relation's rows, which is
    /// exactly what `present` serialized to).
    #[test]
    fn snapshot_size_regression_rows_serialized_once() {
        use serde::{Content, Serialize};
        let mut db = Database::new(schema());
        for i in 0..300i64 {
            db.insert("a", Tuple::new(vec![Val::Int(700_000 + i), Val::Int(i)]))
                .unwrap();
        }
        let snap = DatabaseSnapshot {
            wal_len: 0,
            nulls_next: 0,
            depths: Vec::new(),
            catalog: Vec::new(),
            db: db.clone(),
        };
        let text = serde_json::to_string(&snap).unwrap();
        // Every tuple appears exactly once.
        assert_eq!(text.matches("700123").count(), 1);
        assert!(!text.contains("present"));

        // Reconstruct the old duplicated form and compare sizes.
        let old_form = match snap.to_content() {
            Content::Map(mut fields) => {
                for (_, v) in fields.iter_mut() {
                    duplicate_rows_as_present(v);
                }
                Content::Map(fields)
            }
            other => other,
        };
        let old_len = serde_json::encoded_len(&old_form).unwrap();
        assert!(
            text.len() * 9 <= old_len * 5,
            "snapshot must be ~2x smaller than the duplicated form: \
             new {} vs old {}",
            text.len(),
            old_len
        );
    }

    /// Recursively appends a `present` duplicate next to every `rows` array
    /// (the old `Relation` serialization).
    fn duplicate_rows_as_present(c: &mut serde::Content) {
        use serde::Content;
        if let Content::Map(entries) = c {
            let dup: Vec<(String, Content)> = entries
                .iter()
                .filter(|(k, _)| k == "rows")
                .map(|(_, v)| ("present".to_string(), v.clone()))
                .collect();
            for (_, v) in entries.iter_mut() {
                duplicate_rows_as_present(v);
            }
            entries.extend(dup);
        }
    }

    #[test]
    fn binary_store_recovers_identically_to_json() {
        // The same durable history through both codecs rebuilds the same
        // state — facts, strings (dictionary remap), and fragment marks.
        let mut recovered = Vec::new();
        for codec in [Codec::Json, Codec::Binary] {
            let mut db = Database::new(schema());
            let mut st = PeerStorage::with_codec(Box::<MemoryBackend>::default(), 0, codec);
            assert_eq!(st.codec(), codec);
            st.snapshot(&db, 0, Vec::new()).unwrap();
            insert(&mut st, &mut db, "a", vec![Val::Int(3), Val::Int(4)]);
            st.snapshot(&db, 0, Vec::new()).unwrap();
            insert(&mut st, &mut db, "s", vec![Val::str("cross-codec-sym")]);
            let mut w = BTreeMap::new();
            w.insert(Arc::<str>::from("b"), 2usize);
            st.log(&WalRecord::Answer {
                session: SessionId::new(NodeId(0), 1),
                rule: 9,
                node: NodeId(1),
                vars: vec![Arc::from("X")],
                rows: vec![Tuple::new(vec![Val::Int(5)])],
                watermarks: w,
                dict: vec![],
            })
            .unwrap();
            let rec = st.recover(0).unwrap().unwrap();
            assert_eq!(rec.db.all_facts(), db.all_facts());
            recovered.push(rec);
        }
        let (json, binary) = (&recovered[0], &recovered[1]);
        assert_eq!(json.db.all_facts(), binary.db.all_facts());
        assert_eq!(json.marks, binary.marks);
    }

    #[test]
    fn binary_file_store_survives_reopen() {
        use crate::backend::FileBackend;
        let dir = std::env::temp_dir().join(format!(
            "p2p_storage_store_bin_{}_{}",
            std::process::id(),
            line!()
        ));
        let mut db = Database::new(schema());
        {
            let backend = Box::new(FileBackend::open(&dir).unwrap());
            let mut st = PeerStorage::with_codec(backend, 0, Codec::Binary);
            st.snapshot(&db, 0, Vec::new()).unwrap();
            insert(&mut st, &mut db, "b", vec![Val::Int(11)]);
            insert(&mut st, &mut db, "s", vec![Val::str("bin-reopen")]);
        }
        // No JSON artifacts: the binary store writes wal.bin/snapshot.bin.
        assert!(!dir.join("wal.jsonl").exists());
        assert!(!dir.join("snapshot.json").exists());
        assert!(dir.join("wal.bin").exists());
        assert!(dir.join("snapshot.bin").exists());
        let backend = Box::new(FileBackend::open(&dir).unwrap());
        let st = PeerStorage::with_codec(backend, 0, Codec::Binary);
        assert_eq!(st.wal_len(), 2);
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
        assert!(rec
            .db
            .relation("s")
            .unwrap()
            .contains(&[Val::str("bin-reopen")]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_carries_its_symbol_dictionary() {
        let (mut st, mut db) = store(0);
        db.insert_values("s", vec![Val::str("self-contained")])
            .unwrap();
        st.snapshot(&db, 0, Vec::new()).unwrap();
        // The snapshot text must embed the string, not just the raw id.
        let rec = st.recover(0).unwrap().unwrap();
        assert!(rec
            .db
            .relation("s")
            .unwrap()
            .contains(&[Val::str("self-contained")]));
    }
}
