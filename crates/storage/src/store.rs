//! The per-peer store: WAL append, snapshot cadence, and recovery.

use crate::backend::StorageBackend;
use crate::wal::WalRecord;
use crate::{StorageError, StorageResult};
use p2p_relational::value::NullId;
use p2p_relational::{Database, Tuple};
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// A point-in-time image of a peer's durable state.
///
/// `wal_len` records how many WAL frames precede the snapshot; recovery may
/// skip re-inserting those (they are already in `db`), though replaying them
/// anyway is harmless by idempotence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseSnapshot {
    /// WAL frames already reflected in `db`.
    pub wal_len: u64,
    /// The null factory's next counter at snapshot time.
    pub nulls_next: u64,
    /// Chase depths of every null known to the peer.
    pub depths: Vec<(NullId, u32)>,
    /// The full local database.
    pub db: Database,
}

/// The latest durable knowledge about one `(rule, answering peer)` fragment:
/// accumulated rows (head-side cache rebuild) and the answerer's watermarks
/// as of the last processed answer (the resync cursor).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FragmentMark {
    /// Column variables of `rows`.
    pub vars: Vec<Arc<str>>,
    /// Accumulated fragment rows, deduplicated, in first-arrival order.
    pub rows: Vec<Tuple>,
    /// The answerer's per-relation watermarks at the last processed answer.
    pub watermarks: BTreeMap<Arc<str>, usize>,
}

/// Everything [`PeerStorage::recover`] rebuilds.
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// The database, tuple-identical to the pre-crash one.
    pub db: Database,
    /// Where the null factory must resume so no id is ever re-minted.
    pub nulls_next: u64,
    /// Recovered chase depths.
    pub depths: Vec<(NullId, u32)>,
    /// Per-`(raw rule id, answering peer)` fragment marks.
    pub marks: BTreeMap<(u32, NodeId), FragmentMark>,
}

/// A peer's durable store: appends WAL records, takes snapshots every
/// `snapshot_every` records, and recovers the pre-crash state.
#[derive(Debug)]
pub struct PeerStorage {
    backend: Box<dyn StorageBackend>,
    /// WAL records between automatic snapshots (0 = only explicit ones).
    snapshot_every: u64,
    since_snapshot: u64,
    wal_len: u64,
}

impl PeerStorage {
    /// Wraps a backend. `snapshot_every` is the number of WAL records
    /// between automatic snapshots (0 disables the cadence; the initial
    /// snapshot is always written explicitly by the owner).
    pub fn new(backend: Box<dyn StorageBackend>, snapshot_every: u64) -> Self {
        let wal_len = backend.read_wal().map(|w| w.len() as u64).unwrap_or(0);
        PeerStorage {
            backend,
            snapshot_every,
            since_snapshot: 0,
            wal_len,
        }
    }

    /// Number of WAL frames appended so far.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Appends one record. Returns `true` when the snapshot cadence is due
    /// — the owner should follow up with [`PeerStorage::snapshot`] (the
    /// store cannot take one itself: it does not own the database).
    pub fn log(&mut self, record: &WalRecord) -> StorageResult<bool> {
        self.backend.append_wal(&record.to_frame())?;
        self.wal_len += 1;
        self.since_snapshot += 1;
        Ok(self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every)
    }

    /// Writes a snapshot of the current database and chase bookkeeping.
    pub fn snapshot(
        &mut self,
        db: &Database,
        nulls_next: u64,
        depths: Vec<(NullId, u32)>,
    ) -> StorageResult<()> {
        let snap = DatabaseSnapshot {
            wal_len: self.wal_len,
            nulls_next,
            depths,
            db: db.clone(),
        };
        let text = serde_json::to_string(&snap)
            .map_err(|e| StorageError::Corrupt(format!("snapshot encode: {e}")))?;
        self.backend.write_snapshot(&text)?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Rebuilds the pre-crash state: latest snapshot + WAL replay.
    ///
    /// `node` is the recovering peer's id, used to advance the null mint
    /// past any own null that appears in replayed insertions. Returns
    /// `None` when no snapshot was ever written (nothing to recover from —
    /// the owner writes the initial snapshot at attach time, so this only
    /// happens for a store that never belonged to a peer).
    pub fn recover(&self, node: u32) -> StorageResult<Option<RecoveredState>> {
        let Some(snap_text) = self.backend.read_snapshot()? else {
            return Ok(None);
        };
        let snap: DatabaseSnapshot = serde_json::from_str(&snap_text)
            .map_err(|e| StorageError::Corrupt(format!("snapshot decode: {e}")))?;
        let mut db = snap.db;
        let mut nulls_next = snap.nulls_next;
        let mut depths: BTreeMap<NullId, u32> = snap.depths.into_iter().collect();
        let mut marks: BTreeMap<(u32, NodeId), FragmentMark> = BTreeMap::new();
        let mut mark_sets: BTreeMap<(u32, NodeId), HashSet<Tuple>> = BTreeMap::new();

        for (pos, frame) in self.backend.read_wal()?.iter().enumerate() {
            match WalRecord::from_frame(frame)? {
                WalRecord::Insert {
                    relation,
                    tuple,
                    depths: rec_depths,
                } => {
                    // Frames already reflected in the snapshot are skipped
                    // for the database (replaying them would be a dedup
                    // no-op anyway) but still feed the null mint and depth
                    // maps, which merge idempotently.
                    for v in tuple.values() {
                        if let p2p_relational::Value::Null(id) = v {
                            if id.node() == node && id.counter() + 1 > nulls_next {
                                nulls_next = id.counter() + 1;
                            }
                        }
                    }
                    for (id, d) in rec_depths {
                        let e = depths.entry(id).or_insert(d);
                        if d > *e {
                            *e = d;
                        }
                    }
                    if (pos as u64) >= snap.wal_len {
                        db.insert(&relation, tuple)
                            .map_err(|e| StorageError::Corrupt(format!("WAL replay: {e}")))?;
                    }
                }
                WalRecord::Answer {
                    rule,
                    node: from,
                    vars,
                    rows,
                    watermarks,
                } => {
                    // Fragment marks fold across the whole log: rows
                    // accumulate (deduplicated), the watermark is replaced
                    // by the latest record.
                    let key = (rule, from);
                    let mark = marks.entry(key).or_default();
                    let seen = mark_sets.entry(key).or_default();
                    if mark.vars.is_empty() {
                        mark.vars = vars;
                    }
                    for t in rows {
                        if seen.insert(t.clone()) {
                            mark.rows.push(t);
                        }
                    }
                    mark.watermarks = watermarks;
                }
            }
        }
        Ok(Some(RecoveredState {
            db,
            nulls_next,
            depths: depths.into_iter().collect(),
            marks,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use p2p_relational::{DatabaseSchema, Value};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::parse("a(x: int, y: int). b(x: int).").unwrap()
    }

    fn store(snapshot_every: u64) -> (PeerStorage, Database) {
        let db = Database::new(schema());
        let mut st = PeerStorage::new(Box::<MemoryBackend>::default(), snapshot_every);
        st.snapshot(&db, 0, Vec::new()).unwrap();
        (st, db)
    }

    fn insert(st: &mut PeerStorage, db: &mut Database, rel: &str, vals: Vec<Value>) -> bool {
        let tuple = Tuple::new(vals);
        db.insert(rel, tuple.clone()).unwrap();
        st.log(&WalRecord::Insert {
            relation: Arc::from(rel),
            tuple,
            depths: Vec::new(),
        })
        .unwrap()
    }

    #[test]
    fn recover_replays_wal_onto_snapshot() {
        let (mut st, mut db) = store(0);
        insert(&mut st, &mut db, "a", vec![Value::Int(1), Value::Int(2)]);
        insert(&mut st, &mut db, "b", vec![Value::Int(7)]);
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
        assert_eq!(rec.db.watermarks(), db.watermarks());
    }

    #[test]
    fn recover_without_snapshot_is_none() {
        let st = PeerStorage::new(Box::<MemoryBackend>::default(), 0);
        assert!(st.recover(0).unwrap().is_none());
    }

    #[test]
    fn snapshot_cadence_fires_every_k_records() {
        let (mut st, mut db) = store(2);
        assert!(!insert(&mut st, &mut db, "b", vec![Value::Int(1)]));
        assert!(insert(&mut st, &mut db, "b", vec![Value::Int(2)]));
        st.snapshot(&db, 0, Vec::new()).unwrap();
        assert!(!insert(&mut st, &mut db, "b", vec![Value::Int(3)]));
        assert!(insert(&mut st, &mut db, "b", vec![Value::Int(4)]));
        // Recovery from the mid-stream snapshot is still exact.
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
    }

    #[test]
    fn recover_restores_null_mint_and_depths() {
        let (mut st, mut db) = store(0);
        let own = NullId::new(3, 9);
        let foreign = NullId::new(8, 100);
        db.insert(
            "a",
            Tuple::new(vec![Value::Null(own), Value::Null(foreign)]),
        )
        .unwrap();
        st.log(&WalRecord::Insert {
            relation: Arc::from("a"),
            tuple: Tuple::new(vec![Value::Null(own), Value::Null(foreign)]),
            depths: vec![(own, 2), (foreign, 5)],
        })
        .unwrap();
        let rec = st.recover(3).unwrap().unwrap();
        // Own counter advanced past 9; the foreign node's null is ignored.
        assert_eq!(rec.nulls_next, 10);
        assert!(rec.depths.contains(&(own, 2)));
        assert!(rec.depths.contains(&(foreign, 5)));
    }

    #[test]
    fn answer_records_fold_into_marks() {
        let (mut st, _db) = store(0);
        let row1 = Tuple::new(vec![Value::Int(1)]);
        let row2 = Tuple::new(vec![Value::Int(2)]);
        let mut w1 = BTreeMap::new();
        w1.insert(Arc::<str>::from("b"), 1usize);
        let mut w2 = BTreeMap::new();
        w2.insert(Arc::<str>::from("b"), 4usize);
        for (rows, marks) in [
            (vec![row1.clone()], w1),
            (vec![row1.clone(), row2.clone()], w2.clone()),
        ] {
            st.log(&WalRecord::Answer {
                rule: 5,
                node: NodeId(2),
                vars: vec![Arc::from("X")],
                rows,
                watermarks: marks,
            })
            .unwrap();
        }
        let rec = st.recover(0).unwrap().unwrap();
        let mark = &rec.marks[&(5, NodeId(2))];
        assert_eq!(mark.rows, vec![row1, row2]); // deduplicated, in order
        assert_eq!(mark.watermarks, w2); // latest watermark wins
    }

    #[test]
    fn replay_is_idempotent_over_stale_snapshot_boundary() {
        // Log records, snapshot, log more, then lie about wal_len by
        // recovering from a storage whose snapshot predates some frames:
        // the dedup guarantees an exact rebuild regardless.
        let (mut st, mut db) = store(0);
        insert(&mut st, &mut db, "b", vec![Value::Int(1)]);
        st.snapshot(&db, 0, Vec::new()).unwrap();
        insert(&mut st, &mut db, "b", vec![Value::Int(2)]);
        insert(&mut st, &mut db, "b", vec![Value::Int(1)]); // dup in WAL
        let rec = st.recover(0).unwrap().unwrap();
        assert_eq!(rec.db.all_facts(), db.all_facts());
    }
}
