//! Storage backends: where frames and snapshots physically live.

use crate::{StorageError, StorageResult};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A place to persist WAL frames and snapshots.
///
/// The contract recovery relies on: `read_wal` returns exactly the frames
/// appended so far, in append order; `read_snapshot` returns the most
/// recently written snapshot.
///
/// Frames come in two shapes, matching the two wire codecs: text frames
/// (JSON, the `*_wal`/`*_snapshot` methods) and byte frames (the binary
/// codec, the `*_bytes` methods). A store uses exactly one family — the
/// codec is fixed when the [`crate::PeerStorage`] is built — so backends
/// keep the two logs physically separate and never mix them.
pub trait StorageBackend: fmt::Debug + Send {
    /// Appends one serialized WAL frame.
    fn append_wal(&mut self, frame: &str) -> StorageResult<()>;
    /// Reads every WAL frame in append order.
    fn read_wal(&self) -> StorageResult<Vec<String>>;
    /// Replaces the snapshot.
    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()>;
    /// Reads the latest snapshot, if one was ever written.
    fn read_snapshot(&self) -> StorageResult<Option<String>>;
    /// Appends one binary WAL frame.
    fn append_wal_bytes(&mut self, frame: &[u8]) -> StorageResult<()>;
    /// Reads every binary WAL frame in append order.
    fn read_wal_bytes(&self) -> StorageResult<Vec<Vec<u8>>>;
    /// Replaces the binary snapshot.
    fn write_snapshot_bytes(&mut self, snapshot: &[u8]) -> StorageResult<()>;
    /// Reads the latest binary snapshot, if one was ever written.
    fn read_snapshot_bytes(&self) -> StorageResult<Option<Vec<u8>>>;
}

/// Fsync-free in-memory backend — the honest model of durability inside the
/// deterministic simulator, where a "crash" is a state wipe within one
/// process and the disk is whatever survives that wipe.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    wal: Vec<String>,
    snapshot: Option<String>,
    wal_bin: Vec<Vec<u8>>,
    snapshot_bin: Option<Vec<u8>>,
}

impl StorageBackend for MemoryBackend {
    fn append_wal(&mut self, frame: &str) -> StorageResult<()> {
        self.wal.push(frame.to_string());
        Ok(())
    }

    fn read_wal(&self) -> StorageResult<Vec<String>> {
        Ok(self.wal.clone())
    }

    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()> {
        self.snapshot = Some(snapshot.to_string());
        Ok(())
    }

    fn read_snapshot(&self) -> StorageResult<Option<String>> {
        Ok(self.snapshot.clone())
    }

    fn append_wal_bytes(&mut self, frame: &[u8]) -> StorageResult<()> {
        self.wal_bin.push(frame.to_vec());
        Ok(())
    }

    fn read_wal_bytes(&self) -> StorageResult<Vec<Vec<u8>>> {
        Ok(self.wal_bin.clone())
    }

    fn write_snapshot_bytes(&mut self, snapshot: &[u8]) -> StorageResult<()> {
        self.snapshot_bin = Some(snapshot.to_vec());
        Ok(())
    }

    fn read_snapshot_bytes(&self) -> StorageResult<Option<Vec<u8>>> {
        Ok(self.snapshot_bin.clone())
    }
}

/// File backend: `wal.jsonl` (one frame per line, append-only) plus
/// `snapshot.json` (replaced via write-to-temp + rename) inside one
/// directory per peer. Binary-codec stores use `wal.bin` (frames prefixed
/// with a little-endian `u32` length, append-only) and `snapshot.bin`
/// instead; the JSON files keep their exact historical layout either way.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    wal: PathBuf,
    snapshot: PathBuf,
    wal_bin: PathBuf,
    snapshot_bin: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the storage directory.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StorageError::Io(e.to_string()))?;
        Ok(FileBackend {
            wal: dir.join("wal.jsonl"),
            snapshot: dir.join("snapshot.json"),
            wal_bin: dir.join("wal.bin"),
            snapshot_bin: dir.join("snapshot.bin"),
            dir,
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for FileBackend {
    fn append_wal(&mut self, frame: &str) -> StorageResult<()> {
        debug_assert!(!frame.contains('\n'), "frames are line-delimited");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.wal)
            .map_err(|e| StorageError::Io(e.to_string()))?;
        writeln!(f, "{frame}").map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_wal(&self) -> StorageResult<Vec<String>> {
        match fs::read_to_string(&self.wal) {
            Ok(text) => Ok(text.lines().map(str::to_string).collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        fs::write(&tmp, snapshot).map_err(|e| StorageError::Io(e.to_string()))?;
        fs::rename(&tmp, &self.snapshot).map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_snapshot(&self) -> StorageResult<Option<String>> {
        match fs::read_to_string(&self.snapshot) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn append_wal_bytes(&mut self, frame: &[u8]) -> StorageResult<()> {
        let len = u32::try_from(frame.len())
            .map_err(|_| StorageError::Io("binary WAL frame over 4 GiB".to_string()))?;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.wal_bin)
            .map_err(|e| StorageError::Io(e.to_string()))?;
        f.write_all(&len.to_le_bytes())
            .and_then(|()| f.write_all(frame))
            .map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_wal_bytes(&self) -> StorageResult<Vec<Vec<u8>>> {
        let bytes = match fs::read(&self.wal_bin) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StorageError::Io(e.to_string())),
        };
        let mut frames = Vec::new();
        let mut at = 0usize;
        while at < bytes.len() {
            let Some(header) = bytes.get(at..at + 4) else {
                return Err(StorageError::Corrupt("truncated binary WAL header".into()));
            };
            let len = u32::from_le_bytes(header.try_into().expect("4-byte slice")) as usize;
            at += 4;
            let Some(frame) = bytes.get(at..at + len) else {
                return Err(StorageError::Corrupt("truncated binary WAL frame".into()));
            };
            frames.push(frame.to_vec());
            at += len;
        }
        Ok(frames)
    }

    fn write_snapshot_bytes(&mut self, snapshot: &[u8]) -> StorageResult<()> {
        let tmp = self.dir.join("snapshot.bin.tmp");
        fs::write(&tmp, snapshot).map_err(|e| StorageError::Io(e.to_string()))?;
        fs::rename(&tmp, &self.snapshot_bin).map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_snapshot_bytes(&self) -> StorageResult<Option<Vec<u8>>> {
        match fs::read(&self.snapshot_bin) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "p2p_storage_test_{}_{}_{}",
            tag,
            std::process::id(),
            n
        ))
    }

    #[test]
    fn memory_backend_preserves_order_and_snapshot() {
        let mut b = MemoryBackend::default();
        b.append_wal("one").unwrap();
        b.append_wal("two").unwrap();
        assert_eq!(b.read_wal().unwrap(), vec!["one", "two"]);
        assert_eq!(b.read_snapshot().unwrap(), None);
        b.write_snapshot("snap1").unwrap();
        b.write_snapshot("snap2").unwrap();
        assert_eq!(b.read_snapshot().unwrap().as_deref(), Some("snap2"));
    }

    #[test]
    fn file_backend_roundtrips_across_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append_wal(r#"{"k":1}"#).unwrap();
            b.append_wal(r#"{"k":2}"#).unwrap();
            b.write_snapshot("snapshot-a").unwrap();
        }
        // A fresh handle (the "restarted process") sees everything.
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read_wal().unwrap(), vec![r#"{"k":1}"#, r#"{"k":2}"#]);
        assert_eq!(b.read_snapshot().unwrap().as_deref(), Some("snapshot-a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_backend_byte_frames_roundtrip() {
        let mut b = MemoryBackend::default();
        b.append_wal_bytes(&[0x00, 0xff, 0x01]).unwrap();
        b.append_wal_bytes(&[]).unwrap();
        assert_eq!(
            b.read_wal_bytes().unwrap(),
            vec![vec![0x00, 0xff, 0x01], vec![]]
        );
        assert_eq!(b.read_snapshot_bytes().unwrap(), None);
        b.write_snapshot_bytes(&[7, 8]).unwrap();
        assert_eq!(b.read_snapshot_bytes().unwrap(), Some(vec![7, 8]));
    }

    #[test]
    fn file_backend_byte_frames_roundtrip_across_reopen() {
        let dir = temp_dir("bytes");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            // Frames may contain newlines and NULs — length prefixes, not
            // line delimiters, separate them.
            b.append_wal_bytes(b"alpha\n\x00beta").unwrap();
            b.append_wal_bytes(&[]).unwrap();
            b.append_wal_bytes(&[0xde, 0xad]).unwrap();
            b.write_snapshot_bytes(&[1, 2, 3]).unwrap();
        }
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(
            b.read_wal_bytes().unwrap(),
            vec![b"alpha\n\x00beta".to_vec(), Vec::new(), vec![0xde, 0xad]]
        );
        assert_eq!(b.read_snapshot_bytes().unwrap(), Some(vec![1, 2, 3]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_truncated_byte_wal_is_corrupt() {
        let dir = temp_dir("trunc");
        let b = FileBackend::open(&dir).unwrap();
        // A header promising more bytes than the file holds.
        std::fs::write(dir.join("wal.bin"), 9u32.to_le_bytes()).unwrap();
        assert!(matches!(b.read_wal_bytes(), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_empty_dir_reads_empty() {
        let dir = temp_dir("empty");
        let b = FileBackend::open(&dir).unwrap();
        assert!(b.read_wal().unwrap().is_empty());
        assert_eq!(b.read_snapshot().unwrap(), None);
        assert!(b.read_wal_bytes().unwrap().is_empty());
        assert_eq!(b.read_snapshot_bytes().unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
