//! Storage backends: where frames and snapshots physically live.

use crate::{StorageError, StorageResult};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A place to persist WAL frames and snapshots.
///
/// The contract recovery relies on: `read_wal` returns exactly the frames
/// appended so far, in append order; `read_snapshot` returns the most
/// recently written snapshot.
pub trait StorageBackend: fmt::Debug + Send {
    /// Appends one serialized WAL frame.
    fn append_wal(&mut self, frame: &str) -> StorageResult<()>;
    /// Reads every WAL frame in append order.
    fn read_wal(&self) -> StorageResult<Vec<String>>;
    /// Replaces the snapshot.
    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()>;
    /// Reads the latest snapshot, if one was ever written.
    fn read_snapshot(&self) -> StorageResult<Option<String>>;
}

/// Fsync-free in-memory backend — the honest model of durability inside the
/// deterministic simulator, where a "crash" is a state wipe within one
/// process and the disk is whatever survives that wipe.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    wal: Vec<String>,
    snapshot: Option<String>,
}

impl StorageBackend for MemoryBackend {
    fn append_wal(&mut self, frame: &str) -> StorageResult<()> {
        self.wal.push(frame.to_string());
        Ok(())
    }

    fn read_wal(&self) -> StorageResult<Vec<String>> {
        Ok(self.wal.clone())
    }

    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()> {
        self.snapshot = Some(snapshot.to_string());
        Ok(())
    }

    fn read_snapshot(&self) -> StorageResult<Option<String>> {
        Ok(self.snapshot.clone())
    }
}

/// File backend: `wal.jsonl` (one frame per line, append-only) plus
/// `snapshot.json` (replaced via write-to-temp + rename) inside one
/// directory per peer.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    wal: PathBuf,
    snapshot: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the storage directory.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StorageError::Io(e.to_string()))?;
        Ok(FileBackend {
            wal: dir.join("wal.jsonl"),
            snapshot: dir.join("snapshot.json"),
            dir,
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for FileBackend {
    fn append_wal(&mut self, frame: &str) -> StorageResult<()> {
        debug_assert!(!frame.contains('\n'), "frames are line-delimited");
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.wal)
            .map_err(|e| StorageError::Io(e.to_string()))?;
        writeln!(f, "{frame}").map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_wal(&self) -> StorageResult<Vec<String>> {
        match fs::read_to_string(&self.wal) {
            Ok(text) => Ok(text.lines().map(str::to_string).collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn write_snapshot(&mut self, snapshot: &str) -> StorageResult<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        fs::write(&tmp, snapshot).map_err(|e| StorageError::Io(e.to_string()))?;
        fs::rename(&tmp, &self.snapshot).map_err(|e| StorageError::Io(e.to_string()))
    }

    fn read_snapshot(&self) -> StorageResult<Option<String>> {
        match fs::read_to_string(&self.snapshot) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "p2p_storage_test_{}_{}_{}",
            tag,
            std::process::id(),
            n
        ))
    }

    #[test]
    fn memory_backend_preserves_order_and_snapshot() {
        let mut b = MemoryBackend::default();
        b.append_wal("one").unwrap();
        b.append_wal("two").unwrap();
        assert_eq!(b.read_wal().unwrap(), vec!["one", "two"]);
        assert_eq!(b.read_snapshot().unwrap(), None);
        b.write_snapshot("snap1").unwrap();
        b.write_snapshot("snap2").unwrap();
        assert_eq!(b.read_snapshot().unwrap().as_deref(), Some("snap2"));
    }

    #[test]
    fn file_backend_roundtrips_across_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut b = FileBackend::open(&dir).unwrap();
            b.append_wal(r#"{"k":1}"#).unwrap();
            b.append_wal(r#"{"k":2}"#).unwrap();
            b.write_snapshot("snapshot-a").unwrap();
        }
        // A fresh handle (the "restarted process") sees everything.
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read_wal().unwrap(), vec![r#"{"k":1}"#, r#"{"k":2}"#]);
        assert_eq!(b.read_snapshot().unwrap().as_deref(), Some("snapshot-a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_empty_dir_reads_empty() {
        let dir = temp_dir("empty");
        let b = FileBackend::open(&dir).unwrap();
        assert!(b.read_wal().unwrap().is_empty());
        assert_eq!(b.read_snapshot().unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
