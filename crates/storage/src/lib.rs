//! # p2p-storage
//!
//! Durable peer state for the P2P database network. Everything a peer
//! derives during an update session lives in memory; this crate is what
//! survives a process crash:
//!
//! * a serde-framed, append-only **write-ahead log** ([`WalRecord`]) of
//!   every fact insertion the update algorithm applies, plus every
//!   fragment answer the peer processed (rows and the answerer's database
//!   watermarks — the resync cursor);
//! * periodic **database snapshots** ([`DatabaseSnapshot`]) bounding how
//!   much of the log a recovery must replay to rebuild the database;
//! * a [`PeerStorage::recover`] path that replays the log onto the latest
//!   snapshot and returns a [`RecoveredState`] tuple-identical to the
//!   pre-crash database, with the null mint and chase depths restored.
//!
//! Two interchangeable [`StorageBackend`]s exist: an fsync-free
//! [`MemoryBackend`] for the deterministic simulator (a crash there is a
//! state wipe inside one process, so an in-memory "disk" is the honest
//! model), and a [`FileBackend`] writing a newline-delimited JSON log plus
//! a snapshot file, for runs that must survive a real process exit.
//!
//! ## Recovery invariant
//!
//! Replaying the WAL over the latest snapshot is **idempotent**: records
//! older than the snapshot re-insert tuples that are already present (the
//! relation layer deduplicates), so recovery is correct from *any*
//! snapshot, not just the newest one. Fragment-answer records are folded
//! across the whole log into per-`(rule, peer)` marks; the restarted peer
//! resyncs from those watermarks, so only facts inserted at the answerer
//! *after the last durably-processed answer* ever cross the wire again.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod store;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, StorageBackend};
pub use store::{DatabaseSnapshot, FragmentMark, PeerStorage, RecoveredState};
pub use wal::WalRecord;

use std::fmt;

/// Errors of the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O failure of the file backend.
    Io(String),
    /// A frame or snapshot failed to parse back.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt(e) => write!(f, "corrupt storage: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for the persistence layer.
pub type StorageResult<T> = Result<T, StorageError>;
