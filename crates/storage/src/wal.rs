//! Write-ahead-log records.
//!
//! One record per durable event, serde-framed (one JSON document per
//! frame; the file backend stores one frame per line). Records are
//! designed to be **replay-idempotent**: inserting an already-present
//! tuple is a no-op at the relation layer and depth records merge by
//! maximum, so recovery may safely replay the whole log over any
//! snapshot.

use p2p_relational::value::NullId;
use p2p_relational::Tuple;
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One durable event in a peer's write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A fact the update algorithm inserted into the local database.
    Insert {
        /// Relation the tuple went into.
        relation: Arc<str>,
        /// The inserted tuple.
        tuple: Tuple,
        /// Chase depths of any labeled nulls aboard the tuple (the global
        /// null-depth safety valve must survive recovery).
        depths: Vec<(NullId, u32)>,
    },
    /// A fragment answer this peer processed: the rows and, crucially, the
    /// answerer's database watermarks at answer time. The latest record per
    /// `(rule, peer)` is the resync cursor — after a crash the peer asks the
    /// answerer only for rows derived from facts beyond this watermark.
    Answer {
        /// Rule the answer served (raw id; `p2p_core` owns the typed form).
        rule: u32,
        /// The answering peer.
        node: NodeId,
        /// Column variables of the shipped rows.
        vars: Vec<Arc<str>>,
        /// The shipped rows (head-side fragment cache rebuild).
        rows: Vec<Tuple>,
        /// The answerer's per-relation insertion watermarks at answer time.
        watermarks: BTreeMap<Arc<str>, usize>,
    },
}

impl WalRecord {
    /// Serializes the record into one frame.
    pub fn to_frame(&self) -> String {
        serde_json::to_string(self).expect("WAL records are plain data")
    }

    /// Parses a frame back.
    pub fn from_frame(frame: &str) -> Result<Self, crate::StorageError> {
        serde_json::from_str(frame)
            .map_err(|e| crate::StorageError::Corrupt(format!("WAL frame: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_relational::Value;

    #[test]
    fn insert_record_roundtrips() {
        let rec = WalRecord::Insert {
            relation: Arc::from("a"),
            tuple: Tuple::new(vec![Value::Int(1), Value::Null(NullId::new(2, 5))]),
            depths: vec![(NullId::new(2, 5), 3)],
        };
        let frame = rec.to_frame();
        assert_eq!(WalRecord::from_frame(&frame).unwrap(), rec);
    }

    #[test]
    fn answer_record_roundtrips_with_watermarks() {
        let mut watermarks = BTreeMap::new();
        watermarks.insert(Arc::<str>::from("b"), 7usize);
        let rec = WalRecord::Answer {
            rule: 4,
            node: NodeId(3),
            vars: vec![Arc::from("X"), Arc::from("Y")],
            rows: vec![Tuple::new(vec![Value::Int(1), Value::Int(2)])],
            watermarks,
        };
        let frame = rec.to_frame();
        assert_eq!(WalRecord::from_frame(&frame).unwrap(), rec);
    }

    #[test]
    fn garbage_frame_is_a_corrupt_error() {
        assert!(matches!(
            WalRecord::from_frame("not json"),
            Err(crate::StorageError::Corrupt(_))
        ));
    }
}
