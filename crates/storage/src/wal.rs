//! Write-ahead-log records.
//!
//! One record per durable event, serde-framed (one JSON document per
//! frame; the file backend stores one frame per line). Records are
//! designed to be **replay-idempotent**: inserting an already-present
//! tuple is a no-op at the relation layer and depth records merge by
//! maximum, so recovery may safely replay the whole log over any
//! snapshot.
//!
//! Rows carry interned [`p2p_relational::Val`]s, whose 4-byte symbol ids
//! are only meaningful relative to a catalog. Every record therefore ships
//! a **first-use dictionary** (`dict`): the `(SymId, string)` definitions
//! of symbols this store has never persisted before. Recovery folds those
//! into the live catalog and remaps ids, so a log written by one process
//! round-trips in another — the on-disk analogue of the wire protocol's
//! dictionary deltas.

use p2p_net::SessionId;
use p2p_relational::value::NullId;
use p2p_relational::{SymId, Tuple};
use p2p_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One durable event in a peer's write-ahead log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A fact the update algorithm inserted into the local database.
    Insert {
        /// Relation the tuple went into.
        relation: Arc<str>,
        /// The inserted tuple.
        tuple: Tuple,
        /// Chase depths of any labeled nulls aboard the tuple (the global
        /// null-depth safety valve must survive recovery).
        depths: Vec<(NullId, u32)>,
        /// First-use symbol definitions for interned constants in `tuple`.
        #[serde(default)]
        dict: Vec<(SymId, Arc<str>)>,
    },
    /// A fragment answer this peer processed: the rows and, crucially, the
    /// answerer's database watermarks at answer time. The latest record per
    /// `(session, rule, peer)` is the resync cursor — after a crash the peer
    /// asks the answerer only for rows derived from facts beyond this
    /// watermark. Records are **session-tagged** so recovery can rebuild the
    /// head-side fragment caches of every interleaved session a crash
    /// interrupted, not just one.
    Answer {
        /// The update session the answer belonged to.
        session: SessionId,
        /// Rule the answer served (raw id; `p2p_core` owns the typed form).
        rule: u32,
        /// The answering peer.
        node: NodeId,
        /// Column variables of the shipped rows.
        vars: Vec<Arc<str>>,
        /// The shipped rows (head-side fragment cache rebuild).
        rows: Vec<Tuple>,
        /// The answerer's per-relation insertion watermarks at answer time.
        watermarks: BTreeMap<Arc<str>, usize>,
        /// First-use symbol definitions for interned constants in `rows`.
        #[serde(default)]
        dict: Vec<(SymId, Arc<str>)>,
    },
}

impl WalRecord {
    /// Serializes the record into one frame.
    pub fn to_frame(&self) -> String {
        serde_json::to_string(self).expect("WAL records are plain data")
    }

    /// Parses a frame back.
    pub fn from_frame(frame: &str) -> Result<Self, crate::StorageError> {
        serde_json::from_str(frame)
            .map_err(|e| crate::StorageError::Corrupt(format!("WAL frame: {e}")))
    }

    /// Serializes the record into one binary frame (the [`binpack`] wire
    /// form, used when the store's codec is `Binary`).
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        binpack::to_bytes(self).expect("WAL records are plain data")
    }

    /// Parses a binary frame back.
    pub fn from_frame_bytes(frame: &[u8]) -> Result<Self, crate::StorageError> {
        binpack::from_bytes(frame)
            .map_err(|e| crate::StorageError::Corrupt(format!("binary WAL frame: {e}")))
    }

    /// The record's dictionary delta.
    pub fn dict(&self) -> &[(SymId, Arc<str>)] {
        match self {
            WalRecord::Insert { dict, .. } | WalRecord::Answer { dict, .. } => dict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_relational::Val;

    #[test]
    fn insert_record_roundtrips() {
        let rec = WalRecord::Insert {
            relation: Arc::from("a"),
            tuple: Tuple::new(vec![Val::Int(1), Val::Null(NullId::new(2, 5))]),
            depths: vec![(NullId::new(2, 5), 3)],
            dict: vec![],
        };
        let frame = rec.to_frame();
        assert_eq!(WalRecord::from_frame(&frame).unwrap(), rec);
    }

    #[test]
    fn record_dict_roundtrips_symbol_definitions() {
        let v = Val::str("wal-dict-sym");
        let rec = WalRecord::Insert {
            relation: Arc::from("a"),
            tuple: Tuple::new(vec![v]),
            depths: vec![],
            dict: vec![(v.as_sym().unwrap(), Arc::from("wal-dict-sym"))],
        };
        let frame = rec.to_frame();
        assert!(frame.contains("wal-dict-sym"));
        assert_eq!(WalRecord::from_frame(&frame).unwrap(), rec);
    }

    #[test]
    fn answer_record_roundtrips_with_watermarks() {
        let mut watermarks = BTreeMap::new();
        watermarks.insert(Arc::<str>::from("b"), 7usize);
        let rec = WalRecord::Answer {
            session: SessionId::new(NodeId(0), 3),
            rule: 4,
            node: NodeId(3),
            vars: vec![Arc::from("X"), Arc::from("Y")],
            rows: vec![Tuple::new(vec![Val::Int(1), Val::Int(2)])],
            watermarks,
            dict: vec![],
        };
        let frame = rec.to_frame();
        assert_eq!(WalRecord::from_frame(&frame).unwrap(), rec);
    }

    #[test]
    fn garbage_frame_is_a_corrupt_error() {
        assert!(matches!(
            WalRecord::from_frame("not json"),
            Err(crate::StorageError::Corrupt(_))
        ));
        assert!(matches!(
            WalRecord::from_frame_bytes(&[0xff, 0xff, 0xff]),
            Err(crate::StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn binary_frames_roundtrip_and_undercut_json() {
        let mut watermarks = BTreeMap::new();
        watermarks.insert(Arc::<str>::from("b"), 7usize);
        let rec = WalRecord::Answer {
            session: SessionId::new(NodeId(0), 3),
            rule: 4,
            node: NodeId(3),
            vars: vec![Arc::from("X"), Arc::from("Y")],
            rows: (0..20)
                .map(|i| Tuple::new(vec![Val::Int(i), Val::Int(1_000_000 + i)]))
                .collect(),
            watermarks,
            dict: vec![],
        };
        let bytes = rec.to_frame_bytes();
        assert_eq!(WalRecord::from_frame_bytes(&bytes).unwrap(), rec);
        assert!(
            bytes.len() * 3 < rec.to_frame().len() * 2,
            "binary frame {} should be well under the JSON frame {}",
            bytes.len(),
            rec.to_frame().len()
        );
    }
}
