//! The `scale` scenario: a deliberately *flat* workload for measuring how
//! far the runtime itself goes, separated from chase complexity.
//!
//! The Section-5 DBLP workload exercises realistic schema translation, but
//! its rule templates make derived data flow transitively, so total work
//! grows with topology mixing — useless as a yardstick when the question is
//! "does the *event loop* keep up at 10k–100k peers?". Here every node runs
//! the same two-relation schema and every dependency edge carries exactly
//! one one-hop copy rule:
//!
//! ```text
//! item(id: int, src: int). inbox(id: int, src: int).
//! <body>:item(I,S) => <head>:inbox(I,S)
//! ```
//!
//! `inbox` never occurs in a rule body, so nothing propagates further than
//! one hop: the fix-point is known in closed form. Node `h` ends with its
//! own `records` items plus `records` inbox tuples per dependency edge
//! `h → b` (the `src` column keeps different bodies' contributions
//! distinct), giving exactly
//! [`expected_total_tuples`]` = (nodes + edges) × records` tuples
//! network-wide. Experiments can therefore verify a 10k-peer run without
//! paying for a 10k-peer centralized oracle — and the cost of a run is
//! dominated by the transport: flood, queries, answers, acks, fix-point
//! broadcast. Exactly the axis the scalability experiment (e19) measures.

use p2p_core::error::CoreResult;
use p2p_core::system::P2PSystemBuilder;
use p2p_topology::Topology;

/// Configuration of one scale-scenario system.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Network shape. The interesting families at scale are
    /// [`Topology::Expander`] and [`Topology::SmallWorld`] (flat degree,
    /// logarithmic diameter), with [`Topology::Ring`] and
    /// [`Topology::Random`] as the classical baselines.
    pub topology: Topology,
    /// `item` tuples seeded at every node.
    pub records_per_node: usize,
}

impl ScaleConfig {
    /// A small default useful in tests: a degree-4 expander over 64 nodes.
    pub fn small() -> Self {
        ScaleConfig {
            topology: Topology::Expander {
                n: 64,
                degree: 4,
                seed: 7,
            },
            records_per_node: 4,
        }
    }
}

/// Uniform per-node schema of the scale scenario.
pub const SCALE_SCHEMA: &str = "item(id: int, src: int). inbox(id: int, src: int).";

/// The closed-form fix-point size: every node keeps its `records` items and
/// gains `records` inbox tuples per outgoing dependency edge, so the
/// network-wide total is `(nodes + edges) × records`.
pub fn expected_total_tuples(cfg: &ScaleConfig) -> usize {
    let generated = cfg.topology.generate();
    let edges = generated.graph.edges().count();
    (generated.node_count + edges) * cfg.records_per_node
}

/// Builds the scale-scenario system: one node per topology vertex (uniform
/// schema), one one-hop copy rule per dependency edge, `records_per_node`
/// seeded `item` tuples per node. The returned builder still accepts
/// configuration tweaks before `build()` — in particular the event budget
/// is left on auto so it derives from the node count.
pub fn scale_system(cfg: &ScaleConfig) -> CoreResult<P2PSystemBuilder> {
    let generated = cfg.topology.generate();
    let mut b = P2PSystemBuilder::new();

    for node in generated.graph.nodes() {
        b.add_node_with_schema(node.0, SCALE_SCHEMA)?;
    }

    // One copy rule per dependency edge: the head imports the body's items.
    let mut k = 0usize;
    for (head, body) in generated.graph.edges() {
        k += 1;
        b.add_rule(
            &format!("s{k}"),
            &format!(
                "{}:item(I,S) => {}:inbox(I,S)",
                body.letter(),
                head.letter()
            ),
        )?;
    }

    // Seed data: the id spaces of different nodes intentionally collide —
    // the src column keeps contributions distinct, and colliding ids keep
    // the interner dictionary small at 10k+ peers.
    for node in generated.graph.nodes() {
        for i in 0..cfg.records_per_node {
            b.insert(node.0, "item", vec![i as i64, node.0 as i64])?;
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_expander_hits_the_closed_form_and_the_oracle() {
        let cfg = ScaleConfig::small();
        let mut sys = scale_system(&cfg).unwrap().build().unwrap();
        let report = sys.run_update();
        assert!(report.outcome.quiescent);
        assert!(report.all_closed);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            sys.snapshot().total_tuples(),
            expected_total_tuples(&cfg),
            "one-hop copy fix-point must match the closed form"
        );
        assert!(
            sys.snapshot().equivalent(&sys.oracle().unwrap()),
            "scale scenario must match the centralized fix-point"
        );
    }

    #[test]
    fn ring_and_small_world_hit_the_closed_form() {
        for topology in [
            Topology::Ring { n: 24 },
            Topology::SmallWorld {
                n: 24,
                k: 4,
                rewire_percent: 20,
                seed: 3,
            },
        ] {
            let cfg = ScaleConfig {
                topology,
                records_per_node: 3,
            };
            let mut sys = scale_system(&cfg).unwrap().build().unwrap();
            let report = sys.run_update();
            assert!(report.all_closed, "{topology}: not all closed");
            assert_eq!(
                sys.snapshot().total_tuples(),
                expected_total_tuples(&cfg),
                "{topology}: fix-point size off"
            );
        }
    }

    #[test]
    fn closed_form_counts_nodes_and_edges() {
        let cfg = ScaleConfig {
            topology: Topology::Ring { n: 10 },
            records_per_node: 5,
        };
        // A ring has exactly n edges: (10 + 10) × 5.
        assert_eq!(expected_total_tuples(&cfg), 100);
    }
}
