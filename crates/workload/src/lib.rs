//! # p2p-workload
//!
//! Synthetic DBLP-like workload generation reproducing the setup of the
//! paper's preliminary experiments (Section 5):
//!
//! > "Up to 31 nodes participated … The local relational databases are based
//! > on DBLP data and contained about 20000 records about publications
//! > (about 1000 per node), organised in 3 different relational schemas. We
//! > considered two different data distributions. In the first one there is
//! > no intersection between initial data in neighbor nodes. In the second,
//! > there is 50% probability of intersection between initial data in nodes
//! > linked by coordination rules … Three types of topologies have been
//! > considered: trees, layered acyclic graphs, and cliques."
//!
//! We cannot redistribute the DBLP dump, so [`dblp::DblpGenerator`]
//! synthesises publications (seeded pools of author names, venues, title
//! words) with the same record counts and the same three-schema
//! organisation; DESIGN.md §3 (substitution 2) argues why this preserves
//! the behaviours the experiments measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod concurrent;
pub mod dblp;
pub mod distribute;
pub mod scale;
pub mod schemas;

pub use build::{build_system, WorkloadConfig};
pub use concurrent::{
    concurrent_scenario, pick_writer_indices, pick_writers, ConcurrentConfig, ConcurrentScenario,
    WriterDelta,
};
pub use dblp::{DblpGenerator, Publication};
pub use distribute::Distribution;
pub use scale::{expected_total_tuples, scale_system, ScaleConfig};
pub use schemas::SchemaFamily;
